//! Quickstart: the CHERIvoke lifecycle in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Allocate through capabilities, free into quarantine, sweep, and watch
//! every dangling reference die.

use cherivoke::{CherivokeHeap, HeapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut heap = CherivokeHeap::new(HeapConfig::default())?;

    // Ballast: a live working set, so the 25%-of-heap quarantine policy
    // doesn't fire during this tiny walkthrough.
    let _working_set = heap.malloc(1 << 20)?;

    // 1. Allocate: the returned capability is bounded to exactly this object.
    let obj = heap.malloc(256)?;
    println!("allocated: {obj}");
    heap.store_u64(&obj, 0, 0x1122_3344_5566_7788)?;
    println!("read back: {:#x}", heap.load_u64(&obj, 0)?);

    // Out-of-bounds access? Impossible — spatial safety comes with CHERI.
    assert!(heap.load_u64(&obj, 256).is_err());

    // 2. Stash a second pointer to the object in another heap object
    //    (this is the copy that will dangle).
    let stash = heap.malloc(16)?;
    heap.store_cap(&stash, 0, &obj)?;

    // 3. Free the object. It is quarantined — not reusable, but the old
    //    pointers still "work" until the sweep (use-after-free before
    //    reallocation is harmless by construction, paper §3.7).
    heap.free(obj)?;
    println!("freed; quarantined bytes = {}", heap.quarantined_bytes());
    assert_eq!(heap.load_u64(&obj, 0)?, 0x1122_3344_5566_7788);

    // 4. Revocation sweep: every copy of the capability is found via its
    //    tag and revoked in place.
    let stats = heap.revoke_now();
    println!(
        "sweep: {} bytes swept, {} capabilities inspected, {} revoked",
        stats.bytes_swept, stats.caps_inspected, stats.caps_revoked
    );

    // 5. The stashed copy is now dead data. Use-after-reallocation is
    //    impossible.
    let dangling = heap.load_cap(&stash, 0)?;
    assert!(!dangling.tag());
    assert!(heap.load_u64(&dangling, 0).is_err());
    println!("dangling copy after sweep: {dangling}");

    println!(
        "\nheap stats: {} sweeps, {} caps revoked, shadow map {} bytes",
        heap.stats().sweeps,
        heap.stats().caps_revoked,
        heap.shadow_bytes()
    );
    Ok(())
}
