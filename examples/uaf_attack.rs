//! The paper's Figure 1 attack, run twice: once against a conventional
//! allocator (the attack succeeds) and once under CHERIvoke (the dangling
//! pointer is revoked and the attack faults).
//!
//! ```sh
//! cargo run --example uaf_attack
//! ```
//!
//! Scenario (a classic C++ use-after-reallocation):
//!
//! 1. The program `delete`s an object whose first word is a vtable pointer.
//! 2. A *dangling* pointer to the object survives in another heap object.
//! 3. The attacker, controlling external input, gets the freed slot
//!    reallocated and fills it with an attacker-chosen "vtable".
//! 4. A buggy second `delete` dereferences the dangling pointer's vtable
//!    slot — and jumps wherever the attacker pointed it.

use cherivoke::{CherivokeHeap, HeapConfig};
use cvkalloc::DlAllocator;
use tagmem::{AddressSpace, SegmentKind};

const LEGIT_VTABLE: u64 = 0x00be_ef00;
const ATTACKER_FUNC: u64 = 0x0bad_f00d;

/// The attack against a conventional allocator: raw addresses, immediate
/// reuse of freed memory, no revocation. Returns the function pointer the
/// victim ends up calling.
fn attack_conventional() -> u64 {
    let heap_base = 0x1000_0000;
    let mut space = AddressSpace::builder()
        .segment(SegmentKind::Heap, heap_base, 1 << 20)
        .build();
    let mut alloc = DlAllocator::new(heap_base, 1 << 20);

    // Victim object; first word is the vtable pointer.
    let victim = alloc.malloc(64).expect("space");
    space.store_u64(victim.addr, LEGIT_VTABLE).expect("mapped");

    // A dangling copy of the pointer survives as a raw address.
    let dangling_ptr: u64 = victim.addr;

    // delete #1 — and the conventional allocator recycles immediately.
    alloc.free(victim.addr).expect("valid free");

    // Attacker sprays; dlmalloc's LIFO bins hand the address right back.
    let spray = alloc.malloc(64).expect("space");
    assert_eq!(spray.addr, dangling_ptr, "immediate reuse");
    space.store_u64(spray.addr, ATTACKER_FUNC).expect("mapped");

    // delete #2 — the buggy code dereferences the dangling pointer.
    space.load_u64(dangling_ptr).expect("mapped")
}

/// The identical flow under CHERIvoke. Returns what the victim reads
/// through the dangling capability, or the fault that stopped it.
fn attack_cherivoke() -> Result<u64, String> {
    let mut heap = CherivokeHeap::new(HeapConfig::small()).map_err(|e| e.to_string())?;

    let victim = heap.malloc(64).map_err(|e| e.to_string())?;
    heap.store_u64(&victim, 0, LEGIT_VTABLE)
        .map_err(|e| e.to_string())?;

    // The dangling copy lives in another heap object.
    let stash = heap.malloc(16).map_err(|e| e.to_string())?;
    heap.store_cap(&stash, 0, &victim)
        .map_err(|e| e.to_string())?;

    // delete #1: quarantined, not reusable yet.
    heap.free(victim).map_err(|e| e.to_string())?;

    // The attacker sprays until the address comes back. Reuse requires the
    // quarantine to drain — which CHERIvoke only does after a revocation
    // sweep (here the spray eventually triggers it via the policy).
    let mut recaptured = None;
    for _ in 0..20_000 {
        let spray = heap.malloc(64).map_err(|e| e.to_string())?;
        if spray.base() == victim.base() {
            recaptured = Some(spray);
            break;
        }
        heap.free(spray).map_err(|e| e.to_string())?;
    }
    let spray = recaptured.ok_or("attacker never recaptured the address")?;
    heap.store_u64(&spray, 0, ATTACKER_FUNC)
        .map_err(|e| e.to_string())?;

    // delete #2: dereference the stashed (dangling) pointer.
    let dangling = heap.load_cap(&stash, 0).map_err(|e| e.to_string())?;
    heap.load_u64(&dangling, 0)
        .map_err(|e| format!("CHERI fault: {e}"))
}

fn main() {
    println!("== Figure 1 use-after-reallocation attack ==\n");

    let stolen = attack_conventional();
    println!("conventional allocator: victim calls {stolen:#x}");
    assert_eq!(stolen, ATTACKER_FUNC);
    println!("  -> control-flow hijacked: the dangling pointer read attacker data\n");

    match attack_cherivoke() {
        Ok(v) => {
            println!("CHERIvoke: victim calls {v:#x}");
            panic!("attack should have been stopped!");
        }
        Err(e) => {
            println!("CHERIvoke: attack stopped — {e}");
            println!(
                "  -> the revocation sweep that preceded reuse cleared the dangling\n\
                 \u{20}    capability's tag, so the victim faults instead of jumping to\n\
                 \u{20}    {ATTACKER_FUNC:#x}"
            );
        }
    }
}
