//! `cvk-top`: a `top`-style live view of a running [`cherivoke::ConcurrentHeap`],
//! built entirely on the telemetry subsystem.
//!
//! ```sh
//! cargo run --release --example cvk_top -- [--ticks N] [--interval-ms MS] [--prometheus]
//! ```
//!
//! The example starts the concurrent revocation service with telemetry
//! enabled, runs a pool of mutator threads churning allocations against it,
//! and tails the service's [`telemetry::Registry`]: each tick diffs the
//! latest [`telemetry::MetricsSnapshot`] against the previous one
//! ([`MetricsSnapshot::delta`]) to print *rates* — allocations/s, sweep
//! bandwidth, pause percentiles — plus the newest lifecycle events from the
//! event ring. With `--prometheus`, the final snapshot is dumped in
//! Prometheus text format instead of JSON.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use cherivoke::{ConcurrentHeap, ServiceConfig};
use telemetry::MetricsSnapshot;

const WORKERS: usize = 4;

fn arg(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn rate(delta: &MetricsSnapshot, name: &str, secs: f64) -> f64 {
    delta.counters.get(name).copied().unwrap_or(0) as f64 / secs
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ticks: u64 = arg("--ticks").map_or(10, |v| v.parse().expect("--ticks N"));
    let interval_ms: u64 =
        arg("--interval-ms").map_or(200, |v| v.parse().expect("--interval-ms MS"));
    let prometheus = std::env::args().any(|a| a == "--prometheus");

    let mut config = ServiceConfig::small();
    config.policy.quarantine.fraction = 0.25;
    config.telemetry = true;
    let heap = ConcurrentHeap::new(config)?;

    // The mutator pool: each worker churns differently-sized sessions so
    // the quarantine fills and the background revoker has work to report.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        for w in 0..WORKERS {
            let client = heap.handle();
            let stop = &stop;
            scope.spawn(move || {
                // A stash of pointers gives every sweep real capability
                // pages to walk (and dangling copies to revoke).
                let stash = client.malloc(64 * 16).expect("stash");
                let mut held = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let c = match client.malloc(64 + (i % 8) * 48) {
                        Ok(c) => c,
                        Err(_) => continue, // OOM revocation path retried for us
                    };
                    client.store_u64(&c, 0, i).unwrap();
                    client.store_cap(&stash, (i % 64) * 16, &c).unwrap();
                    held.push(c);
                    if held.len() > 32 {
                        let victim = held.swap_remove(((i + w as u64) % 32) as usize);
                        client.free(victim).unwrap();
                    }
                    i += 1;
                }
                for c in held {
                    client.free(c).unwrap();
                }
                client.free(stash).unwrap();
            });
        }

        // The "top" loop: snapshot, diff, render.
        println!(
            "{:>5} {:>10} {:>10} {:>12} {:>10} {:>10} {:>9}",
            "tick", "malloc/s", "free/s", "sweep MiB/s", "p50 µs", "p99 µs", "quar KiB"
        );
        let mut prev = heap.snapshot();
        let mut last = Instant::now();
        for tick in 1..=ticks {
            std::thread::sleep(Duration::from_millis(interval_ms));
            let now = Instant::now();
            let secs = (now - last).as_secs_f64().max(1e-9);
            last = now;
            let snap = heap.snapshot();
            let delta = snap.delta(&prev);
            let pauses = snap
                .histograms
                .get("cvk_service_pause_ns")
                .cloned()
                .unwrap_or_default();
            println!(
                "{:>5} {:>10.0} {:>10.0} {:>12.1} {:>10} {:>10} {:>9}",
                tick,
                rate(&delta, "cvk_alloc_mallocs_total", secs),
                rate(&delta, "cvk_alloc_frees_total", secs),
                rate(&delta, "cvk_sweep_bytes_total", secs) / (1 << 20) as f64,
                pauses.percentile_ns(50.0) / 1_000,
                pauses.percentile_ns(99.0) / 1_000,
                snap.gauges
                    .get("cvk_alloc_quarantined_bytes")
                    .copied()
                    .unwrap_or(0)
                    >> 10,
            );
            prev = snap;
        }
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;

    heap.revoke_all_now();

    // The newest lifecycle events, straight off the ring.
    println!("\nrecent events:");
    for e in heap.telemetry().recent_events(8) {
        println!("  {e}");
    }

    let snap = heap.snapshot();
    println!("\nfinal snapshot:");
    if prometheus {
        println!("{}", snap.to_prometheus());
    } else {
        println!("{}", snap.to_json());
    }

    assert!(
        snap.counters.get("cvk_sweeps_total").copied().unwrap_or(0) > 0,
        "the service should have swept during churn"
    );
    Ok(())
}
