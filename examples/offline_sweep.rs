//! The paper's §5.3 measurement methodology, end to end: run a workload,
//! capture a core dump when the quarantine fills, then time revocation
//! sweeps over the dump offline — on a modelled CHERI FPGA — under each
//! hardware-assist configuration.
//!
//! ```sh
//! cargo run --release --example offline_sweep
//! ```

use cherivoke::{CherivokeHeap, HeapConfig};
use revoker::timed::{timed_sweep, TimedMode};
use revoker::{ShadowMap, SkipMode, SweepPlan};
use simcache::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run an allocation-heavy workload until its quarantine is full.
    //    (The policy's automatic sweep is disabled so we can capture the
    //    dump at exactly the moment a sweep *would* trigger — the paper
    //    dumps core "when the quarantine buffer is full", §5.3.)
    let mut cfg = HeapConfig::default();
    cfg.policy.quarantine.fraction = f64::INFINITY;
    let mut heap = CherivokeHeap::new(cfg)?;
    let table = heap.malloc(64 << 10)?;
    let mut live = Vec::new();
    let mut slot = 0u64;
    let mut rng = 0x5eed_5eedu64;
    while heap.quarantined_bytes() < heap.live_bytes() / 4 || heap.quarantined_bytes() < (1 << 20) {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        if rng.is_multiple_of(3) && !live.is_empty() {
            let cap: cheri::Capability = live.swap_remove((rng >> 33) as usize % live.len());
            heap.free(cap)?;
        } else if heap.live_bytes() < 8 << 20 {
            let cap = heap.malloc(64 + (rng >> 40) % 2048)?;
            if slot < 4096 {
                // Scatter references so the dump has pointer-dense pages.
                heap.store_cap(&table, slot * 16, &cap)?;
                slot += 1;
            }
            live.push(cap);
        }
    }

    // 2. Capture the §5.3 core dump (memory + tags + CapDirty page list)
    //    and paint the shadow map as the sweep would see it.
    let dump = heap.dump();
    let stats = dump.stats();
    println!(
        "dump captured: {} MiB, {} capabilities, page density {:.1}%, line density {:.1}%",
        stats.total_bytes >> 20,
        stats.tagged_granules,
        stats.page_density() * 100.0,
        stats.line_density() * 100.0
    );
    let heap_seg = dump
        .segments()
        .iter()
        .find(|s| s.kind == tagmem::SegmentKind::Heap)
        .unwrap();
    let mut shadow = ShadowMap::new(heap_seg.mem.base(), heap_seg.mem.len());
    for (addr, len) in heap.allocator().quarantined_ranges() {
        shadow.paint(addr, len);
    }

    // 3. Plan the sweep under each hardware assist (fig. 8a's metric).
    for mode in [SkipMode::None, SkipMode::PteCapDirty, SkipMode::CLoadTags] {
        let plan = SweepPlan::for_dump(&dump, mode);
        println!(
            "plan {mode:?}: {:>5.1}% of memory must be read ({} regions)",
            plan.sweep_fraction() * 100.0,
            plan.regions().len()
        );
    }

    // 4. Time the sweep on the CHERI-FPGA machine model under each mode
    //    (fig. 8b's metric), averaging several sweeps like the paper.
    println!();
    for mode in [
        TimedMode::Full,
        TimedMode::PteCapDirty,
        TimedMode::CLoadTags,
        TimedMode::Ideal,
    ] {
        let mut machine = Machine::new(MachineConfig::cheri_fpga_like());
        let mut cycles = 0;
        const REPS: u64 = 5;
        for _ in 0..REPS {
            machine.reset();
            let r = timed_sweep(&dump, &shadow, &mut machine, mode);
            cycles += r.cycles;
        }
        let avg = cycles / REPS;
        println!(
            "timed {mode:?}: {:>12} cycles/sweep = {:>8.3} ms at 100 MHz",
            avg,
            MachineConfig::cheri_fpga_like().cycles_to_seconds(avg) * 1000.0
        );
    }

    println!(
        "\nThe orderings to observe: CLoadTags ≤ PTE CapDirty ≤ Full in planned\n\
         bytes, and Ideal ≤ assisted ≤ Full in cycles — §3.4's two assists, both\n\
         necessary for optimal work reduction (§6.3)."
    );
    Ok(())
}
