//! A long-running multi-threaded "session server" on the concurrent
//! CHERIvoke revocation service.
//!
//! ```sh
//! cargo run --release --example server_churn
//! ```
//!
//! The motivating deployment of the paper's intro: a network-facing service
//! written in an unsafe language, churning session objects as clients come
//! and go, with a *bug* that keeps a stale session pointer in a routing
//! table. Here the server runs `WORKERS` mutator threads over a
//! [`cherivoke::ConcurrentHeap`]: each worker owns a column of the routing
//! table (stored in shard 0's memory) but allocates its sessions from its
//! *own* pinned shard — so every routing-table entry is a **cross-shard**
//! capability, the case §3.5's concurrent revocation has to get right. The
//! background revoker and the service's foreign-sweep handshake revoke the
//! stale pointer before its memory is ever reused, so the bug is a clean
//! fault instead of a security hole.

use std::sync::atomic::{AtomicU64, Ordering};

use cherivoke::{ConcurrentHeap, ServiceConfig};

const WORKERS: usize = 4;
const SESSIONS_PER_WORKER: usize = 128;
const ROUNDS: usize = 40;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let heap = ConcurrentHeap::new(ServiceConfig::default())?;

    let uaf_attempts = AtomicU64::new(0);
    let uaf_caught = AtomicU64::new(0);

    std::thread::scope(|scope| -> Result<(), cherivoke::HeapError> {
        let mut workers = Vec::new();
        for w in 0..WORKERS {
            // The routing table lives in shard 0; worker sessions come from
            // the worker's own shard. Every table entry crosses shards.
            let table = heap.malloc_on(0, (SESSIONS_PER_WORKER * 16) as u64)?;
            let client = heap.handle();
            let uaf_attempts = &uaf_attempts;
            let uaf_caught = &uaf_caught;
            workers.push(scope.spawn(move || -> Result<(), cherivoke::HeapError> {
                let mut sessions: Vec<Option<cheri::Capability>> =
                    (0..SESSIONS_PER_WORKER).map(|_| None).collect();
                let mut next_id = 0u64;
                let mut stale_slot: Option<usize> = None;

                for round in 0..ROUNDS {
                    // Clients connect: fill empty slots with new sessions.
                    for (slot, entry) in sessions.iter_mut().enumerate() {
                        if entry.is_none() {
                            let size = 64 + (next_id % 7) * 48;
                            let cap = client.malloc(size)?;
                            client.store_u64(&cap, 0, next_id)?; // session id
                            client.store_cap(&table, (slot * 16) as u64, &cap)?;
                            *entry = Some(cap);
                            next_id += 1;
                        }
                    }

                    // Clients disconnect: tear down a pseudo-random half.
                    for (slot, entry) in sessions.iter_mut().enumerate() {
                        if (slot * 2654435761 + round * 40503 + w * 97) % 100 < 50 {
                            if let Some(cap) = entry.take() {
                                // THE BUG: one teardown per round forgets to
                                // clear the routing-table entry.
                                if stale_slot.is_none() {
                                    stale_slot = Some(slot);
                                } else {
                                    client.store_u64(&table, (slot * 16) as u64, 0)?;
                                }
                                client.free(cap)?;
                            }
                        }
                    }

                    // The router later follows a stale entry (use-after-free!).
                    if let Some(slot) = stale_slot.take() {
                        uaf_attempts.fetch_add(1, Ordering::Relaxed);
                        let stale = client.load_cap(&table, (slot * 16) as u64)?;
                        if !stale.tag() || client.load_u64(&stale, 0).is_err() {
                            // The dangling capability was revoked — by a
                            // foreign sweep, the cross-shard barrier, or the
                            // shard's own epoch — before the router used it.
                            uaf_caught.fetch_add(1, Ordering::Relaxed);
                        }
                        // else: pre-sweep, the memory is still quarantined,
                        // so the read cannot observe another session's data.
                        client.store_u64(&table, (slot * 16) as u64, 0)?;
                    }
                }
                Ok(())
            }));
        }
        for worker in workers {
            worker.join().expect("worker thread")?;
        }
        Ok(())
    })?;

    // Drain whatever the background revoker hadn't gotten to yet.
    heap.revoke_all_now();

    let stats = heap.stats();
    let mallocs: u64 = stats.shards.iter().map(|s| s.mallocs).sum();
    println!(
        "server ran {WORKERS} workers x {ROUNDS} rounds, {mallocs} sessions allocated \
         across {} shards",
        stats.shards.len()
    );
    println!(
        "revocation: {} background epochs, {} foreign sweeps, \
         {} dangling capabilities revoked cross-shard, {} by the in-flight barrier",
        stats.epochs, stats.foreign_sweeps, stats.foreign_caps_revoked, stats.barrier_revocations
    );
    println!(
        "pauses: p50 {} µs, p99 {} µs, max {} µs over {} revoker lock holds",
        stats.pauses.percentile_ns(50.0) / 1_000,
        stats.pauses.percentile_ns(99.0) / 1_000,
        stats.pauses.max_ns() / 1_000,
        stats.pauses.count()
    );
    println!(
        "stale-pointer dereferences: {} attempted, {} faulted cleanly,\n\
         the rest read only quarantined (never-reallocated) memory",
        uaf_attempts.load(Ordering::Relaxed),
        uaf_caught.load(Ordering::Relaxed)
    );
    println!(
        "memory: {} KiB live at exit, quarantine drained to {} KiB",
        heap.live_bytes() >> 10,
        heap.quarantined_bytes() >> 10
    );
    assert!(
        stats.epochs > 0,
        "the service should have swept during churn"
    );
    assert_eq!(
        heap.quarantined_bytes(),
        0,
        "final drain leaves no quarantine"
    );
    Ok(())
}
