//! A long-running "session server" on a CHERIvoke heap.
//!
//! ```sh
//! cargo run --release --example server_churn
//! ```
//!
//! The motivating deployment of the paper's intro: a network-facing service
//! written in an unsafe language, churning session objects as clients come
//! and go, with a *bug* that keeps a stale session pointer in a routing
//! table. Under CHERIvoke the stale pointer is revoked by the background
//! revocation cycle before its memory is ever reused, so the bug is a
//! clean fault instead of a security hole.

use cheri::Capability;
use cherivoke::{CherivokeHeap, HeapConfig};

const SESSIONS: usize = 512;
const ROUNDS: usize = 40;

struct Session {
    cap: Capability,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut heap = CherivokeHeap::new(HeapConfig::default())?;

    // The routing table: a heap array of capabilities to live sessions.
    let table = heap.malloc((SESSIONS * 16) as u64)?;

    let mut sessions: Vec<Option<Session>> = (0..SESSIONS).map(|_| None).collect();
    let mut next_id = 0u64;
    let mut stale_slot: Option<usize> = None;
    let mut uaf_attempts = 0u64;
    let mut uaf_caught = 0u64;

    for round in 0..ROUNDS {
        // Clients connect: fill empty slots with new sessions.
        for (slot, entry) in sessions.iter_mut().enumerate() {
            if entry.is_none() {
                let size = 64 + (next_id % 7) * 48;
                let cap = heap.malloc(size)?;
                heap.store_u64(&cap, 0, next_id)?; // session id
                heap.store_cap(&table, (slot * 16) as u64, &cap)?;
                *entry = Some(Session { cap });
                next_id += 1;
            }
        }

        // Clients disconnect: tear down a pseudo-random half of sessions.
        for slot in 0..SESSIONS {
            if (slot * 2654435761 + round * 40503) % 100 < 50 {
                if let Some(sess) = sessions[slot].take() {
                    // THE BUG: one teardown per round forgets to clear the
                    // routing-table entry.
                    let forgot_to_unlink = stale_slot.is_none();
                    if !forgot_to_unlink {
                        heap.store_u64(&table, (slot * 16) as u64, 0)?;
                    } else {
                        stale_slot = Some(slot);
                    }
                    heap.free(sess.cap)?;
                }
            }
        }

        // The router later follows a stale entry (use-after-free!).
        if let Some(slot) = stale_slot.take() {
            uaf_attempts += 1;
            let stale = heap.load_cap(&table, (slot * 16) as u64)?;
            match heap.load_u64(&stale, 0) {
                Ok(_) => {
                    // Pre-sweep: the memory is still quarantined, so this
                    // read cannot observe another session's data.
                }
                Err(_) => uaf_caught += 1,
            }
            heap.store_u64(&table, (slot * 16) as u64, 0)?;
        }
    }

    let stats = heap.stats();
    println!("server ran {ROUNDS} rounds, {} sessions allocated", stats.alloc.mallocs);
    println!(
        "revocation: {} sweeps, {} dangling capabilities revoked, {} KiB swept",
        stats.sweeps,
        stats.caps_revoked,
        stats.bytes_swept >> 10
    );
    println!(
        "stale-pointer dereferences: {uaf_attempts} attempted, {uaf_caught} faulted cleanly,\n\
         the rest read only quarantined (never-reallocated) memory"
    );
    println!(
        "memory: peak live {} KiB, peak footprint {} KiB (quarantine ≤ 25%), shadow {} KiB",
        stats.alloc.peak_live_bytes >> 10,
        stats.alloc.peak_footprint_bytes >> 10,
        heap.shadow_bytes() >> 10
    );
    assert!(stats.sweeps > 0, "the policy should have swept during churn");
    Ok(())
}
