//! Tuning the memory/performance trade-off (a miniature Figure 9).
//!
//! ```sh
//! cargo run --release --example tuning
//! ```
//!
//! Replays the paper's worst-case workload (xalancbmk) at several
//! quarantine fractions and prints the resulting normalised execution time
//! and memory, demonstrating that CHERIvoke's overheads trade off
//! deterministically (paper §6.4).

use cherivoke::RevocationPolicy;
use workloads::{profiles, run_trace, CherivokeUnderTest, CostModel, Stage, TraceGenerator};

fn main() {
    let profile = profiles::by_name("xalancbmk").expect("known benchmark");
    let trace = TraceGenerator::new(profile, 1.0 / 1024.0, 7).generate();
    println!(
        "workload: {} ({} events, {:.0} MiB/s free rate, {:.0}% pointer pages)\n",
        profile.name,
        trace.events.len(),
        profile.free_rate_mib_s,
        profile.pointer_page_density * 100.0
    );
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "quarantine", "time (norm)", "mem (norm)", "sweeps"
    );

    for fraction in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let mut sut = CherivokeUnderTest::new(
            &trace,
            RevocationPolicy::with_fraction(fraction),
            CostModel::x86_default(),
            Stage::Full,
        )
        .expect("construct heap");
        let report = run_trace(&mut sut, &trace).expect("replay");
        println!(
            "{:>11}% {:>12.3} {:>12.3} {:>8}",
            (fraction * 100.0) as u64,
            report.normalized_time,
            report.normalized_memory,
            sut.sweeps()
        );
    }

    println!(
        "\nBigger quarantines sweep less often (time falls) but detain more dead\n\
         memory (footprint rises) — the deterministic dial of paper §3.1/§6.4."
    );
}
