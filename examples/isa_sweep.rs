//! The §3.3 revocation inner loop executed **instruction by instruction**
//! on the CHERI CPU model, CLoadTags included.
//!
//! ```sh
//! cargo run --example isa_sweep
//! ```

use cheri::Capability;
use cheriisa::programs::{heap_cpu, sweep_heap};
use revoker::ShadowMap;
use tagmem::SegmentKind;

const HEAP: u64 = 0x1000_0000;
const LEN: u64 = 1 << 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A heap with 64 capabilities; a third of their targets are quarantined.
    let mut plants = Vec::new();
    for i in 0..64u64 {
        let obj = Capability::root_rw(HEAP + 0x8000 + i * 64, 64);
        plants.push((HEAP + i * 112, obj));
    }
    let mut shadow = ShadowMap::new(HEAP, LEN);
    let mut quarantined = 0;
    for i in (0..64u64).step_by(3) {
        shadow.paint(HEAP + 0x8000 + i * 64, 64);
        quarantined += 1;
    }

    let (mut cpu, heap_reg, shadow_reg) = heap_cpu(HEAP, LEN, &plants);
    println!(
        "heap: {} KiB, {} capabilities, {} target objects quarantined",
        LEN >> 10,
        plants.len(),
        quarantined
    );

    let stats = sweep_heap(&mut cpu, heap_reg, shadow_reg, shadow.as_words())?;
    println!(
        "ISA sweep: {} instructions retired, {} lines skipped via CLoadTags,\n\
         \u{20}          {} capabilities inspected, {} revoked",
        stats.instructions, stats.lines_skipped, stats.caps_inspected, stats.caps_revoked
    );
    assert_eq!(stats.caps_revoked, quarantined);

    // Verify the revocations took effect architecturally.
    let heap_mem = cpu.space().segment(SegmentKind::Heap).expect("heap").mem();
    assert_eq!(heap_mem.tag_count(), plants.len() as u64 - quarantined);
    println!(
        "surviving tags in heap memory: {} (== {} planted - {} revoked)",
        heap_mem.tag_count(),
        plants.len(),
        quarantined
    );
    println!(
        "\nEvery load, tag query, shadow lookup and invalidating store above was\n\
         a modelled CHERI instruction — the deterministic inner loop of §3.3,\n\
         with §3.4.1's CLoadTags skipping capability-free lines."
    );
    Ok(())
}
