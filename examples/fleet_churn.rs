//! A multi-tenant "heap as a service" on the fleet subsystem.
//!
//! ```sh
//! cargo run --release --example fleet_churn
//! ```
//!
//! Sixty-four tenant heaps behind one [`cherivoke::HeapService`]: driver
//! threads deal Zipfian-skewed malloc/free churn (tenant 0 gets the bulk
//! of the traffic), while the shared sweep-worker pool arbitrates
//! revocation bandwidth by quarantine debt. The run demonstrates the
//! three fleet mechanisms end to end:
//!
//! * **Budgets** — every tenant's quarantine stays within its quota, no
//!   matter how hot the traffic gets; `malloc` on a tenant past 75% of
//!   its quota gets typed backpressure ([`FleetError::TenantThrottled`])
//!   instead of unbounded growth.
//! * **Work-stealing** — idle workers take epoch slices from the hot
//!   tenant instead of waiting for a cold tenant to become due.
//! * **Isolation** — a stale capability stashed by the hot tenant is
//!   revoked by that tenant's own sweep, and a cross-tenant stash is
//!   refused outright, so one tenant's dangling pointers can never be
//!   laundered through another tenant's heap.

use std::sync::atomic::{AtomicU64, Ordering};

use cherivoke::fleet::{FleetConfig, FleetError, HeapService};

const TENANTS: usize = 64;
const DRIVERS: usize = 4;
const OPS_PER_DRIVER: u64 = 20_000;
const ZIPF_S: f64 = 1.2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = FleetConfig::with_tenants(TENANTS);
    config.tenant_heap_size = 1 << 20;
    config.tenant_policy.quarantine_quota = 128 << 10;
    config.global_ceiling = TENANTS as u64 * (128 << 10);
    config.workers = 4;
    let service = HeapService::new(config)?;

    // Zipfian tenant weights, w ∝ 1/rank^s, as a cumulative distribution.
    let weights: Vec<f64> = (0..TENANTS)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(TENANTS);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let throttles = AtomicU64::new(0);
    // Peak quarantine-to-quota fraction observed mid-churn, in basis
    // points (the post-drain snapshot would always read zero).
    let peak_bps = AtomicU64::new(0);
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for driver in 0..DRIVERS {
            let service = &service;
            let cdf = &cdf;
            let throttles = &throttles;
            let peak_bps = &peak_bps;
            scope.spawn(move || {
                let mut state = 0x9e37u64 ^ (driver as u64) << 32;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut live: Vec<Vec<cheri::Capability>> = vec![Vec::new(); TENANTS];
                for op in 0..OPS_PER_DRIVER {
                    if op % 64 == 0 {
                        let frac = service.stats().max_budget_fraction();
                        peak_bps.fetch_max((frac * 10_000.0) as u64, Ordering::Relaxed);
                    }
                    let u = (rng() >> 11) as f64 / (1u64 << 53) as f64;
                    let tenant = cdf.partition_point(|&c| c < u).min(TENANTS - 1);
                    if live[tenant].len() >= 8 {
                        let cap = live[tenant].remove(0);
                        service.free(cap).expect("free");
                    } else {
                        match service.malloc(tenant, 512 + (rng() % 8) * 448) {
                            Ok(cap) => {
                                // A self-capability makes the page worth
                                // sweeping — real worklists for the pool.
                                service.store_cap(&cap, 0, &cap).expect("store");
                                live[tenant].push(cap);
                            }
                            Err(FleetError::TenantThrottled { .. }) => {
                                // Idiomatic backpressure: shed load, wake
                                // the sweep pool, and yield so it can
                                // drain the quarantine we just grew.
                                throttles.fetch_add(1, Ordering::Relaxed);
                                if let Some(cap) = live[tenant].pop() {
                                    service.free(cap).expect("shed");
                                }
                                service.kick();
                                std::thread::sleep(std::time::Duration::from_micros(50));
                            }
                            Err(e) => panic!("malloc: {e}"),
                        }
                    }
                }
                for stack in live {
                    for cap in stack {
                        let _ = service.free(cap);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    // Isolation demo: a stale pointer in the hot tenant dies with its
    // tenant's sweep; smuggling it into another tenant is refused.
    // (Drain first — the hot tenant may still be throttled post-churn.)
    service.drain_all();
    let hot = service.client(0)?;
    let cold = service.client(TENANTS - 1)?;
    let stash = hot.malloc(16)?;
    let victim = hot.malloc(64)?;
    service.store_cap(&stash, 0, &victim)?;
    let foreign_slot = cold.malloc(16)?;
    let smuggle = service.store_cap(&foreign_slot, 0, &victim);
    assert!(matches!(smuggle, Err(FleetError::CrossTenantStore { .. })));
    hot.free(victim)?;
    service.drain_tenant(0)?;
    let dangling = hot.load_cap(&stash, 0)?;
    assert!(!dangling.tag(), "stale capability must be revoked");

    service.drain_all();
    let stats = service.stats();
    let ops = DRIVERS as u64 * OPS_PER_DRIVER;
    println!("fleet_churn: {TENANTS} tenants, {DRIVERS} drivers, zipf s={ZIPF_S}");
    println!(
        "  {ops} ops in {elapsed:.2}s = {:.0} ops/s aggregate",
        ops as f64 / elapsed
    );
    println!(
        "  epochs {} | stolen slices {} | throttled mallocs {} | emergency sweeps {}",
        stats.epochs, stats.steals, stats.throttled, stats.emergency_sweeps
    );
    let peak = peak_bps.load(Ordering::Relaxed) as f64 / 100.0;
    println!(
        "  p99 sweep pause {:.0}µs | peak budget use {peak:.0}% of quota | global quarantine {}",
        stats.pauses.percentile_ns(99.0) as f64 / 1e3,
        stats.global_quarantined
    );
    let hot_stats = &stats.tenants[0];
    println!(
        "  hot tenant: {} mallocs, {} frees, {} epochs, {} throttles",
        hot_stats.mallocs, hot_stats.frees, hot_stats.epochs, hot_stats.throttled
    );
    assert!(peak <= 100.0, "budget bound must hold");
    assert_eq!(stats.global_quarantined, 0);
    println!("  every tenant stayed within its quarantine budget; stale pointer revoked");
    Ok(())
}
