//! Detection vs. mitigation vs. prevention: the same use-after-free attack
//! against four memory-safety postures (paper §7.4–7.5 vs. §4.2).
//!
//! ```sh
//! cargo run --example detection_vs_prevention
//! ```
//!
//! | scheme | class | outcome here |
//! |---|---|---|
//! | conventional dlmalloc | none | attack succeeds immediately |
//! | Cling (type-safe reuse) | mitigation | cross-type hijack impossible; same-type aliasing remains |
//! | Arm MTE-style colours | detection | stale access faults — until the attacker cycles the 15 colours |
//! | CHERIvoke | prevention | deterministic: the dangling pointer is revoked before reuse |

use baselines::{ClingHeap, MteHeap, MTE_COLOURS};
use cherivoke::{CherivokeHeap, HeapConfig};
use cvkalloc::DlAllocator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== one use-after-reallocation bug, four defences ==\n");

    // --- 1. Conventional allocator: immediate reuse, instant compromise.
    let mut plain = DlAllocator::new(0x1000_0000, 1 << 20);
    let victim = plain.malloc(64)?;
    plain.free(victim.addr)?;
    let attacker = plain.malloc(64)?;
    assert_eq!(attacker.addr, victim.addr);
    println!(
        "dlmalloc:   freed slot reallocated on the very next malloc -> attacker\n\
         \u{20}           data sits where the dangling pointer points. COMPROMISED."
    );

    // --- 2. Cling: the attacker's allocation site never receives the
    //        victim's memory, so the classic vtable hijack is impossible.
    let mut cling = ClingHeap::new(0x1000_0000, 1 << 20);
    const VICTIM_SITE: u32 = 1;
    const ATTACKER_SITE: u32 = 2;
    let victim = cling.malloc(64, VICTIM_SITE)?;
    cling.free(victim.addr, VICTIM_SITE)?;
    let mut recaptured = false;
    for _ in 0..1000 {
        let spray = cling.malloc(64, ATTACKER_SITE)?;
        recaptured |= spray.addr == victim.addr;
    }
    assert!(!recaptured);
    println!(
        "Cling:      1000 attacker-site sprays, 0 landed on the victim slot ->\n\
         \u{20}           cross-type hijack blocked; same-type aliasing still possible. MITIGATED."
    );

    // --- 3. MTE: the stale pointer faults at first…
    let mut mte = MteHeap::new(0x1000_0000, 1 << 20);
    let victim = mte.malloc(64)?;
    mte.free(victim)?;
    let _fresh = mte.malloc(64)?;
    assert!(mte.load(victim).is_err());
    println!("MTE-style:  first stale access faults (tag mismatch) -> DETECTED…");
    // …but a motivated attacker cycles the colour space (§7.5).
    let mut mte = MteHeap::new(0x2000_0000, 1 << 20);
    let _ballast = mte.malloc(1024)?;
    let victim = mte.malloc(64)?;
    mte.free(victim)?;
    let attempts = mte
        .exhaust_colours(victim, 64)
        .expect("exhaustion succeeds");
    assert!(mte.load(victim).is_ok());
    println!(
        "\u{20}           …but {attempts} sprays cycled the {MTE_COLOURS}-colour space and the stale\n\
         \u{20}           pointer validates again. EVENTUALLY COMPROMISED."
    );

    // --- 4. CHERIvoke: reuse is deterministically gated on revocation.
    let mut heap = CherivokeHeap::new(HeapConfig::small())?;
    let victim = heap.malloc(64)?;
    let stash = heap.malloc(16)?;
    heap.store_cap(&stash, 0, &victim)?;
    heap.free(victim)?;
    let mut reuse_seen = false;
    for _ in 0..20_000 {
        let spray = heap.malloc(64)?;
        let landed = spray.base() == victim.base();
        reuse_seen |= landed;
        if landed {
            break;
        }
        heap.free(spray)?;
    }
    assert!(reuse_seen, "the address did come back eventually…");
    let dangling = heap.load_cap(&stash, 0)?;
    assert!(!dangling.tag());
    assert!(heap.load_u64(&dangling, 0).is_err());
    println!(
        "CHERIvoke:  the address was reused only after a revocation sweep; the\n\
         \u{20}           dangling capability is untagged and faults forever. PREVENTED\n\
         \u{20}           (deterministic — no colour space to exhaust, no pointer to hide)."
    );
    Ok(())
}
