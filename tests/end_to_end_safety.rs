//! Cross-crate integration tests: the temporal-safety guarantees of the
//! full system (capability model + tagged memory + allocator + revoker),
//! exercised through the public `CherivokeHeap` API.

use cheri::{CapError, Capability, Perms};
use cherivoke::{
    CherivokeHeap, ConcurrentHeap, HeapConfig, HeapError, RevocationPolicy, ServiceConfig,
};

fn heap() -> CherivokeHeap {
    CherivokeHeap::new(HeapConfig::small()).expect("heap")
}

/// The headline guarantee (paper §4.2): after a sweep, *no* reference to
/// freed memory exists anywhere, even with copies in every root set.
#[test]
fn no_reference_survives_revocation_anywhere() {
    let mut h = heap();
    let _ballast = h.malloc(512 << 10).unwrap();
    let obj = h.malloc(128).unwrap();

    // Scatter eight copies across every kind of sweep root.
    let heap_holder = h.malloc(256).unwrap();
    for i in 0..4 {
        h.store_cap(&heap_holder, i * 16, &obj).unwrap();
    }
    let stack = h.stack_root();
    h.store_cap(&stack, 0, &obj).unwrap();
    let globals = h.globals_root();
    h.store_cap(&globals, 0, &obj).unwrap();
    h.set_register(1, obj);
    h.set_register(30, obj.incremented(64).unwrap()); // wandered copy

    h.free(obj).unwrap();
    let stats = h.revoke_now();
    assert_eq!(stats.caps_revoked, 8);

    for i in 0..4 {
        assert!(!h.load_cap(&heap_holder, i * 16).unwrap().tag());
    }
    assert!(!h.load_cap(&stack, 0).unwrap().tag());
    assert!(!h.load_cap(&globals, 0).unwrap().tag());
    assert!(!h.register(1).tag());
    assert!(!h.register(30).tag());
}

/// Derived (re-bounded, perm-stripped, wandered) capabilities are still
/// attributed to the allocation and revoked with it.
#[test]
fn derived_capabilities_are_revoked_with_their_allocation() {
    let mut h = heap();
    let _ballast = h.malloc(512 << 10).unwrap();
    let obj = h.malloc(256).unwrap();
    let field = obj.set_bounds_exact(obj.base() + 64, 32).unwrap();
    let ro = obj
        .with_perms(Perms::LOAD | Perms::LOAD_CAP | Perms::GLOBAL)
        .unwrap();
    let oob = obj.incremented(256).unwrap();

    let holder = h.malloc(64).unwrap();
    h.store_cap(&holder, 0, &field).unwrap();
    h.store_cap(&holder, 16, &ro).unwrap();
    h.store_cap(&holder, 32, &oob).unwrap();

    h.free(obj).unwrap();
    let stats = h.revoke_now();
    assert_eq!(
        stats.caps_revoked, 3,
        "all derivations share the base attribution"
    );
}

/// Unrelated capabilities are never harmed by a sweep — the precision claim
/// of §4.1 (no false positives).
#[test]
fn sweeps_never_revoke_live_allocations() {
    let mut h = heap();
    let _ballast = h.malloc(256 << 10).unwrap();
    let survivors: Vec<Capability> = (0..50).map(|_| h.malloc(64).unwrap()).collect();
    let holder = h.malloc(1024).unwrap();
    for (i, s) in survivors.iter().enumerate() {
        h.store_cap(&holder, (i * 16) as u64, s).unwrap();
    }
    // Interleave doomed allocations and free them all.
    let doomed: Vec<Capability> = (0..50).map(|_| h.malloc(64).unwrap()).collect();
    for d in doomed {
        h.free(d).unwrap();
    }
    h.revoke_now();
    for (i, s) in survivors.iter().enumerate() {
        let got = h.load_cap(&holder, (i * 16) as u64).unwrap();
        assert!(got.tag(), "survivor {i} was wrongly revoked");
        assert_eq!(got.base(), s.base());
        // And still usable.
        assert!(h.load_u64(&got, 0).is_ok());
    }
}

/// Heavy churn with reuse: after every sweep, memory that gets recycled is
/// unreachable through any old capability (the use-after-reallocation
/// guarantee, exercised hundreds of times).
#[test]
fn reallocation_is_always_safe_under_churn() {
    let mut cfg = HeapConfig::small();
    cfg.policy = RevocationPolicy::with_fraction(0.25);
    let mut h = CherivokeHeap::new(cfg).unwrap();
    let _ballast = h.malloc(128 << 10).unwrap();

    // The "old pointer museum": one holder slot per freed object.
    let museum = h.malloc(4096).unwrap();
    let mut next_slot = 0u64;

    let mut rng: u64 = 0x1234_5678;
    let mut live: Vec<Capability> = Vec::new();
    for step in 0..3000u64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if rng.is_multiple_of(3) && !live.is_empty() {
            let victim = live.swap_remove((rng >> 32) as usize % live.len());
            if next_slot < 256 {
                h.store_cap(&museum, next_slot * 16, &victim).unwrap();
                next_slot += 1;
            }
            h.free(victim).unwrap();
        } else {
            let size = 32 + (rng >> 40) % 512;
            live.push(h.malloc(size).unwrap());
        }
        // Every 500 steps, audit the museum: any still-tagged exhibit must
        // point at memory that has NOT been reallocated (i.e. it is still
        // quarantined). Revoked exhibits must fault.
        if step % 500 == 499 {
            for slot in 0..next_slot {
                let exhibit = h.load_cap(&museum, slot * 16).unwrap();
                if exhibit.tag() {
                    // Quarantined: reads work but the memory was never
                    // handed out again — verified by the allocator state.
                    assert!(h.load_u64(&exhibit, 0).is_ok());
                } else {
                    assert_eq!(
                        h.load_u64(&exhibit, 0),
                        Err(HeapError::Cap(CapError::TagCleared))
                    );
                }
            }
        }
    }
    assert!(h.stats().sweeps > 0, "churn must have triggered sweeps");
    assert!(h.stats().caps_revoked > 0);
}

/// Strict mode gives per-free revocation (the §3.7 debugging mode).
#[test]
fn strict_mode_revokes_immediately() {
    let mut cfg = HeapConfig::small();
    cfg.policy.strict = true;
    // Strict per-free revocation requires the stock backend (the
    // sweep-avoidance backends schedule partial sweeps, which validated()
    // rejects as InvalidConfig) — pin it so a CHERIVOKE_BACKEND override
    // in the environment cannot invalidate this config.
    cfg.policy.backend = cherivoke::BackendKind::Stock;
    let mut h = CherivokeHeap::new(cfg).unwrap();
    let obj = h.malloc(64).unwrap();
    let holder = h.malloc(16).unwrap();
    h.store_cap(&holder, 0, &obj).unwrap();
    h.free(obj).unwrap();
    // No revoke_now() call: strict free already swept. (Note: `obj` itself
    // is a Rust-side value — the model's equivalent of a CPU register the
    // simulator does not track; the architectural copies are what the sweep
    // reaches, and the in-memory one is dead.)
    let dangling = h.load_cap(&holder, 0).unwrap();
    assert!(!dangling.tag());
    assert_eq!(
        h.load_u64(&dangling, 0),
        Err(HeapError::Cap(CapError::TagCleared))
    );
    assert_eq!(h.stats().sweeps, 1);
}

/// Capability unforgeability end-to-end: data writes that reproduce a
/// capability's bit pattern do not produce authority.
#[test]
fn capabilities_cannot_be_forged_through_data_writes() {
    let mut h = heap();
    let _ballast = h.malloc(512 << 10).unwrap();
    let secret = h.malloc(64).unwrap();
    h.store_u64(&secret, 0, 0x5ec2e7).unwrap();

    // The "attacker" writes the exact 16 bytes of the capability into
    // memory as data, via a perfectly legitimate buffer it owns.
    let buffer = h.malloc(64).unwrap();
    let word = cheri::CapWord::encode(&secret);
    let bytes = word.to_le_bytes();
    let lo = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let hi = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    h.store_u64(&buffer, 0, lo).unwrap();
    h.store_u64(&buffer, 8, hi).unwrap();

    // Reading it back as a capability yields an untagged word: no authority.
    let forged = h.load_cap(&buffer, 0).unwrap();
    assert!(!forged.tag());
    assert_eq!(
        forged.address(),
        secret.address(),
        "bit pattern copied faithfully"
    );
    assert_eq!(
        h.load_u64(&forged, 0),
        Err(HeapError::Cap(CapError::TagCleared))
    );
}

/// Freeing through anything but the exact allocation capability fails.
#[test]
fn free_validates_provenance() {
    let mut h = heap();
    let _ballast = h.malloc(512 << 10).unwrap();
    let obj = h.malloc(128).unwrap();

    // Interior-bounded derivation: rejected.
    let interior = obj.set_bounds_exact(obj.base() + 16, 16).unwrap();
    assert!(matches!(h.free(interior), Err(HeapError::Alloc(_))));

    // Untagged copy: rejected.
    assert_eq!(
        h.free(obj.cleared()),
        Err(HeapError::Cap(CapError::TagCleared))
    );

    // Stack/global capabilities are not heap allocations.
    assert!(matches!(h.free(h.stack_root()), Err(HeapError::Alloc(_))));

    // The real thing works (address may have wandered — base decides).
    let wandered = obj.incremented(64).unwrap();
    h.free(wandered).unwrap();
}

/// The quarantine + shadow memory accounting matches the configured
/// overhead envelope.
#[test]
fn memory_overhead_stays_within_envelope() {
    let mut cfg = HeapConfig::small();
    cfg.policy = RevocationPolicy::with_fraction(0.25);
    let mut h = CherivokeHeap::new(cfg).unwrap();
    let _ballast = h.malloc(256 << 10).unwrap();
    for _ in 0..2000 {
        let c = h.malloc(256).unwrap();
        h.free(c).unwrap();
    }
    let s = h.stats();
    let footprint_ratio = s.alloc.peak_footprint_bytes as f64 / s.alloc.peak_live_bytes as f64;
    assert!(
        footprint_ratio <= 1.30,
        "quarantine should cap near 25% of live, got {footprint_ratio}"
    );
    // Shadow is 1/128 of the heap (paper §3.2: "less than 1% of the heap").
    assert!(h.shadow_bytes() * 128 >= 1 << 20);
    assert!((h.shadow_bytes() as f64) < 0.01 * (1 << 20) as f64 * 1.3);
}

/// Multi-threaded use-after-free on the concurrent service: mutator
/// threads churn in parallel while each keeps stashing dangling
/// **cross-shard** copies of capabilities it frees. At every probe, a
/// still-tagged stale copy must read back the exact bytes the thread wrote
/// (the memory is quarantined, never reallocated); a revoked copy must be
/// untagged. After the final drain no stale copy survives anywhere.
#[test]
fn concurrent_churn_has_no_use_after_reallocation() {
    const THREADS: usize = 4;
    const OPS: u64 = 2_000;
    let heap = ConcurrentHeap::new(ServiceConfig::small()).unwrap();

    // Each thread's stash holder lives on the *next* shard, so every
    // dangling copy crosses shards — the §3.5 foreign-sweep path.
    let holders: Vec<Capability> = (0..THREADS)
        .map(|t| heap.malloc_on((t + 1) % THREADS, 32 * 16).unwrap())
        .collect();

    std::thread::scope(|scope| {
        for (t, holder) in holders.iter().enumerate() {
            let client = heap.handle_on(t);
            scope.spawn(move || {
                // slot -> session id written to the stashed (now freed)
                // allocation. None = slot's copy not expected to be stale.
                let mut expect: [Option<u64>; 32] = [None; 32];
                for i in 0..OPS {
                    let id = (t as u64) << 32 | i;
                    let obj = client.malloc(64 + (i % 13) * 32).unwrap();
                    client.store_u64(&obj, 0, id).unwrap();
                    let slot = i % 32;
                    client.store_cap(holder, slot * 16, &obj).unwrap();
                    client.free(obj).unwrap();
                    expect[slot as usize] = Some(id);

                    // Probe an older stale stash: use-after-free attempt.
                    let probe = (i * 7 + 3) % 32;
                    if let Some(id) = expect[probe as usize] {
                        let stale = client.load_cap(holder, probe * 16).unwrap();
                        if stale.tag() {
                            // Not yet revoked: must still be quarantined,
                            // so the bytes are exactly as this thread left
                            // them — reallocation never exposed the memory.
                            assert_eq!(client.load_u64(&stale, 0), Ok(id));
                        }
                        // Untagged = revoked before reuse: the safe fault.
                    }
                }
            });
        }
    });

    heap.revoke_all_now();
    assert_eq!(
        heap.quarantined_bytes(),
        0,
        "final drain leaves quarantine empty"
    );
    for holder in &holders {
        for slot in 0..32 {
            let cap = heap.load_cap(holder, slot * 16).unwrap();
            assert!(!cap.tag(), "stale cross-shard stash survived revocation");
        }
    }
    let stats = heap.stats();
    assert!(
        stats.foreign_sweeps > 0,
        "cross-shard handshake must have run"
    );
}

/// An OOM caused by quarantine pressure recovers via an emergency sweep and
/// stays safe: the recycled memory is unreachable through any old pointers.
#[test]
fn emergency_sweep_preserves_safety() {
    let mut cfg = HeapConfig::small();
    cfg.policy.quarantine.fraction = f64::INFINITY;
    let mut h = CherivokeHeap::new(cfg).unwrap();
    let holder = h.malloc(4096).unwrap();
    let mut slot = 0;
    let mut freed = Vec::new();
    // Fill most of the heap and free it all (everything quarantined).
    while let Ok(c) = h.malloc(32 << 10) {
        if slot < 256 {
            h.store_cap(&holder, slot * 16, &c).unwrap();
            slot += 1;
        }
        freed.push(c);
        if freed.len() >= 25 {
            break;
        }
    }
    for c in freed {
        h.free(c).unwrap();
    }
    // This malloc cannot be satisfied without draining quarantine.
    let big = h.malloc(512 << 10).unwrap();
    assert!(big.tag());
    assert_eq!(h.stats().oom_sweeps, 1);
    // Every stored copy of the freed capabilities is now dead.
    for i in 0..slot {
        assert!(!h.load_cap(&holder, i * 16).unwrap().tag());
    }
}
