//! Cross-crate test of the full §5.3 offline pipeline: run a workload,
//! capture a dump, serialise it, deserialise on "another machine", and
//! verify that plans, timed sweeps and functional sweeps all agree with
//! the live heap's view.

use cherivoke::{CherivokeHeap, HeapConfig};
use revoker::timed::{timed_sweep, TimedMode};
use revoker::{Kernel, ShadowMap, SkipMode, SweepPlan, Sweeper};
use simcache::{Machine, MachineConfig};
use tagmem::snapshot_io::{decode_dump, encode_dump};
use workloads::trace_io::{decode_trace, encode_trace};
use workloads::{profiles, run_trace, CherivokeUnderTest, TraceGenerator};

/// Build a heap mid-workload with a painted shadow, exactly as a sweep
/// would see it.
fn loaded_heap() -> (CherivokeHeap, ShadowMap) {
    let mut cfg = HeapConfig::small();
    cfg.policy.quarantine.fraction = f64::INFINITY; // manual control
    let mut h = CherivokeHeap::new(cfg).unwrap();
    let holder = h.malloc(4096).unwrap();
    let mut doomed = Vec::new();
    for i in 0..128u64 {
        let obj = h.malloc(64 + i % 512).unwrap();
        if i % 2 == 0 {
            h.store_cap(&holder, (i / 2 * 16) % 4096, &obj).unwrap();
        }
        if i % 3 == 0 {
            doomed.push(obj);
        }
    }
    for d in doomed {
        h.free(d).unwrap();
    }
    let mut shadow = ShadowMap::new(0x1000_0000, 1 << 20);
    for (addr, len) in h.allocator().quarantined_ranges() {
        shadow.paint(addr, len);
    }
    (h, shadow)
}

#[test]
fn serialised_dumps_sweep_identically_to_live_memory() {
    let (h, shadow) = loaded_heap();
    let dump = h.dump();

    // Round-trip through the wire format.
    let restored = decode_dump(encode_dump(&dump)).expect("valid encoding");
    assert_eq!(restored, dump);

    // Plans agree byte for byte.
    for mode in [SkipMode::None, SkipMode::PteCapDirty, SkipMode::CLoadTags] {
        let a = SweepPlan::for_dump(&dump, mode);
        let b = SweepPlan::for_dump(&restored, mode);
        assert_eq!(a.regions(), b.regions(), "{mode:?}");
        assert_eq!(a.bytes_planned(), b.bytes_planned());
    }

    // Timed sweeps agree cycle for cycle (the model is deterministic).
    for mode in [
        TimedMode::Full,
        TimedMode::PteCapDirty,
        TimedMode::CLoadTags,
    ] {
        let mut m1 = Machine::new(MachineConfig::cheri_fpga_like());
        let mut m2 = Machine::new(MachineConfig::cheri_fpga_like());
        let r1 = timed_sweep(&dump, &shadow, &mut m1, mode);
        let r2 = timed_sweep(&restored, &shadow, &mut m2, mode);
        assert_eq!(r1.cycles, r2.cycles, "{mode:?}");
        assert_eq!(r1.caps_revoked, r2.caps_revoked);
    }

    // Functional sweep of the restored dump matches a sweep of the live
    // heap's own image.
    let mut live_img = dump.clone();
    let mut wire_img = restored;
    let sweeper = Sweeper::new(Kernel::Wide);
    let mut live_total = 0;
    let mut wire_total = 0;
    for img in live_img.segments_mut() {
        live_total += sweeper.sweep_segment(&mut img.mem, &shadow).caps_revoked;
    }
    for img in wire_img.segments_mut() {
        wire_total += sweeper.sweep_segment(&mut img.mem, &shadow).caps_revoked;
    }
    assert_eq!(live_total, wire_total);
    assert!(live_total > 0, "scenario must have dangling captures");
}

#[test]
fn serialised_traces_replay_identically() {
    let p = profiles::by_name("omnetpp").unwrap();
    let trace = TraceGenerator::new(p, 1.0 / 2048.0, 77).generate();
    let wire = decode_trace(encode_trace(&trace)).expect("valid encoding");

    let mut a = CherivokeUnderTest::paper_default(&trace).unwrap();
    let mut b = CherivokeUnderTest::paper_default(&wire).unwrap();
    let ra = run_trace(&mut a, &trace).unwrap();
    let rb = run_trace(&mut b, &wire).unwrap();

    assert_eq!(ra.events, rb.events);
    assert_eq!(a.heap().stats().caps_revoked, b.heap().stats().caps_revoked);
    assert_eq!(a.heap().stats().sweeps, b.heap().stats().sweeps);
    assert_eq!(
        a.heap().stats().alloc.peak_footprint_bytes,
        b.heap().stats().alloc.peak_footprint_bytes
    );
    assert!((ra.normalized_time - rb.normalized_time).abs() < 1e-12);
}
