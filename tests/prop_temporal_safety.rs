//! Property-based test of the system-wide temporal-safety theorem.
//!
//! For *any* sequence of mallocs, frees, capability copies and sweeps:
//!
//! 1. **No use-after-reallocation**: whenever `malloc` returns a region,
//!    no tagged capability stored anywhere in the swept roots references a
//!    *previous* allocation of any byte of that region.
//! 2. **No false revocation**: capabilities to live allocations survive
//!    every sweep with their tags intact.
//!
//! The checker tracks allocation generations per address and audits the
//! heap after every operation batch.

use std::collections::HashMap;

use cheri::Capability;
use cherivoke::{CherivokeHeap, ConcurrentHeap, HeapConfig, RevocationPolicy, ServiceConfig};
use proptest::prelude::*;
use tagmem::SegmentKind;

#[derive(Debug, Clone)]
enum Op {
    Malloc {
        size: u64,
    },
    FreeOldest,
    FreeNewest,
    /// Copy the capability of a random live object into a holder slot.
    StashCopy {
        live_idx: usize,
        slot: usize,
    },
    Sweep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (16u64..2048).prop_map(|size| Op::Malloc { size }),
        2 => Just(Op::FreeOldest),
        1 => Just(Op::FreeNewest),
        3 => (0usize..64, 0usize..128).prop_map(|(live_idx, slot)| Op::StashCopy { live_idx, slot }),
        1 => Just(Op::Sweep),
    ]
}

/// Every tagged capability currently stored in the heap segment, by base.
fn tagged_bases(h: &CherivokeHeap) -> Vec<(u64, u64)> {
    let mem = h.space().segment(SegmentKind::Heap).expect("heap").mem();
    mem.tagged_addrs()
        .map(|addr| {
            let cap = mem.read_cap(addr).expect("aligned tagged read");
            (addr, cap.base())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn temporal_safety_holds_for_arbitrary_programs(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cfg = HeapConfig::small();
        cfg.policy = RevocationPolicy::with_fraction(0.25);
        let mut h = CherivokeHeap::new(cfg).expect("heap");
        let _ballast = h.malloc(64 << 10).expect("ballast");
        let holder = h.malloc(128 * 16).expect("holder");

        // generation[addr] increments on every reallocation starting there.
        let mut generation: HashMap<u64, u64> = HashMap::new();
        // For every stashed copy: (slot, base, generation at stash time).
        let mut stashes: HashMap<usize, (u64, u64)> = HashMap::new();
        let mut live: Vec<Capability> = Vec::new();

        for op in ops {
            match op {
                Op::Malloc { size } => {
                    if let Ok(cap) = h.malloc(size) {
                        let g = generation.entry(cap.base()).or_insert(0);
                        *g += 1;
                        live.push(cap);
                    }
                }
                Op::FreeOldest if !live.is_empty() => {
                    let cap = live.remove(0);
                    h.free(cap).expect("valid free");
                }
                Op::FreeNewest if !live.is_empty() => {
                    let cap = live.pop().expect("nonempty");
                    h.free(cap).expect("valid free");
                }
                Op::FreeOldest | Op::FreeNewest => {}
                Op::StashCopy { live_idx, slot } => {
                    if !live.is_empty() {
                        let cap = live[live_idx % live.len()];
                        h.store_cap(&holder, (slot * 16) as u64, &cap).expect("store");
                        stashes.insert(slot, (cap.base(), generation[&cap.base()]));
                    }
                }
                Op::Sweep => {
                    h.revoke_now();
                }
            }

            // INVARIANT 1: every tagged capability in memory referencing a
            // reallocated region must be from the *current* generation —
            // i.e. no stale-generation capability survives reallocation.
            for (slot, (base, gen_at_stash)) in &stashes {
                let cap = h.load_cap(&holder, (*slot * 16) as u64).expect("load");
                if cap.tag() && generation.get(base) != Some(gen_at_stash) {
                    // The region was reallocated after this stash: the old
                    // capability MUST have been revoked first.
                    prop_assert!(
                        false,
                        "stale capability to {base:#x} (gen {gen_at_stash}) survived reallocation"
                    );
                }
            }

            // INVARIANT 2: all live allocations' stored copies stay tagged
            // and correctly bounded.
            let tagged = tagged_bases(&h);
            for cap in &live {
                // Any stored copy with this base must still be valid; the
                // sweep must never have touched it. (We can't assert a copy
                // exists — only that none were wrongly killed, which
                // invariant 1 plus this spot check covers.)
                for (_, base) in tagged.iter().filter(|(_, b)| *b == cap.base()) {
                    prop_assert_eq!(*base, cap.base());
                }
            }
        }

        // Final audit: force a sweep and confirm that freeing everything
        // kills every outstanding stash.
        for cap in live.drain(..) {
            h.free(cap).expect("final free");
        }
        h.revoke_now();
        for (slot, _) in stashes {
            let cap = h.load_cap(&holder, (slot * 16) as u64).expect("load");
            prop_assert!(!cap.tag(), "stash {slot} survived the final revocation");
        }
    }
}

/// Operations against the *concurrent* service ([`ConcurrentHeap`]): the
/// same temporal-safety theorem must hold for any shard count and any op
/// sequence, including capability copies stashed **across shards** and
/// revocations racing the background revoker thread.
#[derive(Debug, Clone)]
enum SvcOp {
    Malloc {
        shard: usize,
        size: u64,
    },
    FreeOldest,
    /// Copy a random live capability into a holder slot — holders are
    /// spread across shards, so most stashes are cross-shard.
    Stash {
        live_idx: usize,
        slot: usize,
    },
    RevokeAll,
}

fn svc_op_strategy() -> impl Strategy<Value = SvcOp> {
    prop_oneof![
        4 => (0usize..8, 16u64..2048).prop_map(|(shard, size)| SvcOp::Malloc { shard, size }),
        3 => Just(SvcOp::FreeOldest),
        3 => (0usize..64, 0usize..96).prop_map(|(live_idx, slot)| SvcOp::Stash { live_idx, slot }),
        1 => Just(SvcOp::RevokeAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_service_temporal_safety(
        shards in 1usize..5,
        ops in proptest::collection::vec(svc_op_strategy(), 1..100),
    ) {
        let config = ServiceConfig {
            shards,
            ..ServiceConfig::small()
        };
        let heap = ConcurrentHeap::new(config).expect("service");
        // One 96-slot stash holder region, one segment per shard.
        let holders: Vec<Capability> = (0..shards)
            .map(|i| heap.malloc_on(i, 96 * 16).expect("holder"))
            .collect();
        let slot_of = |slot: usize| (&holders[slot % shards], ((slot / shards) * 16) as u64);

        let mut live: Vec<Capability> = Vec::new();
        let mut used_slots: Vec<usize> = Vec::new();
        for op in ops {
            match op {
                SvcOp::Malloc { shard, size } => {
                    if let Ok(cap) = heap.malloc_on(shard % shards, size) {
                        live.push(cap);
                    }
                }
                SvcOp::FreeOldest if !live.is_empty() => {
                    heap.free(live.remove(0)).expect("valid free");
                }
                SvcOp::FreeOldest => {}
                SvcOp::Stash { live_idx, slot } => {
                    if !live.is_empty() {
                        let cap = live[live_idx % live.len()];
                        let (holder, off) = slot_of(slot);
                        heap.store_cap(holder, off, &cap).expect("stash");
                        used_slots.push(slot);
                    }
                }
                SvcOp::RevokeAll => heap.revoke_all_now(),
            }
        }

        // Free every remaining allocation, then run the full cross-shard
        // revocation: every stashed copy must be revoked — wherever it was
        // stored, whichever shard it pointed into — and the quarantine of
        // every shard must be fully drained.
        for cap in live.drain(..) {
            heap.free(cap).expect("final free");
        }
        heap.revoke_all_now();
        prop_assert_eq!(heap.quarantined_bytes(), 0, "quarantine drained service-wide");
        for slot in used_slots {
            let (holder, off) = slot_of(slot);
            let cap = heap.load_cap(holder, off).expect("load stash");
            prop_assert!(
                !cap.tag(),
                "cross-shard stash in slot {} survived the final revocation",
                slot
            );
        }
    }
}
