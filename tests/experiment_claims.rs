//! Integration tests asserting the paper's *qualitative evaluation claims*
//! hold in this reproduction — scaled-down versions of the figure
//! pipelines, so `cargo test` continuously verifies the headline results.

use baselines::{BoehmGcHeap, DangSanHeap, OscarHeap, PSweeperHeap};
use bench_helpers::*;
use revoker::timed::{timed_sweep, TimedMode};
use revoker::ShadowMap;
use simcache::{Machine, MachineConfig};
use tagmem::{CoreDump, SegmentImage, SegmentKind};
use workloads::{profiles, run_trace, CherivokeUnderTest, TraceGenerator};

/// Local stand-ins for the bench crate's image builders (the bench crate is
/// not a dependency of the umbrella crate's tests).
mod bench_helpers {
    use cheri::Capability;
    use tagmem::{TaggedMemory, LINE_SIZE, PAGE_SIZE};

    pub fn image_with_page_density(len: u64, d: f64) -> TaggedMemory {
        let base = 0x1000_0000u64;
        let mut mem = TaggedMemory::new(base, len);
        let cap = Capability::root_rw(base, 64);
        let pages = len / PAGE_SIZE;
        let dirty = (pages as f64 * d).round() as u64;
        for i in 0..dirty {
            let page = base + (i * pages / dirty.max(1)) * PAGE_SIZE;
            let mut line = page;
            while line < page + PAGE_SIZE {
                mem.write_cap(line, &cap).expect("in range");
                line += LINE_SIZE;
            }
        }
        mem
    }

    pub fn image_with_line_density(len: u64, d: f64) -> TaggedMemory {
        let base = 0x1000_0000u64;
        let mut mem = TaggedMemory::new(base, len);
        let cap = Capability::root_rw(base, 64);
        let lines = len / LINE_SIZE;
        let tagged = (lines as f64 * d).round() as u64;
        for i in 0..tagged {
            let line = base + (i * lines / tagged.max(1)) * LINE_SIZE;
            mem.write_cap(line, &cap).expect("in range");
        }
        mem
    }
}

const SCALE: f64 = 1.0 / 1024.0;
const SEED: u64 = 7;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Figure 5 claim: CHERIvoke "significantly outperforms any other
/// technique" in geomean execution time, and its average is in single-digit
/// percent.
#[test]
fn fig5_cherivoke_beats_every_comparator() {
    let mut cv = Vec::new();
    let mut oscar = Vec::new();
    let mut psweeper = Vec::new();
    let mut dangsan = Vec::new();
    let mut boehm = Vec::new();

    for p in profiles::spec() {
        let trace = TraceGenerator::new(p, SCALE, SEED).generate();
        let run = |r: Result<workloads::RunReport, workloads::ReplayError>| {
            r.unwrap_or_else(|e| panic!("{}: {e}", p.name))
                .normalized_time
        };
        let mut sut = CherivokeUnderTest::paper_default(&trace).expect("heap");
        cv.push(run(run_trace(&mut sut, &trace)));
        oscar.push(run(run_trace(&mut OscarHeap::new(&trace), &trace)));
        psweeper.push(run(run_trace(&mut PSweeperHeap::new(&trace), &trace)));
        dangsan.push(run(run_trace(&mut DangSanHeap::new(&trace), &trace)));
        boehm.push(run(run_trace(&mut BoehmGcHeap::new(&trace), &trace)));
    }

    let cv_geo = geomean(&cv);
    assert!(
        cv_geo < 1.10,
        "CHERIvoke average must be single-digit %, got {cv_geo}"
    );
    for (name, xs) in [
        ("Oscar", &oscar),
        ("pSweeper", &psweeper),
        ("DangSan", &dangsan),
        ("Boehm-GC", &boehm),
    ] {
        let other = geomean(xs);
        assert!(
            cv_geo < other,
            "CHERIvoke ({cv_geo:.3}) must beat {name} ({other:.3})"
        );
    }
    // Worst case stays bounded (paper: max 1.51).
    let max = cv.iter().cloned().fold(1.0f64, f64::max);
    assert!(
        max < 1.8,
        "CHERIvoke worst case should stay moderate, got {max}"
    );
}

/// Figure 6 claim: stages are cumulative, sweeping dominates where overhead
/// is high, and some benchmarks *gain* from free batching.
#[test]
fn fig6_decomposition_shape() {
    use workloads::{CostModel, Stage};
    let p = profiles::by_name("omnetpp").unwrap();
    let trace = TraceGenerator::new(p, SCALE, SEED).generate();
    let mut times = Vec::new();
    for stage in [Stage::QuarantineOnly, Stage::WithShadow, Stage::Full] {
        let mut sut = CherivokeUnderTest::new(
            &trace,
            cherivoke::RevocationPolicy::paper_default(),
            CostModel::x86_default(),
            stage,
        )
        .expect("heap");
        times.push(run_trace(&mut sut, &trace).expect("run").normalized_time);
    }
    assert!(times[0] <= times[1] && times[1] <= times[2]);
    assert!(
        times[2] - times[1] > times[1] - times[0],
        "sweeping dominates for omnetpp"
    );

    // dealII gains from batching: quarantine-only below 1.0 (fig. 6).
    let p = profiles::by_name("dealII").unwrap();
    let trace = TraceGenerator::new(p, SCALE, SEED).generate();
    let mut sut = CherivokeUnderTest::new(
        &trace,
        cherivoke::RevocationPolicy::paper_default(),
        CostModel::x86_default(),
        Stage::QuarantineOnly,
    )
    .expect("heap");
    let t = run_trace(&mut sut, &trace).expect("run").normalized_time;
    assert!(
        t < 1.0,
        "dealII quarantine-only should beat baseline, got {t}"
    );
}

/// Figure 8(b) claim: PTE CapDirty tracks the ideal line; CLoadTags wins at
/// low density and loses above a crossover.
#[test]
fn fig8b_hardware_assist_shape() {
    let len = 4 << 20;
    let normalised = |mem: tagmem::TaggedMemory, mode: TimedMode| -> f64 {
        let shadow = ShadowMap::new(mem.base(), mem.len());
        let dump = CoreDump::from_images(vec![SegmentImage {
            kind: SegmentKind::Heap,
            mem,
        }]);
        let mut m_full = Machine::new(MachineConfig::cheri_fpga_like());
        let full = timed_sweep(&dump, &shadow, &mut m_full, TimedMode::Full).cycles;
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        timed_sweep(&dump, &shadow, &mut m, mode).cycles as f64 / full as f64
    };

    // PTE hugs x = y at page granularity.
    for d in [0.2, 0.5, 0.8] {
        let t = normalised(image_with_page_density(len, d), TimedMode::PteCapDirty);
        assert!((t - d).abs() < 0.1, "PTE at density {d} gave {t}");
    }
    // CLoadTags beats a full sweep at low line density…
    let low = normalised(image_with_line_density(len, 0.1), TimedMode::CLoadTags);
    assert!(
        low < 0.6,
        "CLoadTags should pay off at 10% density, got {low}"
    );
    // …and exceeds it at full density (the §6.3 'can even lower performance').
    let high = normalised(image_with_line_density(len, 1.0), TimedMode::CLoadTags);
    assert!(
        high > 1.0,
        "CLoadTags must cost extra at 100% density, got {high}"
    );
}

/// Figure 9 claim: time falls monotonically as the quarantine grows, and
/// memory rises.
#[test]
fn fig9_tradeoff_is_monotone() {
    use workloads::{CostModel, Stage};
    let p = profiles::by_name("xalancbmk").unwrap();
    let trace = TraceGenerator::new(p, SCALE, SEED).generate();
    let mut last_time = f64::INFINITY;
    let mut last_mem = 0.0;
    for fraction in [0.1, 0.25, 0.5, 1.0, 2.0] {
        let mut sut = CherivokeUnderTest::new(
            &trace,
            cherivoke::RevocationPolicy::with_fraction(fraction),
            CostModel::x86_default(),
            Stage::Full,
        )
        .expect("heap");
        let r = run_trace(&mut sut, &trace).expect("run");
        assert!(
            r.normalized_time < last_time,
            "time should fall with fraction {fraction}: {} !< {last_time}",
            r.normalized_time
        );
        assert!(
            r.normalized_memory > last_mem,
            "memory should rise with fraction {fraction}"
        );
        last_time = r.normalized_time;
        last_mem = r.normalized_memory;
    }
}

/// §6.1.3 claim: the analytic model predicts the measured sweep overhead
/// within a small factor for every benchmark with meaningful overhead.
#[test]
fn analytic_model_matches_measurement() {
    for p in profiles::all() {
        let trace = TraceGenerator::new(p, SCALE, SEED).generate();
        let mut sut = CherivokeUnderTest::paper_default(&trace).expect("heap");
        let report = run_trace(&mut sut, &trace).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let measured = report.breakdown.sweep / report.app_seconds;
        let model = cherivoke::OverheadModel {
            free_rate_mib_s: p.free_rate_mib_s,
            pointer_density: p.pointer_page_density,
            scan_rate_mib_s: 8.0 * 1024.0,
            quarantine_fraction: 0.25 * 0.45,
        }
        .runtime_overhead();
        if model > 0.005 {
            let ratio = measured / model;
            assert!(
                (0.2..=3.0).contains(&ratio),
                "{}: measured {measured:.4} vs model {model:.4} (ratio {ratio:.2})",
                p.name
            );
        }
    }
}

/// Figure 10 claim: for the allocation-intensive workloads, sweep traffic
/// per second stays at or below the level implied by the time overhead
/// (sweeping is bandwidth-efficient).
#[test]
fn fig10_traffic_is_proportionate() {
    for name in ["omnetpp", "xalancbmk", "dealII"] {
        let p = profiles::by_name(name).unwrap();
        let trace = TraceGenerator::new(p, SCALE, SEED).generate();
        let mut sut = CherivokeUnderTest::paper_default(&trace).expect("heap");
        let report = run_trace(&mut sut, &trace).expect("run");
        let sweep_mib_s =
            sut.heap().stats().bytes_swept as f64 / (1024.0 * 1024.0) / report.app_seconds;
        // Sweeping at 8 GiB/s: traffic (MiB/s) = 8192 × time-fraction.
        let implied = 8192.0 * (report.breakdown.sweep / report.app_seconds);
        assert!(
            sweep_mib_s <= implied * 1.05 + 1.0,
            "{name}: sweep traffic {sweep_mib_s:.0} MiB/s exceeds implied {implied:.0}"
        );
    }
}
