//! Umbrella crate for the CHERIvoke reproduction workspace.
//!
//! This crate exists so that workspace-level integration tests (in `tests/`)
//! and runnable examples (in `examples/`) have a single dependency root. The
//! actual functionality lives in the member crates, re-exported here:
//!
//! * [`cheri`] — software model of CHERI Concentrate capabilities.
//! * [`cheriisa`] — instruction-level CHERI CPU (CLoadTags included).
//! * [`tagmem`] — tagged memory, hierarchical tag tables, page tables with
//!   CapDirty bits.
//! * [`simcache`] — cycle-approximate cache/DRAM hierarchy model.
//! * [`cvkalloc`] — dlmalloc-style allocator plus the quarantining
//!   `dlmalloc_cherivoke` variant.
//! * [`revoker`] — revocation shadow map and sweeping kernels.
//! * [`cherivoke`] — the paper's contribution: buffered sweeping revocation.
//! * [`baselines`] — comparator systems (Boehm-GC, DangSan, Oscar, pSweeper).
//! * [`workloads`] — benchmark profiles, trace generation, and the driver.

pub use baselines;
pub use cheri;
pub use cheriisa;
pub use cherivoke;
pub use cvkalloc;
pub use revoker;
pub use simcache;
pub use tagmem;
pub use workloads;
