//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion API its benches use:
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! and throughput annotation. Measurement is honest but simple — median of
//! `sample_size` wall-clock samples, printed as text; there is no
//! statistical regression analysis or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup (accepted and ignored: every batch
/// here is one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh `setup` output each sample; setup time is
    /// excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark (min 3; default 10 — far fewer than real
    /// criterion, matching this shim's smoke-test role).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotates per-iteration throughput for the whole group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let (lo, hi) = (ns[0], ns[ns.len() - 1]);
        let tp = match self.throughput {
            Some(Throughput::Bytes(bytes)) if median > 0 => {
                let gib_s = bytes as f64 / (median as f64 / 1e9) / (1u64 << 30) as f64;
                format!("  {gib_s:.2} GiB/s")
            }
            Some(Throughput::Elements(n)) if median > 0 => {
                let elem_s = n as f64 / (median as f64 / 1e9);
                format!("  {elem_s:.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median} ns (min {lo}, max {hi}, n={}){tp}",
            self.name,
            ns.len()
        );
    }

    /// Ends the group (printing happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }
}

/// Collects bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
