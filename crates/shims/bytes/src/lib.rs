//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `bytes` API it actually uses:
//! little-endian put/get accessors, [`BytesMut::freeze`], cursor-style
//! consumption via [`Buf`], and cheap slicing. Backed by plain `Vec<u8>`
//! (no refcounted zero-copy splitting — none of our formats need it).

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

/// Read access to a byte cursor (the subset of `bytes::Buf` we use).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consumes and returns the next `len` bytes.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

/// Write access to a byte sink (the subset of `bytes::BufMut` we use).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length of the *unread* portion (matches `bytes`, where consumed
    /// prefixes are gone).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Copies the unread bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// A sub-range of the unread bytes as a new buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let view = &self.data[self.pos..];
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => view.len(),
        };
        Bytes::from(view[start..end].to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xdead_beef);
        w.put_u8(7);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 1 + 8 + 8 + 3);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).as_ref(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        b.advance(1);
        assert_eq!(b.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.slice(1..).as_ref(), &[3, 4, 5]);
        assert_eq!(b.to_vec(), vec![2, 3, 4, 5]);
        assert_eq!(b.len(), 4);
    }
}
