//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace actually
//! serialises: non-generic structs with named fields (benchmark result
//! rows). No `syn`/`quote` — the input is walked with the compiler's own
//! `proc_macro` token API, which is all these simple shapes need.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` for a named-field struct.
///
/// # Panics
///
/// Panics at compile time when applied to enums, tuple structs, or generic
/// structs — extend the shim if the workspace ever needs those.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name> { ... }`, skipping attributes and visibility.
    let mut name = None;
    let mut fields_group = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("Serialize shim: expected struct name, got {other:?}"),
                }
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        fields_group = Some(g.clone());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("Serialize shim does not support generic structs")
                    }
                    other => {
                        panic!("Serialize shim only supports named-field structs, got {other:?}")
                    }
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("Serialize shim does not support enums")
            }
            _ => {}
        }
    }
    let name = name.expect("Serialize shim: no struct found in derive input");
    let group = fields_group.expect("Serialize shim: struct has no braced field list");

    // Field names: after the start or a top-level comma, skip attributes
    // (`#[...]`) and visibility (`pub`, `pub(...)`), then take the ident
    // preceding `:`.
    let mut fields: Vec<String> = Vec::new();
    let mut expecting_name = true;
    let mut body = group.stream().into_iter().peekable();
    while let Some(tt) = body.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => expecting_name = true,
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                // Attribute: consume the bracket group that follows.
                body.next();
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional `pub(...)` restriction group.
                    if let Some(TokenTree::Group(g)) = body.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            body.next();
                        }
                    }
                } else {
                    fields.push(s);
                    expecting_name = false;
                }
            }
            _ => {}
        }
    }

    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("Serialize shim: generated impl failed to parse")
}
