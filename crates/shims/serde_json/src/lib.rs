//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json):
//! renders the shim `serde` crate's [`serde::Value`] tree, and parses
//! JSON text back into one (the subset the workspace emits — objects,
//! arrays, strings with the escapes `render` produces, numbers, bools,
//! null). Typed deserialisation is not reproduced: consumers that read
//! JSON back (the `xtask` perf gate) walk the [`Value`] tree via its
//! accessors.

#![forbid(unsafe_code)]

use serde::Serialize;
pub use serde::Value;

/// Serialisation/parse error with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn at(msg: &str, pos: usize) -> Error {
        Error(format!("{msg} at byte {pos}"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails (the `Result` mirrors serde_json's signature).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, false, 0);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Never fails (the `Result` mirrors serde_json's signature).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, true, 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Integer literals become [`Value::UInt`] / [`Value::Int`]; anything
/// with a fraction or exponent becomes [`Value::Float`].
///
/// # Errors
///
/// Returns a positioned error on malformed input or trailing garbage.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::at("trailing characters", pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::at(&format!("expected '{}'", b as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::at("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::at(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            _ => return Err(Error::at("expected ',' or '}'", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::at("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::at("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::at("bad \\u escape", *pos))?;
                        // Surrogate pairs are not emitted by the renderer;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input came in as &str, so
                // byte boundaries are already valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::at("invalid utf-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' => {
                float = true;
                *pos += 1;
            }
            b'-' if float => *pos += 1, // exponent sign
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::at("invalid number", start))?;
    if text.is_empty() || text == "-" {
        return Err(Error::at("expected value", start));
    }
    if float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at("bad float literal", start))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u64>()
            .map_err(|_| Error::at("bad int literal", start))
            .map(|u| {
                i64::try_from(u)
                    .map(|i| Value::Int(-i))
                    .unwrap_or(Value::Float(-(u as f64)))
            })
    } else {
        match text.parse::<u64>() {
            Ok(u) => Ok(Value::UInt(u)),
            Err(_) => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::at("bad int literal", start)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let rows = vec![vec![1u64], vec![2, 3]];
        assert_eq!(super::to_string(&rows).unwrap(), "[[1],[2,3]]");
        assert_eq!(
            super::to_string_pretty(&rows).unwrap(),
            "[\n  [\n    1\n  ],\n  [\n    2,\n    3\n  ]\n]"
        );
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("3").unwrap(), Value::UInt(3));
        assert_eq!(from_str("-3").unwrap(), Value::Int(-3));
        assert_eq!(from_str("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"rows": [{"x": 1, "y": -2.5}], "ok": true}"#).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("x").unwrap().as_u64(), Some(1));
        assert_eq!(rows[0].get("y").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn render_parse_round_trip_is_stable() {
        let v = Value::Object(vec![
            ("throughput".into(), Value::Float(123.456)),
            ("count".into(), Value::UInt(7)),
            ("name".into(), Value::Str("fig5/omnetpp \"q\"".into())),
            (
                "nested".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        let rendered = to_string_pretty(&v).unwrap();
        let reparsed = from_str(&rendered).unwrap();
        assert_eq!(to_string_pretty(&reparsed).unwrap(), rendered);
    }
}
