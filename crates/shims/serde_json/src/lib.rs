//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json):
//! renders the shim `serde` crate's [`serde::Value`] tree. Only the
//! serialisation direction is provided — nothing in this workspace parses
//! JSON back.

#![forbid(unsafe_code)]

use serde::Serialize;

/// Serialisation error. The shim serialiser is total, so this is never
/// constructed — it exists so call sites keep serde_json's `Result` shape.
#[derive(Debug)]
pub struct Error(());

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json serialisation error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails (the `Result` mirrors serde_json's signature).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, false, 0);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Never fails (the `Result` mirrors serde_json's signature).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, true, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty() {
        let rows = vec![vec![1u64], vec![2, 3]];
        assert_eq!(super::to_string(&rows).unwrap(), "[[1],[2,3]]");
        assert_eq!(
            super::to_string_pretty(&rows).unwrap(),
            "[\n  [\n    1\n  ],\n  [\n    2,\n    3\n  ]\n]"
        );
    }
}
