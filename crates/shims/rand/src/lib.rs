//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the `rand` API it uses: a seedable
//! small RNG with `gen_range` / `gen_bool`. The generator is SplitMix64 —
//! deterministic, fast, and statistically plenty for workload synthesis
//! (it is the same mixer `rand` itself uses to seed from a `u64`).

#![forbid(unsafe_code)]

/// Uniform sampling from a range (the subset of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let span = (end as u128) - (start as u128) + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The raw entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (the subset of `rand::Rng` we use).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard open [0, 1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from seeds (the subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    /// The "standard" generator — same engine as [`SmallRng`] here; the
    /// distinction only matters for the real `rand` crate's guarantees.
    pub type StdRng = SmallRng;

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u8..=255);
            assert!(w >= 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }
}
