//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`] to mix arm
    /// types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s strategy.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// A union over `arms` (weight, strategy) pairs.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total: u32 = arms.iter().map(|(w, _)| w).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = (rng.next_u64() % u64::from(self.total)) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u64_in_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.u64_in_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i64_in_inclusive(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i64_in_inclusive(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Full-range generation for a type (`any::<T>()`'s engine).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// `proptest::prelude::any`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// [`any`]'s strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (0u64..16).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 32 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = TestRng::deterministic("weights");
        let s = crate::prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "got {trues}");
    }

    #[test]
    fn collections_respect_bounds() {
        let mut rng = TestRng::deterministic("coll");
        let s = crate::collection::vec(any::<u8>(), 3..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
        }
    }
}
