//! Deterministic case generation and per-test configuration.

/// Why a generated case did not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Per-test configuration (the subset of proptest's `Config` we use).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching real proptest's default.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (FNV-1a), so each test walks its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[min, max)` (returns `min` when empty).
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        if max <= min + 1 {
            return min;
        }
        min + (self.next_u64() as usize) % (max - min)
    }

    /// Uniform `u64` in `[min, max]` inclusive.
    pub fn u64_in_inclusive(&mut self, min: u64, max: u64) -> u64 {
        debug_assert!(min <= max);
        let span = (max as u128) - (min as u128) + 1;
        min + ((self.next_u64() as u128) % span) as u64
    }

    /// Uniform `i64` in `[min, max]` inclusive.
    pub fn i64_in_inclusive(&mut self, min: i64, max: i64) -> i64 {
        debug_assert!(min <= max);
        let span = (max as i128) - (min as i128) + 1;
        let off = ((self.next_u64() as u128) % (span as u128)) as i128;
        (min as i128 + off) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::deterministic("foo");
        let mut a2 = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("bar");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn bounds_are_inclusive_exclusive_as_documented() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = r.usize_in(3, 7);
            assert!((3..7).contains(&v));
            let w = r.u64_in_inclusive(5, 5);
            assert_eq!(w, 5);
            let s = r.i64_in_inclusive(-3, 2);
            assert!((-3..=2).contains(&s));
        }
    }
}
