//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! macro, range / tuple / `prop_oneof!` / `Just` / `prop_map` strategies,
//! and `collection::{vec, btree_set}`. Each test runs `cases` iterations
//! of a deterministic generator seeded from the test's name, so failures
//! reproduce exactly across runs and machines.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with its inputs via the
//!   assertion message; there is no minimisation pass.
//! * **No persistence** — `.proptest-regressions` files are ignored (the
//!   generator is already deterministic).
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning a
//!   `TestCaseResult` failure — equivalent under `cargo test`.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use std::collections::BTreeSet;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// A strategy producing `Vec`s of `element` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `BTreeSet`s of `element`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = rng.usize_in(self.size.min, self.size.max);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set, exactly like real proptest; a
            // bounded number of retries tops it back up when possible.
            for _ in 0..want * 4 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each contained `#[test] fn name(pat in strategy, ...) { body }`
/// against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    // `Err` is a prop_assume! rejection: skip the case.
                    drop(outcome);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::core::assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::core::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::core::assert_ne!($($tt)*) };
}
