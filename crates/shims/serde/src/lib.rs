//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it uses: a [`Serialize`] trait producing an
//! ordered JSON [`Value`] tree, with `#[derive(Serialize)]` for
//! named-field structs (see the sibling `serde_derive` shim) and a
//! `serde_json` shim that renders the tree. The real serde's
//! `Serializer`-visitor machinery is not reproduced — every consumer in
//! this repo serialises benchmark-result rows straight to JSON.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// An ordered JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (rendered `null` when non-finite, as serde_json does).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Conversion into a JSON [`Value`] (the shim's stand-in for serde's
/// `Serialize`).
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Value {
    /// Looks a key up in an [`Value::Object`] (`None` for other variants
    /// or a missing key) — the shim's stand-in for `serde_json::Value`
    /// indexing, used by consumers that parse JSON back.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a float, widening ints (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// This value as a `u64` (`None` for non-integers and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a string slice (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool (`None` for non-bools).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's items (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// This value's entries, insertion-ordered (`None` for non-objects).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    let s = f.to_string();
                    out.push_str(&s);
                    // `1.0f64.to_string()` is "1": keep it valid JSON (it
                    // is), nothing to fix.
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Array(items) => {
                Self::render_seq(out, pretty, indent, '[', ']', items.len(), |out, i| {
                    items[i].render(out, pretty, indent + 1);
                });
            }
            Value::Object(entries) => {
                Self::render_seq(out, pretty, indent, '{', '}', entries.len(), |out, i| {
                    Value::Str(entries[i].0.clone()).render(out, false, 0);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    entries[i].1.render(out, pretty, indent + 1);
                });
            }
        }
    }

    fn render_seq(
        out: &mut String,
        pretty: bool,
        indent: usize,
        open: char,
        close: char,
        n: usize,
        mut item: impl FnMut(&mut String, usize),
    ) {
        out.push(open);
        if n == 0 {
            out.push(close);
            return;
        }
        for i in 0..n {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
            }
            item(out, i);
            if i + 1 < n {
                out.push(',');
            }
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
        }
        out.push(close);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        let mut s = String::new();
        Value::Object(vec![
            ("a".into(), 3u64.to_value()),
            ("b".into(), 1.5f64.to_value()),
            ("c".into(), "x\"y".to_value()),
            ("d".into(), true.to_value()),
            ("e".into(), Option::<u64>::None.to_value()),
        ])
        .render(&mut s, false, 0);
        assert_eq!(s, r#"{"a":3,"b":1.5,"c":"x\"y","d":true,"e":null}"#);
    }

    #[test]
    fn pretty_nests() {
        let mut s = String::new();
        vec![1u64, 2].to_value().render(&mut s, true, 0);
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        f64::NAN.to_value().render(&mut s, false, 0);
        assert_eq!(s, "null");
    }
}
