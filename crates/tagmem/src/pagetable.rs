//! Page table with CapDirty tracking (paper §3.4.2).

use std::collections::BTreeMap;

/// Bytes per virtual page.
pub const PAGE_SIZE: u64 = 4096;

/// Per-page flags relevant to capability sweeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// A tagged capability has been stored to this page since the flag was
    /// last cleared. Clean pages need not be swept.
    pub cap_dirty: bool,
    /// Capability stores to this page trap (paper footnote 3: used for
    /// shared memory segments and file mappings that cannot hold tags).
    pub cap_store_inhibit: bool,
    /// Union of the [`cheri::color_of`] colors of every capability *base*
    /// stored to this page since the flag block was last cleared — the
    /// per-page color summary the colored revocation backend consults.
    /// Like CapDirty it has false positives (an overwritten capability's
    /// color lingers) but never false negatives, so skipping on a miss is
    /// sound.
    pub pointee_colors: u8,
    /// Union of the [`cheri::poison_bit`] coarse-region bits of every
    /// capability base stored to this page — the hierarchical backend's
    /// page-level poison summary. Same false-positive-only contract.
    pub pointee_regions: u64,
}

/// A software-managed page table tracking the **CapDirty** state the paper
/// adds to CHERI-MIPS PTEs.
///
/// The model follows §3.4.2 precisely:
///
/// * Pages start **clean**; storing a tagged capability to a clean page
///   raises a (modelled) exception, and the "OS" marks the page CapDirty.
///   [`PageTable::note_cap_store`] performs both steps and reports whether
///   the trap fired, so experiments can count trap overhead.
/// * CapDirty has **false positives**: clearing all capabilities in a page
///   does not reset it. A sweep that finds a dirty page tag-free may call
///   [`PageTable::clear_cap_dirty`] to re-clean it.
///
/// # Examples
///
/// ```
/// use tagmem::{PageTable, PAGE_SIZE};
///
/// let mut pt = PageTable::new();
/// assert!(!pt.is_cap_dirty(0x5000));
/// let trapped = pt.note_cap_store(0x5008).unwrap();
/// assert!(trapped);                       // first store traps…
/// assert!(!pt.note_cap_store(0x5010).unwrap()); // …later ones do not
/// assert!(pt.is_cap_dirty(0x5fff));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTable {
    pages: BTreeMap<u64, PageFlags>,
    traps: u64,
}

impl PageTable {
    /// Creates an empty page table (all pages clean).
    pub fn new() -> PageTable {
        PageTable::default()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// Flags for the page containing `addr` (default flags if untouched).
    pub fn flags(&self, addr: u64) -> PageFlags {
        self.pages
            .get(&Self::page_of(addr))
            .copied()
            .unwrap_or_default()
    }

    /// `true` if the page containing `addr` may hold capabilities.
    #[inline]
    pub fn is_cap_dirty(&self, addr: u64) -> bool {
        self.flags(addr).cap_dirty
    }

    /// Marks the page containing `addr` as inhibiting capability stores.
    pub fn set_cap_store_inhibit(&mut self, addr: u64, inhibit: bool) {
        self.pages
            .entry(Self::page_of(addr))
            .or_default()
            .cap_store_inhibit = inhibit;
    }

    /// Records a tagged capability store to `addr`.
    ///
    /// Returns `Ok(true)` if this store trapped (page was clean — the OS has
    /// now marked it CapDirty), `Ok(false)` if the page was already dirty.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` if the page inhibits capability stores; the caller
    /// converts this into [`crate::MemError::CapStoreInhibited`].
    #[allow(clippy::result_unit_err)]
    pub fn note_cap_store(&mut self, addr: u64) -> Result<bool, ()> {
        let entry = self.pages.entry(Self::page_of(addr)).or_default();
        if entry.cap_store_inhibit {
            return Err(());
        }
        if entry.cap_dirty {
            Ok(false)
        } else {
            entry.cap_dirty = true;
            self.traps += 1;
            Ok(true)
        }
    }

    /// Records *where* a tagged capability stored to `addr` points:
    /// accumulates the pointee's color and coarse-region bits into the
    /// page's summary masks. Called alongside [`PageTable::note_cap_store`]
    /// on the same store path, so the summaries cover exactly the stores
    /// CapDirty covers.
    pub fn note_cap_pointee(&mut self, addr: u64, cap_base: u64) {
        let entry = self.pages.entry(Self::page_of(addr)).or_default();
        entry.pointee_colors |= 1 << cheri::color_of(cap_base);
        entry.pointee_regions |= cheri::poison_bit(cap_base);
    }

    /// The color summary of the page containing `addr`: a set bit means a
    /// capability with that color *may* be stored on the page; a clear bit
    /// means none is. Untracked pages report 0 (no capability was ever
    /// stored through the tracked address space).
    #[inline]
    pub fn pointee_colors(&self, addr: u64) -> u8 {
        self.flags(addr).pointee_colors
    }

    /// The coarse-region summary of the page containing `addr` (see
    /// [`PageFlags::pointee_regions`]).
    #[inline]
    pub fn pointee_regions(&self, addr: u64) -> u64 {
        self.flags(addr).pointee_regions
    }

    /// Union of the per-page coarse-region summaries over every page
    /// overlapping `[base, base + len)` — the hierarchical backend's
    /// region-level poison probe. Costs one ordered-map range walk over the
    /// pages *tracked* in the range, so a capability-free region answers in
    /// O(1).
    pub fn pointee_regions_in(&self, base: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = base / PAGE_SIZE;
        let last = (base + len - 1) / PAGE_SIZE;
        self.pages
            .range(first..=last)
            .fold(0, |mask, (_, f)| mask | f.pointee_regions)
    }

    /// Re-cleans the page containing `addr` (a sweep found it tag-free).
    /// Also resets the pointee summaries: a tag-free page points nowhere,
    /// so this is the same false-positive purge CapDirty gets.
    pub fn clear_cap_dirty(&mut self, addr: u64) {
        if let Some(flags) = self.pages.get_mut(&Self::page_of(addr)) {
            flags.cap_dirty = false;
            flags.pointee_colors = 0;
            flags.pointee_regions = 0;
        }
    }

    /// Number of CapDirty traps taken so far (each models one exception +
    /// OS fixup, cheap but countable).
    #[inline]
    pub fn trap_count(&self) -> u64 {
        self.traps
    }

    /// The page-aligned start addresses of all CapDirty pages, in order.
    /// This models the "array of pages that could contain capabilities" API
    /// of §5.3 (compare Windows `GetWriteWatch`).
    pub fn cap_dirty_pages(&self) -> Vec<u64> {
        let mut pages = Vec::new();
        self.for_each_cap_dirty_page(|p, _| pages.push(p));
        pages
    }

    /// Visits every CapDirty page in address order as `(page_start,
    /// flags)`, without materialising a vector — epoch worklist builders
    /// call this once per segment, allocation-free.
    pub fn for_each_cap_dirty_page(&self, mut f: impl FnMut(u64, PageFlags)) {
        for (&p, flags) in &self.pages {
            if flags.cap_dirty {
                f(p * PAGE_SIZE, *flags);
            }
        }
    }

    /// Of the pages overlapping `[base, base+len)`, the fraction that are
    /// CapDirty. This is the page-granularity pointer density of Table 2.
    pub fn cap_dirty_fraction(&self, base: u64, len: u64) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let first = base / PAGE_SIZE;
        let last = (base + len - 1) / PAGE_SIZE;
        let total = last - first + 1;
        let dirty = self
            .pages
            .range(first..=last)
            .filter(|(_, f)| f.cap_dirty)
            .count() as u64;
        dirty as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_store_traps_then_quiesces() {
        let mut pt = PageTable::new();
        assert!(pt.note_cap_store(0x1000).unwrap());
        assert!(!pt.note_cap_store(0x1ff0).unwrap());
        assert_eq!(pt.trap_count(), 1);
        // A different page traps again.
        assert!(pt.note_cap_store(0x2000).unwrap());
        assert_eq!(pt.trap_count(), 2);
    }

    #[test]
    fn inhibited_pages_reject_cap_stores() {
        let mut pt = PageTable::new();
        pt.set_cap_store_inhibit(0x3000, true);
        assert!(pt.note_cap_store(0x3008).is_err());
        assert!(!pt.is_cap_dirty(0x3000));
        pt.set_cap_store_inhibit(0x3000, false);
        assert!(pt.note_cap_store(0x3008).unwrap());
    }

    #[test]
    fn dirty_pages_listing_is_sorted_and_page_aligned() {
        let mut pt = PageTable::new();
        for addr in [0x9000u64, 0x1000, 0x5500] {
            pt.note_cap_store(addr).unwrap();
        }
        assert_eq!(pt.cap_dirty_pages(), vec![0x1000, 0x5000, 0x9000]);
    }

    #[test]
    fn clear_cap_dirty_recleans() {
        let mut pt = PageTable::new();
        pt.note_cap_store(0x1000).unwrap();
        pt.clear_cap_dirty(0x1234);
        assert!(!pt.is_cap_dirty(0x1000));
        // And the next store traps again (false positives were purged).
        assert!(pt.note_cap_store(0x1000).unwrap());
    }

    #[test]
    fn pointee_summaries_accumulate_and_reclean_with_capdirty() {
        let mut pt = PageTable::new();
        // Untracked pages summarise to "points nowhere".
        assert_eq!(pt.pointee_colors(0x1000), 0);
        assert_eq!(pt.pointee_regions(0x1000), 0);

        // Two stores on one page, pointing at different color stripes and
        // different coarse regions: the summaries union.
        pt.note_cap_store(0x1000).unwrap();
        pt.note_cap_pointee(0x1000, 0);
        pt.note_cap_store(0x1008).unwrap();
        pt.note_cap_pointee(
            0x1008,
            3 * cheri::COLOR_REGION_BYTES + cheri::POISON_REGION_BYTES,
        );
        assert_eq!(pt.pointee_colors(0x1ff0), (1 << 0) | (1 << 3));
        assert_eq!(pt.pointee_regions(0x1ff0), 0b11);

        // Re-cleaning purges the summaries along with CapDirty.
        pt.clear_cap_dirty(0x1234);
        assert_eq!(pt.pointee_colors(0x1000), 0);
        assert_eq!(pt.pointee_regions(0x1000), 0);
        assert!(!pt.is_cap_dirty(0x1000));
    }

    #[test]
    fn region_probe_unions_page_summaries_in_range() {
        let mut pt = PageTable::new();
        pt.note_cap_store(0x1000).unwrap();
        pt.note_cap_pointee(0x1000, 0);
        pt.note_cap_store(0x3000).unwrap();
        pt.note_cap_pointee(0x3000, 2 * cheri::POISON_REGION_BYTES);
        // Whole span unions both pages; sub-spans see only their pages;
        // untracked spans (and empty ones) probe to zero.
        assert_eq!(pt.pointee_regions_in(0x1000, 0x3000), 0b101);
        assert_eq!(pt.pointee_regions_in(0x1000, 0x1000), 0b001);
        assert_eq!(pt.pointee_regions_in(0x2000, 0x2000), 0b100);
        assert_eq!(pt.pointee_regions_in(0x8000, 0x1000), 0);
        assert_eq!(pt.pointee_regions_in(0x1000, 0), 0);
    }

    #[test]
    fn dirty_fraction_counts_overlapping_pages() {
        let mut pt = PageTable::new();
        pt.note_cap_store(0x0).unwrap();
        pt.note_cap_store(0x2000).unwrap();
        // Range covering pages 0..=3, two dirty.
        assert!((pt.cap_dirty_fraction(0, 4 * PAGE_SIZE) - 0.5).abs() < 1e-12);
        assert_eq!(pt.cap_dirty_fraction(0, 0), 0.0);
        // A clean region reports zero.
        assert_eq!(pt.cap_dirty_fraction(0x10_0000, PAGE_SIZE), 0.0);
    }
}
