//! Page table with CapDirty tracking (paper §3.4.2).

use std::collections::BTreeMap;

/// Bytes per virtual page.
pub const PAGE_SIZE: u64 = 4096;

/// Per-page flags relevant to capability sweeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// A tagged capability has been stored to this page since the flag was
    /// last cleared. Clean pages need not be swept.
    pub cap_dirty: bool,
    /// Capability stores to this page trap (paper footnote 3: used for
    /// shared memory segments and file mappings that cannot hold tags).
    pub cap_store_inhibit: bool,
}

/// A software-managed page table tracking the **CapDirty** state the paper
/// adds to CHERI-MIPS PTEs.
///
/// The model follows §3.4.2 precisely:
///
/// * Pages start **clean**; storing a tagged capability to a clean page
///   raises a (modelled) exception, and the "OS" marks the page CapDirty.
///   [`PageTable::note_cap_store`] performs both steps and reports whether
///   the trap fired, so experiments can count trap overhead.
/// * CapDirty has **false positives**: clearing all capabilities in a page
///   does not reset it. A sweep that finds a dirty page tag-free may call
///   [`PageTable::clear_cap_dirty`] to re-clean it.
///
/// # Examples
///
/// ```
/// use tagmem::{PageTable, PAGE_SIZE};
///
/// let mut pt = PageTable::new();
/// assert!(!pt.is_cap_dirty(0x5000));
/// let trapped = pt.note_cap_store(0x5008).unwrap();
/// assert!(trapped);                       // first store traps…
/// assert!(!pt.note_cap_store(0x5010).unwrap()); // …later ones do not
/// assert!(pt.is_cap_dirty(0x5fff));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTable {
    pages: BTreeMap<u64, PageFlags>,
    traps: u64,
}

impl PageTable {
    /// Creates an empty page table (all pages clean).
    pub fn new() -> PageTable {
        PageTable::default()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// Flags for the page containing `addr` (default flags if untouched).
    pub fn flags(&self, addr: u64) -> PageFlags {
        self.pages
            .get(&Self::page_of(addr))
            .copied()
            .unwrap_or_default()
    }

    /// `true` if the page containing `addr` may hold capabilities.
    #[inline]
    pub fn is_cap_dirty(&self, addr: u64) -> bool {
        self.flags(addr).cap_dirty
    }

    /// Marks the page containing `addr` as inhibiting capability stores.
    pub fn set_cap_store_inhibit(&mut self, addr: u64, inhibit: bool) {
        self.pages
            .entry(Self::page_of(addr))
            .or_default()
            .cap_store_inhibit = inhibit;
    }

    /// Records a tagged capability store to `addr`.
    ///
    /// Returns `Ok(true)` if this store trapped (page was clean — the OS has
    /// now marked it CapDirty), `Ok(false)` if the page was already dirty.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` if the page inhibits capability stores; the caller
    /// converts this into [`crate::MemError::CapStoreInhibited`].
    #[allow(clippy::result_unit_err)]
    pub fn note_cap_store(&mut self, addr: u64) -> Result<bool, ()> {
        let entry = self.pages.entry(Self::page_of(addr)).or_default();
        if entry.cap_store_inhibit {
            return Err(());
        }
        if entry.cap_dirty {
            Ok(false)
        } else {
            entry.cap_dirty = true;
            self.traps += 1;
            Ok(true)
        }
    }

    /// Re-cleans the page containing `addr` (a sweep found it tag-free).
    pub fn clear_cap_dirty(&mut self, addr: u64) {
        if let Some(flags) = self.pages.get_mut(&Self::page_of(addr)) {
            flags.cap_dirty = false;
        }
    }

    /// Number of CapDirty traps taken so far (each models one exception +
    /// OS fixup, cheap but countable).
    #[inline]
    pub fn trap_count(&self) -> u64 {
        self.traps
    }

    /// The page-aligned start addresses of all CapDirty pages, in order.
    /// This models the "array of pages that could contain capabilities" API
    /// of §5.3 (compare Windows `GetWriteWatch`).
    pub fn cap_dirty_pages(&self) -> Vec<u64> {
        self.pages
            .iter()
            .filter(|(_, f)| f.cap_dirty)
            .map(|(&p, _)| p * PAGE_SIZE)
            .collect()
    }

    /// Of the pages overlapping `[base, base+len)`, the fraction that are
    /// CapDirty. This is the page-granularity pointer density of Table 2.
    pub fn cap_dirty_fraction(&self, base: u64, len: u64) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let first = base / PAGE_SIZE;
        let last = (base + len - 1) / PAGE_SIZE;
        let total = last - first + 1;
        let dirty = self
            .pages
            .range(first..=last)
            .filter(|(_, f)| f.cap_dirty)
            .count() as u64;
        dirty as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_store_traps_then_quiesces() {
        let mut pt = PageTable::new();
        assert!(pt.note_cap_store(0x1000).unwrap());
        assert!(!pt.note_cap_store(0x1ff0).unwrap());
        assert_eq!(pt.trap_count(), 1);
        // A different page traps again.
        assert!(pt.note_cap_store(0x2000).unwrap());
        assert_eq!(pt.trap_count(), 2);
    }

    #[test]
    fn inhibited_pages_reject_cap_stores() {
        let mut pt = PageTable::new();
        pt.set_cap_store_inhibit(0x3000, true);
        assert!(pt.note_cap_store(0x3008).is_err());
        assert!(!pt.is_cap_dirty(0x3000));
        pt.set_cap_store_inhibit(0x3000, false);
        assert!(pt.note_cap_store(0x3008).unwrap());
    }

    #[test]
    fn dirty_pages_listing_is_sorted_and_page_aligned() {
        let mut pt = PageTable::new();
        for addr in [0x9000u64, 0x1000, 0x5500] {
            pt.note_cap_store(addr).unwrap();
        }
        assert_eq!(pt.cap_dirty_pages(), vec![0x1000, 0x5000, 0x9000]);
    }

    #[test]
    fn clear_cap_dirty_recleans() {
        let mut pt = PageTable::new();
        pt.note_cap_store(0x1000).unwrap();
        pt.clear_cap_dirty(0x1234);
        assert!(!pt.is_cap_dirty(0x1000));
        // And the next store traps again (false positives were purged).
        assert!(pt.note_cap_store(0x1000).unwrap());
    }

    #[test]
    fn dirty_fraction_counts_overlapping_pages() {
        let mut pt = PageTable::new();
        pt.note_cap_store(0x0).unwrap();
        pt.note_cap_store(0x2000).unwrap();
        // Range covering pages 0..=3, two dirty.
        assert!((pt.cap_dirty_fraction(0, 4 * PAGE_SIZE) - 0.5).abs() < 1e-12);
        assert_eq!(pt.cap_dirty_fraction(0, 0), 0.0);
        // A clean region reports zero.
        assert_eq!(pt.cap_dirty_fraction(0x10_0000, PAGE_SIZE), 0.0);
    }
}
