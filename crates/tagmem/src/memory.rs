//! A contiguous segment of tagged memory.

use cheri::{CapWord, Capability, CAP_SIZE};

use crate::{MemError, GRANULE_SIZE, LINE_SIZE};

/// A contiguous, byte-addressable region of memory with one out-of-band tag
/// bit per 16-byte granule.
///
/// Invariants maintained:
///
/// * Any **data** write (of any width) clears the tags of every granule it
///   touches — data can never masquerade as a capability.
/// * Tags can only be set by [`TaggedMemory::write_cap`] with a tagged
///   source capability.
/// * Tag bits beyond the segment's final granule are always zero (sweep
///   kernels rely on this to process the bitmap in whole `u64` words).
///
/// # Examples
///
/// ```
/// use tagmem::TaggedMemory;
/// use cheri::Capability;
///
/// # fn main() -> Result<(), tagmem::MemError> {
/// let mut mem = TaggedMemory::new(0x4000, 4096);
/// let cap = Capability::root_rw(0x4000, 64);
/// mem.write_cap(0x4010, &cap)?;
/// assert!(mem.tag_at(0x4010));
/// assert_eq!(mem.read_cap(0x4010)?.base(), 0x4000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedMemory {
    base: u64,
    data: Vec<u8>,
    /// One bit per granule, little-endian within each u64.
    tags: Vec<u64>,
}

impl TaggedMemory {
    /// Creates a zeroed segment covering `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `len` is not 16-byte aligned, or `base + len`
    /// overflows.
    pub fn new(base: u64, len: u64) -> TaggedMemory {
        assert_eq!(
            base % GRANULE_SIZE,
            0,
            "segment base must be granule-aligned"
        );
        assert_eq!(
            len % GRANULE_SIZE,
            0,
            "segment length must be granule-aligned"
        );
        base.checked_add(len)
            .expect("segment end overflows the address space");
        let granules = (len / GRANULE_SIZE) as usize;
        TaggedMemory {
            base,
            data: vec![0; len as usize],
            tags: vec![0; granules.div_ceil(64)],
        }
    }

    /// First mapped address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the last mapped address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// `true` if the segment is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of tag granules.
    #[inline]
    pub fn granules(&self) -> u64 {
        self.len() / GRANULE_SIZE
    }

    /// `true` if `[addr, addr + len)` lies within this segment.
    #[inline]
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr as u128 + len as u128 <= self.end() as u128
    }

    #[inline]
    fn offset_of(&self, addr: u64, len: u64) -> Result<usize, MemError> {
        if !self.contains(addr, len) {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok((addr - self.base) as usize)
    }

    #[inline]
    fn granule_index(&self, addr: u64) -> usize {
        ((addr - self.base) / GRANULE_SIZE) as usize
    }

    // --- Data access ------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the segment.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let off = self.offset_of(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        Ok(())
    }

    /// Writes `buf` at `addr` as **data**, clearing every covered tag.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the segment.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let off = self.offset_of(addr, buf.len() as u64)?;
        self.data[off..off + buf.len()].copy_from_slice(buf);
        self.clear_tags_covering(addr, buf.len() as u64);
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr` (no alignment requirement).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the segment.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        let off = self.offset_of(addr, 8)?;
        Ok(u64::from_le_bytes(
            self.data[off..off + 8].try_into().expect("8-byte slice"),
        ))
    }

    /// Writes a little-endian `u64` at `addr` as data (clears covered tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the segment.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Fills `[addr, addr+len)` with `byte` as data (clears covered tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the segment.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) -> Result<(), MemError> {
        let off = self.offset_of(addr, len)?;
        self.data[off..off + len as usize].fill(byte);
        self.clear_tags_covering(addr, len);
        Ok(())
    }

    // --- Capability access --------------------------------------------------

    /// Reads the capability word (and its tag) at 16-byte-aligned `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] for unaligned addresses,
    /// [`MemError::OutOfRange`] if outside the segment.
    pub fn read_cap(&self, addr: u64) -> Result<Capability, MemError> {
        let (word, tag) = self.read_cap_word(addr)?;
        Ok(word.decode(tag))
    }

    /// Reads the raw 128-bit word and tag at 16-byte-aligned `addr`.
    ///
    /// # Errors
    ///
    /// As [`TaggedMemory::read_cap`].
    pub fn read_cap_word(&self, addr: u64) -> Result<(CapWord, bool), MemError> {
        if !addr.is_multiple_of(CAP_SIZE) {
            return Err(MemError::Misaligned { addr });
        }
        let off = self.offset_of(addr, CAP_SIZE)?;
        let word = CapWord::try_from_le_bytes(&self.data[off..off + 16])
            .expect("16-byte slice always converts");
        Ok((word, self.tag_at(addr)))
    }

    /// Stores a capability at 16-byte-aligned `addr`, setting the granule's
    /// tag iff `cap` is tagged.
    ///
    /// # Errors
    ///
    /// As [`TaggedMemory::read_cap`].
    pub fn write_cap(&mut self, addr: u64, cap: &Capability) -> Result<(), MemError> {
        self.write_cap_word(addr, CapWord::encode(cap), cap.tag())
    }

    /// Stores a raw capability word and tag at 16-byte-aligned `addr`.
    ///
    /// # Errors
    ///
    /// As [`TaggedMemory::read_cap`].
    pub fn write_cap_word(&mut self, addr: u64, word: CapWord, tag: bool) -> Result<(), MemError> {
        if !addr.is_multiple_of(CAP_SIZE) {
            return Err(MemError::Misaligned { addr });
        }
        let off = self.offset_of(addr, CAP_SIZE)?;
        self.data[off..off + 16].copy_from_slice(&word.to_le_bytes());
        self.set_tag(addr, tag);
        Ok(())
    }

    // --- Tag access -------------------------------------------------------

    /// The tag bit covering `addr`'s granule.
    #[inline]
    pub fn tag_at(&self, addr: u64) -> bool {
        let g = self.granule_index(addr);
        self.tags[g / 64] >> (g % 64) & 1 == 1
    }

    #[inline]
    fn set_tag(&mut self, addr: u64, tag: bool) {
        let g = self.granule_index(addr);
        if tag {
            self.tags[g / 64] |= 1 << (g % 64);
        } else {
            self.tags[g / 64] &= !(1 << (g % 64));
        }
    }

    /// Clears the tag covering `addr` **without touching the data** — this
    /// is exactly what a revocation sweep does to a dangling capability when
    /// it does not also zero the word.
    #[inline]
    pub fn clear_tag_at(&mut self, addr: u64) {
        self.set_tag(addr, false);
    }

    fn clear_tags_covering(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = self.granule_index(addr);
        let last = self.granule_index(addr + len - 1);
        for g in first..=last {
            self.tags[g / 64] &= !(1 << (g % 64));
        }
    }

    /// `CLoadTags`: the tag bits of the [`LINE_SIZE`]-byte line containing
    /// `addr`, as a mask with bit *i* covering granule *i* of the line. A
    /// zero result means the whole line can be skipped by a sweep.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the line is not fully inside the segment.
    pub fn load_tags(&self, addr: u64) -> Result<u8, MemError> {
        let line = addr & !(LINE_SIZE - 1);
        if !self.contains(line, LINE_SIZE) {
            return Err(MemError::OutOfRange {
                addr: line,
                len: LINE_SIZE,
            });
        }
        let first = self.granule_index(line);
        let mut mask = 0u8;
        for i in 0..(LINE_SIZE / GRANULE_SIZE) as usize {
            let g = first + i;
            if self.tags[g / 64] >> (g % 64) & 1 == 1 {
                mask |= 1 << i;
            }
        }
        Ok(mask)
    }

    /// Total number of set tag bits.
    pub fn tag_count(&self) -> u64 {
        self.tags.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Number of set tag bits covering `[addr, addr + len)`.
    ///
    /// Word-at-a-time popcount with masked edges, so chunk planners can
    /// weight sweep work (tagged granules force capability decodes) without
    /// walking individual granules.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the segment or not granule-aligned.
    pub fn count_tags_in(&self, addr: u64, len: u64) -> u64 {
        assert!(self.contains(addr, len), "range outside segment");
        assert_eq!(
            addr % GRANULE_SIZE,
            0,
            "range start must be granule-aligned"
        );
        assert_eq!(
            len % GRANULE_SIZE,
            0,
            "range length must be granule-aligned"
        );
        if len == 0 {
            return 0;
        }
        let g0 = self.granule_index(addr);
        let g1 = g0 + (len / GRANULE_SIZE) as usize; // exclusive
        let (w0, w1) = (g0 / 64, (g1 - 1) / 64);
        let lo_mask = !0u64 << (g0 % 64);
        let hi_mask = !0u64 >> (63 - (g1 - 1) % 64);
        if w0 == w1 {
            return (self.tags[w0] & lo_mask & hi_mask).count_ones() as u64;
        }
        let mut n = (self.tags[w0] & lo_mask).count_ones() as u64;
        for &w in &self.tags[w0 + 1..w1] {
            n += w.count_ones() as u64;
        }
        n + (self.tags[w1] & hi_mask).count_ones() as u64
    }

    /// Iterates over the addresses of all tagged granules.
    pub fn tagged_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = self.base;
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                Some(base + (wi as u64 * 64 + b) * GRANULE_SIZE)
            })
        })
    }

    /// The tag **leaf word** covering `addr`'s 64-granule group (1 KiB of
    /// data): bit `i` covers granule `group_start + i`. Word-at-a-time
    /// sweep kernels fetch this once per window instead of probing 64
    /// individual tag bits.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `addr` is outside the segment.
    #[inline]
    pub fn tag_word(&self, addr: u64) -> u64 {
        self.tags[self.granule_index(addr) / 64]
    }

    /// Iterates over the non-zero tag leaf words as `(group_start_addr,
    /// word)` pairs — the capability-bearing 1 KiB windows of the segment,
    /// in address order. Zero words (capability-free windows) are skipped
    /// without per-granule work, which is the whole point of the word
    /// layout.
    pub fn iter_nonzero_tag_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let base = self.base;
        self.tags
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .map(move |(wi, &w)| (base + wi as u64 * 64 * GRANULE_SIZE, w))
    }

    // --- Raw views for sweep kernels ----------------------------------------

    /// The raw data bytes (read-only).
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The raw tag bitmap: bit `i` of word `i / 64` covers granule `i`.
    #[inline]
    pub fn tag_bitmap(&self) -> &[u64] {
        &self.tags
    }

    /// Simultaneous mutable views of data and tag bitmap for high-performance
    /// sweep kernels.
    ///
    /// Callers must preserve the crate invariant: only clear tags (never
    /// set), and only zero/rewrite data of granules whose tags they clear.
    #[inline]
    pub fn as_parts_mut(&mut self) -> (&mut [u8], &mut [u64]) {
        (&mut self.data, &mut self.tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Perms;

    fn mem() -> TaggedMemory {
        TaggedMemory::new(0x4000, 4096)
    }

    fn cap() -> Capability {
        Capability::root_rw(0x4000, 256)
    }

    #[test]
    fn fresh_memory_is_zero_and_untagged() {
        let m = mem();
        assert_eq!(m.read_u64(0x4000).unwrap(), 0);
        assert_eq!(m.tag_count(), 0);
        assert!(!m.tag_at(0x4000));
        assert_eq!(m.len(), 4096);
        assert_eq!(m.granules(), 256);
    }

    #[test]
    fn cap_store_sets_tag_and_roundtrips() {
        let mut m = mem();
        m.write_cap(0x4020, &cap()).unwrap();
        assert!(m.tag_at(0x4020));
        assert_eq!(m.tag_count(), 1);
        let c = m.read_cap(0x4020).unwrap();
        assert!(c.tag());
        assert_eq!(c.base(), 0x4000);
        assert_eq!(c.length(), 256);
        assert!(c.perms().contains(Perms::RW_DATA));
    }

    #[test]
    fn data_write_clears_tag() {
        let mut m = mem();
        m.write_cap(0x4020, &cap()).unwrap();
        // Even a one-byte data write anywhere in the granule kills the tag.
        m.write_bytes(0x402f, &[0xff]).unwrap();
        assert!(!m.tag_at(0x4020));
        let c = m.read_cap(0x4020).unwrap();
        assert!(!c.tag());
        // The data itself is otherwise intact apart from the poked byte.
        assert_eq!(m.data()[0x2f], 0xff);
    }

    #[test]
    fn wide_data_write_clears_all_covered_tags() {
        let mut m = mem();
        m.write_cap(0x4020, &cap()).unwrap();
        m.write_cap(0x4030, &cap()).unwrap();
        m.write_cap(0x4040, &cap()).unwrap();
        m.fill(0x4028, 0x20, 0).unwrap(); // touches granules at 0x4020,0x4030,0x4040
        assert!(!m.tag_at(0x4020));
        assert!(!m.tag_at(0x4030));
        assert!(!m.tag_at(0x4040));
    }

    #[test]
    fn untagged_cap_store_keeps_tag_clear() {
        let mut m = mem();
        m.write_cap(0x4020, &cap()).unwrap();
        m.write_cap(0x4020, &cap().cleared()).unwrap();
        assert!(!m.tag_at(0x4020));
    }

    #[test]
    fn count_tags_in_matches_per_granule_probes() {
        let mut m = TaggedMemory::new(0x4000, 64 * 1024);
        // Tags scattered across several leaf words, including word edges.
        for off in [0x0, 0x10, 0x3f0, 0x400, 0x7f0, 0x1000, 0x20f0, 0xfff0] {
            m.write_cap(0x4000 + off, &Capability::root_rw(0x4000, 64))
                .unwrap();
        }
        for (start, len) in [
            (0x4000, 64 * 1024),
            (0x4000, 0),
            (0x4000, 16),
            (0x4010, 0x3f0),
            (0x4400, 0x400),
            (0x43f0, 0x20),
            (0x5000, 0x2000),
        ] {
            let expect = (0..len / GRANULE_SIZE)
                .filter(|&g| m.tag_at(start + g * GRANULE_SIZE))
                .count() as u64;
            assert_eq!(m.count_tags_in(start, len), expect, "[{start:#x};{len:#x})");
        }
        assert_eq!(m.count_tags_in(0x4000, 64 * 1024), m.tag_count());
    }

    #[test]
    fn misaligned_cap_access_fails() {
        let mut m = mem();
        assert_eq!(
            m.read_cap(0x4001).unwrap_err(),
            MemError::Misaligned { addr: 0x4001 }
        );
        assert_eq!(
            m.write_cap(0x4008, &cap()).unwrap_err(),
            MemError::Misaligned { addr: 0x4008 }
        );
    }

    #[test]
    fn out_of_range_accesses_fail() {
        let mut m = mem();
        assert!(m.read_u64(0x4000 + 4096).is_err());
        assert!(m.read_u64(0x4000 + 4089).is_err()); // 8 bytes would spill
        assert!(m.write_bytes(0x3fff, &[0]).is_err());
        assert!(matches!(
            m.read_cap(0x2000),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn clear_tag_preserves_data() {
        let mut m = mem();
        m.write_cap(0x4020, &cap()).unwrap();
        let (word_before, _) = m.read_cap_word(0x4020).unwrap();
        m.clear_tag_at(0x4020);
        let (word_after, tag) = m.read_cap_word(0x4020).unwrap();
        assert_eq!(word_before, word_after);
        assert!(!tag);
    }

    #[test]
    fn load_tags_reports_line_mask() {
        let mut m = mem();
        // Line at 0x4000 covers granules 0x4000..0x4080.
        m.write_cap(0x4000, &cap()).unwrap();
        m.write_cap(0x4070, &cap()).unwrap();
        let mask = m.load_tags(0x4000).unwrap();
        assert_eq!(mask, 0b1000_0001);
        // Any address within the line gives the same answer.
        assert_eq!(m.load_tags(0x407f).unwrap(), mask);
        // An empty line reports zero — sweep can skip it.
        assert_eq!(m.load_tags(0x4080).unwrap(), 0);
    }

    #[test]
    fn tagged_addrs_iterates_in_order() {
        let mut m = mem();
        for addr in [0x4000u64, 0x4050, 0x4ff0] {
            m.write_cap(addr, &cap()).unwrap();
        }
        let addrs: Vec<u64> = m.tagged_addrs().collect();
        assert_eq!(addrs, vec![0x4000, 0x4050, 0x4ff0]);
    }

    #[test]
    fn tag_words_expose_the_leaf_layout() {
        let mut m = TaggedMemory::new(0x4000, 4096); // 256 granules, 4 words
        m.write_cap(0x4000, &cap()).unwrap(); // granule 0, word 0
        m.write_cap(0x4ff0, &cap()).unwrap(); // granule 255, word 3
        assert_eq!(m.tag_word(0x4000), 1);
        assert_eq!(m.tag_word(0x43ff), 1); // anywhere in the 1 KiB window
        assert_eq!(m.tag_word(0x4400), 0);
        assert_eq!(m.tag_word(0x4ff0), 1 << 63);
        let words: Vec<(u64, u64)> = m.iter_nonzero_tag_words().collect();
        assert_eq!(words, vec![(0x4000, 1), (0x4c00, 1 << 63)]);
        // The iterator agrees with the bit-at-a-time view.
        let from_words: u64 = words.iter().map(|(_, w)| w.count_ones() as u64).sum();
        assert_eq!(from_words, m.tag_count());
    }

    #[test]
    #[should_panic(expected = "granule-aligned")]
    fn unaligned_base_panics() {
        let _ = TaggedMemory::new(0x4001, 4096);
    }

    #[test]
    fn contains_checks_both_ends() {
        let m = mem();
        assert!(m.contains(0x4000, 4096));
        assert!(!m.contains(0x4000, 4097));
        assert!(!m.contains(0x3fff, 1));
        assert!(m.contains(0x4fff, 1));
    }
}
