//! The architectural capability register file.
//!
//! A revocation sweep must cover "the heap itself, the stack, register
//! files, and global segments" (paper §3.3). Registers are the cheapest
//! part — a fixed, tiny root set — but skipping them would leave dangling
//! capabilities live, so the model includes them explicitly.

use cheri::Capability;

/// Number of general-purpose capability registers (CHERI-MIPS has 32).
pub const NUM_CAP_REGS: usize = 32;

/// A file of [`NUM_CAP_REGS`] capability registers.
///
/// # Examples
///
/// ```
/// use tagmem::RegisterFile;
/// use cheri::Capability;
///
/// let mut regs = RegisterFile::new();
/// regs.set(3, Capability::root_rw(0x1000, 64));
/// assert!(regs.get(3).tag());
/// assert_eq!(regs.tagged_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    regs: [Capability; NUM_CAP_REGS],
}

impl RegisterFile {
    /// Creates a register file of null capabilities.
    pub fn new() -> RegisterFile {
        RegisterFile {
            regs: [Capability::NULL; NUM_CAP_REGS],
        }
    }

    /// Reads register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_CAP_REGS`.
    #[inline]
    pub fn get(&self, idx: usize) -> Capability {
        self.regs[idx]
    }

    /// Writes register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_CAP_REGS`.
    #[inline]
    pub fn set(&mut self, idx: usize, cap: Capability) {
        self.regs[idx] = cap;
    }

    /// Iterates over all registers.
    pub fn iter(&self) -> impl Iterator<Item = &Capability> {
        self.regs.iter()
    }

    /// Mutable iteration — used by the sweep to revoke register-resident
    /// dangling capabilities.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Capability> {
        self.regs.iter_mut()
    }

    /// Number of tagged registers.
    pub fn tagged_count(&self) -> usize {
        self.regs.iter().filter(|c| c.tag()).count()
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_null() {
        let r = RegisterFile::new();
        assert_eq!(r.tagged_count(), 0);
        assert!(r.iter().all(|c| !c.tag()));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = RegisterFile::new();
        let c = Capability::root_rw(0x8000, 128);
        r.set(7, c);
        assert_eq!(r.get(7), c);
        assert_eq!(r.tagged_count(), 1);
    }

    #[test]
    fn sweep_style_revocation_via_iter_mut() {
        let mut r = RegisterFile::new();
        r.set(0, Capability::root_rw(0x8000, 128));
        r.set(1, Capability::root_rw(0x9000, 128));
        for c in r.iter_mut() {
            if c.tag() && c.base() == 0x8000 {
                *c = c.cleared();
            }
        }
        assert!(!r.get(0).tag());
        assert!(r.get(1).tag());
    }

    #[test]
    #[should_panic]
    fn out_of_range_register_panics() {
        let r = RegisterFile::new();
        let _ = r.get(NUM_CAP_REGS);
    }
}
