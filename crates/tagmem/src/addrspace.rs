//! The program's full memory image: segments + registers + page table.

use cheri::{CapWord, Capability};

use crate::{MemError, PageTable, RegisterFile, TaggedMemory};

/// The role of a memory segment. A revocation sweep must cover every
/// segment kind that can hold capabilities (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SegmentKind {
    /// The heap — the segment CHERIvoke protects.
    Heap,
    /// The stack.
    Stack,
    /// Global data (`.data`/`.bss`).
    Globals,
    /// The revocation shadow map's own backing store (never contains
    /// capabilities; excluded from sweeps).
    Shadow,
}

impl SegmentKind {
    /// `true` if a sweep must visit this segment (it can hold capabilities).
    pub fn sweepable(self) -> bool {
        !matches!(self, SegmentKind::Shadow)
    }
}

/// A named segment of tagged memory within an [`AddressSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    kind: SegmentKind,
    mem: TaggedMemory,
}

impl Segment {
    /// The segment's role.
    #[inline]
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// The backing tagged memory.
    #[inline]
    pub fn mem(&self) -> &TaggedMemory {
        &self.mem
    }

    /// Mutable access to the backing tagged memory (used by sweep kernels).
    #[inline]
    pub fn mem_mut(&mut self) -> &mut TaggedMemory {
        &mut self.mem
    }
}

/// Builder for [`AddressSpace`].
///
/// # Examples
///
/// ```
/// use tagmem::{AddressSpace, SegmentKind};
///
/// let space = AddressSpace::builder()
///     .segment(SegmentKind::Heap, 0x1000_0000, 1 << 20)
///     .segment(SegmentKind::Stack, 0x7fff_0000, 1 << 16)
///     .segment(SegmentKind::Globals, 0x60_0000, 1 << 16)
///     .build();
/// assert_eq!(space.segments().len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct AddressSpaceBuilder {
    segments: Vec<Segment>,
}

impl AddressSpaceBuilder {
    /// Adds a zeroed segment covering `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the new segment overlaps an existing one, or if `base`/`len`
    /// are not 16-byte aligned.
    pub fn segment(mut self, kind: SegmentKind, base: u64, len: u64) -> Self {
        let mem = TaggedMemory::new(base, len);
        for s in &self.segments {
            let disjoint = mem.end() <= s.mem.base() || mem.base() >= s.mem.end();
            assert!(
                disjoint,
                "segment {kind:?} at {base:#x} overlaps {:?}",
                s.kind
            );
        }
        self.segments.push(Segment { kind, mem });
        self
    }

    /// Finalises the address space (segments sorted by base address).
    pub fn build(mut self) -> AddressSpace {
        self.segments.sort_by_key(|s| s.mem.base());
        AddressSpace {
            segments: self.segments,
            regs: RegisterFile::new(),
            page_table: PageTable::new(),
        }
    }
}

/// A simulated process address space: disjoint tagged segments, a capability
/// register file, and a page table with CapDirty tracking.
///
/// All capability stores are routed through the page table so that CapDirty
/// bits stay faithful to §3.4.2 (first capability store to a clean page
/// traps and marks the PTE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressSpace {
    segments: Vec<Segment>,
    regs: RegisterFile,
    page_table: PageTable,
}

impl AddressSpace {
    /// Starts building an address space.
    pub fn builder() -> AddressSpaceBuilder {
        AddressSpaceBuilder::default()
    }

    /// All segments, ordered by base address.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The first segment of the given kind, if any.
    pub fn segment(&self, kind: SegmentKind) -> Option<&Segment> {
        self.segments.iter().find(|s| s.kind == kind)
    }

    /// Mutable view of the first segment of the given kind.
    pub fn segment_mut(&mut self, kind: SegmentKind) -> Option<&mut Segment> {
        self.segments.iter_mut().find(|s| s.kind == kind)
    }

    /// The capability register file.
    #[inline]
    pub fn registers(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable register file.
    #[inline]
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// The page table.
    #[inline]
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page table (sweeps re-clean false-positive CapDirty pages).
    #[inline]
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Simultaneous mutable access to segments and page table, as the sweep
    /// needs both (clear tags in segments, re-clean PTEs).
    pub fn sweep_parts_mut(&mut self) -> (&mut [Segment], &mut RegisterFile, &mut PageTable) {
        (&mut self.segments, &mut self.regs, &mut self.page_table)
    }

    /// Mutable access to all segments (for incremental sweeps that walk one
    /// region at a time).
    pub fn segments_mut(&mut self) -> &mut [Segment] {
        &mut self.segments
    }

    fn seg_for(&self, addr: u64, len: u64) -> Result<&TaggedMemory, MemError> {
        self.segments
            .iter()
            .map(|s| &s.mem)
            .find(|m| m.contains(addr, len))
            .ok_or(MemError::Unmapped { addr })
    }

    fn seg_for_mut(&mut self, addr: u64, len: u64) -> Result<&mut TaggedMemory, MemError> {
        self.segments
            .iter_mut()
            .map(|s| &mut s.mem)
            .find(|m| m.contains(addr, len))
            .ok_or(MemError::Unmapped { addr })
    }

    // --- Data access --------------------------------------------------------

    /// Reads bytes at `addr` from whichever segment maps it.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if no single segment maps the whole range.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        self.seg_for(addr, buf.len() as u64)?.read_bytes(addr, buf)
    }

    /// Writes bytes at `addr` as data (clears covered tags).
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if no single segment maps the whole range.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        self.seg_for_mut(addr, buf.len() as u64)?
            .write_bytes(addr, buf)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if the range is not mapped.
    pub fn load_u64(&self, addr: u64) -> Result<u64, MemError> {
        self.seg_for(addr, 8)?.read_u64(addr)
    }

    /// Writes a little-endian `u64` as data (clears covered tags).
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if the range is not mapped.
    pub fn store_u64(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.seg_for_mut(addr, 8)?.write_u64(addr, value)
    }

    // --- Capability access ---------------------------------------------------

    /// Loads the capability at 16-byte-aligned `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`], [`MemError::Misaligned`].
    pub fn load_cap(&self, addr: u64) -> Result<Capability, MemError> {
        self.seg_for(addr, 16)?.read_cap(addr)
    }

    /// Loads the raw capability word and tag at `addr`.
    ///
    /// # Errors
    ///
    /// As [`AddressSpace::load_cap`].
    pub fn load_cap_word(&self, addr: u64) -> Result<(CapWord, bool), MemError> {
        self.seg_for(addr, 16)?.read_cap_word(addr)
    }

    /// Stores a capability at `addr`, updating CapDirty state when the
    /// stored word is tagged.
    ///
    /// # Errors
    ///
    /// [`MemError::CapStoreInhibited`] if the page inhibits capability
    /// stores; otherwise as [`AddressSpace::load_cap`].
    pub fn store_cap(&mut self, addr: u64, cap: &Capability) -> Result<(), MemError> {
        if cap.tag() {
            self.page_table
                .note_cap_store(addr)
                .map_err(|()| MemError::CapStoreInhibited { addr })?;
            // Summarise where the stored capability points (per-page color
            // and coarse-region masks for the sweep-avoidance backends).
            self.page_table.note_cap_pointee(addr, cap.base());
        }
        self.seg_for_mut(addr, 16)?.write_cap(addr, cap)
    }

    /// Total tagged granules across all segments.
    pub fn tag_count(&self) -> u64 {
        self.segments.iter().map(|s| s.mem.tag_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn space() -> AddressSpace {
        AddressSpace::builder()
            .segment(SegmentKind::Heap, 0x1000_0000, 1 << 20)
            .segment(SegmentKind::Stack, 0x7fff_0000, 1 << 16)
            .segment(SegmentKind::Globals, 0x60_0000, 1 << 16)
            .build()
    }

    #[test]
    fn routing_by_address() {
        let mut s = space();
        s.store_u64(0x1000_0000, 1).unwrap();
        s.store_u64(0x7fff_0008, 2).unwrap();
        s.store_u64(0x60_0010, 3).unwrap();
        assert_eq!(s.load_u64(0x1000_0000).unwrap(), 1);
        assert_eq!(s.load_u64(0x7fff_0008).unwrap(), 2);
        assert_eq!(s.load_u64(0x60_0010).unwrap(), 3);
        assert!(matches!(
            s.load_u64(0x5000_0000),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn cap_store_marks_page_dirty_everywhere() {
        let mut s = space();
        let cap = Capability::root_rw(0x1000_0000, 64);
        s.store_cap(0x7fff_0020, &cap).unwrap(); // stack holds heap pointer
        assert!(s.page_table().is_cap_dirty(0x7fff_0020));
        assert!(!s.page_table().is_cap_dirty(0x1000_0000));
        assert_eq!(s.tag_count(), 1);
    }

    #[test]
    fn cap_store_summarises_pointee_color_and_region() {
        let mut s = space();
        let cap = Capability::root_rw(0x1000_0000, 64);
        s.store_cap(0x7fff_0020, &cap).unwrap();
        let table = s.page_table();
        assert_eq!(
            table.pointee_colors(0x7fff_0020),
            1 << cheri::color_of(0x1000_0000)
        );
        assert_eq!(
            table.pointee_regions(0x7fff_0020),
            cheri::poison_bit(0x1000_0000)
        );
        // The pointee's own page is untouched.
        assert_eq!(table.pointee_colors(0x1000_0000), 0);
    }

    #[test]
    fn untagged_store_does_not_dirty_page() {
        let mut s = space();
        let dead = Capability::root_rw(0x1000_0000, 64).cleared();
        s.store_cap(0x1000_0040, &dead).unwrap();
        assert!(!s.page_table().is_cap_dirty(0x1000_0040));
    }

    #[test]
    fn inhibited_page_rejects_cap_store() {
        let mut s = space();
        s.page_table_mut().set_cap_store_inhibit(0x1000_0000, true);
        let cap = Capability::root_rw(0x1000_0000, 64);
        assert_eq!(
            s.store_cap(0x1000_0000, &cap),
            Err(MemError::CapStoreInhibited { addr: 0x1000_0000 })
        );
        // Next page is fine.
        s.store_cap(0x1000_0000 + PAGE_SIZE, &cap).unwrap();
    }

    #[test]
    fn segment_lookup_by_kind() {
        let s = space();
        assert_eq!(
            s.segment(SegmentKind::Heap).unwrap().mem().base(),
            0x1000_0000
        );
        assert!(s.segment(SegmentKind::Shadow).is_none());
        assert!(SegmentKind::Heap.sweepable());
        assert!(!SegmentKind::Shadow.sweepable());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_segments_panic() {
        let _ = AddressSpace::builder()
            .segment(SegmentKind::Heap, 0x1000, 0x1000)
            .segment(SegmentKind::Stack, 0x1800, 0x1000)
            .build();
    }

    #[test]
    fn cross_segment_access_is_unmapped() {
        let s = space();
        // 8 bytes straddling the end of the globals segment.
        assert!(matches!(
            s.load_u64(0x60_0000 + (1 << 16) - 4),
            Err(MemError::Unmapped { .. })
        ));
    }
}
