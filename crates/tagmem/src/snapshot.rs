//! Core-dump snapshots and pointer-density statistics.
//!
//! The paper evaluates sweeping over "application memory dumps" (§5.1, §5.3):
//! memory images captured when the quarantine filled, preprocessed so that
//! capabilities are architecturally identifiable, then swept repeatedly on
//! the target machine. [`CoreDump`] reproduces that methodology, and
//! [`PointerStats`] computes the page/line/granule pointer densities that
//! drive Table 2 and Figure 8(a).

use crate::{AddressSpace, Segment, SegmentKind, TaggedMemory, GRANULE_SIZE, LINE_SIZE, PAGE_SIZE};

/// A snapshot of one segment: name, placement, data bytes and tag bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentImage {
    /// The segment's role.
    pub kind: SegmentKind,
    /// A full copy of the segment's memory (data + tags).
    pub mem: TaggedMemory,
}

/// A captured process image, sweepable offline.
///
/// # Examples
///
/// ```
/// use tagmem::{AddressSpace, CoreDump, SegmentKind};
/// use cheri::Capability;
///
/// # fn main() -> Result<(), tagmem::MemError> {
/// let mut space = AddressSpace::builder()
///     .segment(SegmentKind::Heap, 0x1000, 1 << 16)
///     .build();
/// space.store_cap(0x2000, &Capability::root_rw(0x1000, 64))?;
/// let dump = CoreDump::capture(&space);
/// assert_eq!(dump.stats().tagged_granules, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDump {
    segments: Vec<SegmentImage>,
    cap_dirty_pages: Vec<u64>,
}

impl CoreDump {
    /// Captures all sweepable segments of an address space, plus the page
    /// table's CapDirty page list.
    pub fn capture(space: &AddressSpace) -> CoreDump {
        CoreDump {
            segments: space
                .segments()
                .iter()
                .filter(|s| s.kind().sweepable())
                .map(|s| SegmentImage {
                    kind: s.kind(),
                    mem: s.mem().clone(),
                })
                .collect(),
            cap_dirty_pages: space.page_table().cap_dirty_pages(),
        }
    }

    /// Reassembles a dump from parts (deserialisation).
    pub(crate) fn from_parts(segments: Vec<SegmentImage>, cap_dirty_pages: Vec<u64>) -> CoreDump {
        CoreDump {
            segments,
            cap_dirty_pages,
        }
    }

    /// Builds a dump directly from segment images (synthetic experiments).
    pub fn from_images(segments: Vec<SegmentImage>) -> CoreDump {
        let mut cap_dirty_pages = Vec::new();
        for img in &segments {
            let mem = &img.mem;
            let mut page = mem.base() & !(PAGE_SIZE - 1);
            while page < mem.end() {
                let span = (mem.end() - page).min(PAGE_SIZE);
                let probe_start = page.max(mem.base());
                let any_tag = (probe_start..page + span)
                    .step_by(GRANULE_SIZE as usize)
                    .any(|a| mem.tag_at(a));
                if any_tag {
                    cap_dirty_pages.push(page);
                }
                page += PAGE_SIZE;
            }
        }
        cap_dirty_pages.sort_unstable();
        CoreDump {
            segments,
            cap_dirty_pages,
        }
    }

    /// The captured segment images.
    #[inline]
    pub fn segments(&self) -> &[SegmentImage] {
        &self.segments
    }

    /// Mutable segment images — sweeping a dump mutates its tags.
    #[inline]
    pub fn segments_mut(&mut self) -> &mut [SegmentImage] {
        &mut self.segments
    }

    /// Page-aligned addresses of pages the PTEs said may hold capabilities
    /// at capture time (the §5.3 "array of pages that could contain
    /// capabilities").
    #[inline]
    pub fn cap_dirty_pages(&self) -> &[u64] {
        &self.cap_dirty_pages
    }

    /// Restores the dump's segments into mutable segments of a live space
    /// (used to replay an image repeatedly for timing runs).
    pub fn restore_into(&self, segments: &mut [Segment]) {
        for img in &self.segments {
            if let Some(seg) = segments
                .iter_mut()
                .find(|s| s.mem().base() == img.mem.base())
            {
                *seg.mem_mut() = img.mem.clone();
            }
        }
    }

    /// Computes pointer-density statistics over the whole dump.
    pub fn stats(&self) -> PointerStats {
        let mut s = PointerStats::default();
        for img in &self.segments {
            let mem = &img.mem;
            s.total_bytes += mem.len();
            s.tagged_granules += mem.tag_count();
            s.total_granules += mem.granules();

            // Line density.
            let mut addr = mem.base();
            while addr < mem.end() {
                let line_end = (addr + LINE_SIZE).min(mem.end());
                let any = (addr..line_end)
                    .step_by(GRANULE_SIZE as usize)
                    .any(|a| mem.tag_at(a));
                s.total_lines += 1;
                if any {
                    s.lines_with_pointers += 1;
                }
                addr = line_end;
            }

            // Page density (ground truth, not the CapDirty approximation).
            let mut page = mem.base() & !(PAGE_SIZE - 1);
            while page < mem.end() {
                let page_end = (page + PAGE_SIZE).min(mem.end());
                let start = page.max(mem.base());
                let any = (start..page_end)
                    .step_by(GRANULE_SIZE as usize)
                    .any(|a| mem.tag_at(a));
                s.total_pages += 1;
                if any {
                    s.pages_with_pointers += 1;
                }
                page += PAGE_SIZE;
            }
        }
        s
    }
}

/// Pointer-density statistics of a memory image, at the three granularities
/// the paper's hardware assists exploit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PointerStats {
    /// Total bytes in the image.
    pub total_bytes: u64,
    /// Tag granules in the image.
    pub total_granules: u64,
    /// Granules whose tag is set.
    pub tagged_granules: u64,
    /// 128-byte cache lines in the image.
    pub total_lines: u64,
    /// Lines holding at least one tagged granule (what `CLoadTags` must
    /// still sweep).
    pub lines_with_pointers: u64,
    /// Pages in the image.
    pub total_pages: u64,
    /// Pages holding at least one tagged granule (what PTE CapDirty must
    /// still sweep, assuming no false positives).
    pub pages_with_pointers: u64,
}

impl PointerStats {
    /// Fraction of granules that are tagged.
    pub fn granule_density(&self) -> f64 {
        ratio(self.tagged_granules, self.total_granules)
    }

    /// Fraction of cache lines containing pointers (Fig. 8a, CLoadTags bar).
    pub fn line_density(&self) -> f64 {
        ratio(self.lines_with_pointers, self.total_lines)
    }

    /// Fraction of pages containing pointers (Table 2 column 1; Fig. 8a
    /// PTE CapDirty bar).
    pub fn page_density(&self) -> f64 {
        ratio(self.pages_with_pointers, self.total_pages)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;

    fn dumped_space() -> CoreDump {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, 0x1_0000, 1 << 16) // 16 pages, 512 lines
            .segment(SegmentKind::Shadow, 0x80_0000, 1 << 12)
            .build();
        let cap = Capability::root_rw(0x1_0000, 64);
        // Two capabilities on one line, one on another page.
        space.store_cap(0x1_0000, &cap).unwrap();
        space.store_cap(0x1_0010, &cap).unwrap();
        space.store_cap(0x1_5000, &cap).unwrap();
        CoreDump::capture(&space)
    }

    #[test]
    fn capture_excludes_shadow_segments() {
        let dump = dumped_space();
        assert_eq!(dump.segments().len(), 1);
        assert_eq!(dump.segments()[0].kind, SegmentKind::Heap);
    }

    #[test]
    fn stats_count_densities() {
        let stats = dumped_space().stats();
        assert_eq!(stats.tagged_granules, 3);
        assert_eq!(stats.total_pages, 16);
        assert_eq!(stats.pages_with_pointers, 2);
        assert_eq!(stats.lines_with_pointers, 2);
        assert!((stats.page_density() - 2.0 / 16.0).abs() < 1e-12);
        assert!((stats.line_density() - 2.0 / 512.0).abs() < 1e-12);
        assert!((stats.granule_density() - 3.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn cap_dirty_pages_recorded() {
        let dump = dumped_space();
        assert_eq!(dump.cap_dirty_pages(), &[0x1_0000, 0x1_5000]);
    }

    #[test]
    fn from_images_derives_dirty_pages() {
        let mut mem = TaggedMemory::new(0x2_0000, 2 * PAGE_SIZE);
        mem.write_cap(0x2_0000 + PAGE_SIZE, &Capability::root_rw(0x2_0000, 64))
            .unwrap();
        let dump = CoreDump::from_images(vec![SegmentImage {
            kind: SegmentKind::Heap,
            mem,
        }]);
        assert_eq!(dump.cap_dirty_pages(), &[0x2_0000 + PAGE_SIZE]);
    }

    #[test]
    fn restore_into_replays_image() {
        let dump = dumped_space();
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, 0x1_0000, 1 << 16)
            .build();
        assert_eq!(space.tag_count(), 0);
        dump.restore_into(space.sweep_parts_mut().0);
        assert_eq!(space.tag_count(), 3);
        assert!(space
            .segment(SegmentKind::Heap)
            .unwrap()
            .mem()
            .tag_at(0x1_5000));
    }

    #[test]
    fn empty_dump_stats_are_zero() {
        let dump = CoreDump::from_images(vec![]);
        let s = dump.stats();
        assert_eq!(s.granule_density(), 0.0);
        assert_eq!(s.page_density(), 0.0);
        assert_eq!(s.line_density(), 0.0);
    }
}
