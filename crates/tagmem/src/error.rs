//! Error type for memory operations.

use core::fmt;

/// The ways a simulated memory access can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MemError {
    /// The address is not mapped by any segment.
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// The access crosses a segment boundary or runs past the end of one.
    OutOfRange {
        /// First byte of the attempted access.
        addr: u64,
        /// Length of the attempted access.
        len: u64,
    },
    /// A capability access was not 16-byte aligned.
    Misaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// A capability store hit a page with the capability-store-inhibit flag
    /// (paper footnote 3: e.g. file-backed mappings cannot hold tags).
    CapStoreInhibited {
        /// The faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "address {addr:#x} is not mapped"),
            MemError::OutOfRange { addr, len } => {
                write!(
                    f,
                    "access of {len} bytes at {addr:#x} runs outside its segment"
                )
            }
            MemError::Misaligned { addr } => {
                write!(f, "capability access at {addr:#x} is not 16-byte aligned")
            }
            MemError::CapStoreInhibited { addr } => {
                write!(
                    f,
                    "capability store to {addr:#x} is inhibited by the page table"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MemError::Unmapped { addr: 0x40 }
            .to_string()
            .contains("0x40"));
        assert!(MemError::OutOfRange { addr: 1, len: 2 }
            .to_string()
            .contains("2 bytes"));
        assert!(MemError::Misaligned { addr: 3 }
            .to_string()
            .contains("aligned"));
        assert!(MemError::CapStoreInhibited { addr: 4 }
            .to_string()
            .contains("inhibited"));
    }
}
