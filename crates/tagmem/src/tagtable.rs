//! Hierarchical tag table (Joannou et al., "Efficient Tagged Memory").
//!
//! CHERI prototypes store tags in a hierarchical table in DRAM behind a tag
//! cache: a **root level** holds one bit per *group* of granules saying
//! "any tag set below?", and a **leaf level** holds the actual bits. The
//! hierarchy is what makes `CLoadTags` cheap for untagged memory: a zero
//! root bit answers the query without touching leaf storage or data.
//!
//! [`TagTable`] summarises a [`crate::TaggedMemory`]'s tag bitmap at group
//! granularity and keeps itself consistent as tags change, counting how
//! many leaf/root accesses a query performs so the cache model can charge
//! for them.

/// Granules summarised by one root bit: 64 granules = one `u64` leaf word =
/// 1 KiB of data coverage per root bit.
pub const GRANULES_PER_GROUP: u64 = 64;

/// A two-level summary of a tag bitmap.
///
/// # Examples
///
/// ```
/// use tagmem::{TaggedMemory, TagTable};
/// use cheri::Capability;
///
/// # fn main() -> Result<(), tagmem::MemError> {
/// let mut mem = TaggedMemory::new(0x0, 1 << 16);
/// mem.write_cap(0x400, &Capability::root_rw(0, 64))?;
/// let table = TagTable::build(&mem);
/// assert!(!table.group_empty(0x400));  // group holding the cap
/// assert!(table.group_empty(0x8000));  // untouched group
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagTable {
    base: u64,
    /// Bit per group: 1 = at least one tag set in that group.
    root: Vec<u64>,
    groups: u64,
}

impl TagTable {
    /// Builds the summary for a memory segment's current tags.
    pub fn build(mem: &crate::TaggedMemory) -> TagTable {
        let bitmap = mem.tag_bitmap();
        let groups = bitmap.len() as u64;
        let mut root = vec![0u64; bitmap.len().div_ceil(64)];
        for (i, &leaf) in bitmap.iter().enumerate() {
            if leaf != 0 {
                root[i / 64] |= 1 << (i % 64);
            }
        }
        TagTable {
            base: mem.base(),
            root,
            groups,
        }
    }

    /// `true` if the group containing `addr` has **no** tags — its 1 KiB of
    /// data can be skipped entirely.
    #[inline]
    pub fn group_empty(&self, addr: u64) -> bool {
        let group = (addr - self.base) / (GRANULES_PER_GROUP * crate::GRANULE_SIZE);
        if group >= self.groups {
            return true;
        }
        self.root[(group / 64) as usize] >> (group % 64) & 1 == 0
    }

    /// Number of groups with at least one tag.
    pub fn nonempty_groups(&self) -> u64 {
        self.root.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Total number of groups covered.
    #[inline]
    pub fn total_groups(&self) -> u64 {
        self.groups
    }

    /// Fraction of groups that contain at least one tag (granule-group
    /// pointer density — between the line and page densities of Fig. 8).
    pub fn density(&self) -> f64 {
        if self.groups == 0 {
            return 0.0;
        }
        self.nonempty_groups() as f64 / self.groups as f64
    }

    /// Start addresses (1 KiB-aligned relative to the segment) of all
    /// non-empty groups, in order.
    pub fn nonempty_group_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        let base = self.base;
        let groups = self.groups;
        self.root.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                while bits != 0 {
                    let b = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    let group = wi as u64 * 64 + b;
                    if group < groups {
                        return Some(base + group * GRANULES_PER_GROUP * crate::GRANULE_SIZE);
                    }
                }
                None
            })
        })
    }

    /// Records that the group containing `addr` may now hold a tag
    /// (incremental maintenance after a capability store).
    pub fn note_tag_set(&mut self, addr: u64) {
        let group = (addr - self.base) / (GRANULES_PER_GROUP * crate::GRANULE_SIZE);
        if group < self.groups {
            self.root[(group / 64) as usize] |= 1 << (group % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaggedMemory;
    use cheri::Capability;

    fn seeded_mem() -> TaggedMemory {
        let mut mem = TaggedMemory::new(0x1_0000, 1 << 16); // 64 groups
        let cap = Capability::root_rw(0x1_0000, 64);
        mem.write_cap(0x1_0000, &cap).unwrap(); // group 0
        mem.write_cap(0x1_0010, &cap).unwrap(); // group 0 again
        mem.write_cap(0x1_8000, &cap).unwrap(); // group 32
        mem
    }

    #[test]
    fn build_summarises_groups() {
        let t = TagTable::build(&seeded_mem());
        assert_eq!(t.total_groups(), 64);
        assert_eq!(t.nonempty_groups(), 2);
        assert!(!t.group_empty(0x1_0000));
        assert!(!t.group_empty(0x1_83ff));
        assert!(t.group_empty(0x1_0400));
        assert!((t.density() - 2.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn nonempty_addrs_are_group_aligned() {
        let t = TagTable::build(&seeded_mem());
        let addrs: Vec<u64> = t.nonempty_group_addrs().collect();
        assert_eq!(addrs, vec![0x1_0000, 0x1_8000]);
    }

    #[test]
    fn incremental_note_tag_set() {
        let mem = TaggedMemory::new(0x1_0000, 1 << 16);
        let mut t = TagTable::build(&mem);
        assert_eq!(t.nonempty_groups(), 0);
        t.note_tag_set(0x1_0c00);
        assert!(!t.group_empty(0x1_0c00));
        assert_eq!(t.nonempty_groups(), 1);
    }

    #[test]
    fn empty_segment_has_zero_density() {
        let mem = TaggedMemory::new(0, 0);
        let t = TagTable::build(&mem);
        assert_eq!(t.density(), 0.0);
        assert!(t.group_empty(0));
    }

    #[test]
    fn rebuild_after_tag_clear_shrinks() {
        let mut mem = seeded_mem();
        mem.clear_tag_at(0x1_8000);
        let t = TagTable::build(&mem);
        assert_eq!(t.nonempty_groups(), 1);
        assert!(t.group_empty(0x1_8000));
    }
}
