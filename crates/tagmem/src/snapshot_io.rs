//! Binary serialisation for core dumps.
//!
//! The paper's methodology dumps process images to disk and sweeps them
//! offline, repeatedly, on a different machine (§5.3). This module gives
//! [`CoreDump`] the same portability: a versioned little-endian format
//! carrying each segment's kind, placement, data bytes and tag bitmap,
//! plus the captured CapDirty page list.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{CoreDump, SegmentImage, SegmentKind, TaggedMemory};

/// Format magic: "CVKD" + version 1.
const MAGIC: u32 = 0x4356_4401;

/// The ways decoding a dump can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DumpIoError {
    /// Wrong magic/version word.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// Unknown segment-kind byte.
    BadSegmentKind {
        /// The value found.
        found: u8,
    },
    /// Buffer ended mid-record, or a field was inconsistent.
    Truncated,
}

impl core::fmt::Display for DumpIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DumpIoError::BadMagic { found } => write!(f, "bad dump magic {found:#010x}"),
            DumpIoError::BadSegmentKind { found } => {
                write!(f, "unknown segment kind {found}")
            }
            DumpIoError::Truncated => write!(f, "dump buffer truncated or corrupt"),
        }
    }
}

impl std::error::Error for DumpIoError {}

fn kind_to_byte(kind: SegmentKind) -> u8 {
    match kind {
        SegmentKind::Heap => 1,
        SegmentKind::Stack => 2,
        SegmentKind::Globals => 3,
        SegmentKind::Shadow => 4,
    }
}

fn byte_to_kind(b: u8) -> Result<SegmentKind, DumpIoError> {
    match b {
        1 => Ok(SegmentKind::Heap),
        2 => Ok(SegmentKind::Stack),
        3 => Ok(SegmentKind::Globals),
        4 => Ok(SegmentKind::Shadow),
        found => Err(DumpIoError::BadSegmentKind { found }),
    }
}

/// Serialises a core dump.
pub fn encode_dump(dump: &CoreDump) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(dump.segments().len() as u32);
    for img in dump.segments() {
        let mem = &img.mem;
        buf.put_u8(kind_to_byte(img.kind));
        buf.put_u64_le(mem.base());
        buf.put_u64_le(mem.len());
        buf.put_slice(mem.data());
        for &w in mem.tag_bitmap() {
            buf.put_u64_le(w);
        }
    }
    let pages = dump.cap_dirty_pages();
    buf.put_u64_le(pages.len() as u64);
    for &p in pages {
        buf.put_u64_le(p);
    }
    buf.freeze()
}

/// Deserialises a core dump.
///
/// # Errors
///
/// [`DumpIoError`] on malformed input; never panics on arbitrary bytes.
pub fn decode_dump(mut buf: Bytes) -> Result<CoreDump, DumpIoError> {
    let need = |buf: &Bytes, n: usize| -> Result<(), DumpIoError> {
        if buf.remaining() < n {
            Err(DumpIoError::Truncated)
        } else {
            Ok(())
        }
    };
    need(&buf, 8)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DumpIoError::BadMagic { found: magic });
    }
    let nsegs = buf.get_u32_le() as usize;
    if nsegs > 1024 {
        return Err(DumpIoError::Truncated);
    }
    let mut segments = Vec::with_capacity(nsegs);
    for _ in 0..nsegs {
        need(&buf, 17)?;
        let kind = byte_to_kind(buf.get_u8())?;
        let base = buf.get_u64_le();
        let len = buf.get_u64_le();
        if !base.is_multiple_of(16)
            || !len.is_multiple_of(16)
            || len > (1 << 40)
            || base.checked_add(len).is_none()
        {
            return Err(DumpIoError::Truncated);
        }
        need(&buf, len as usize)?;
        let data = buf.copy_to_bytes(len as usize);
        let tag_words = ((len / 16) as usize).div_ceil(64);
        need(&buf, tag_words * 8)?;
        let mut mem = TaggedMemory::new(base, len);
        if len > 0 {
            mem.write_bytes(base, &data)
                .map_err(|_| DumpIoError::Truncated)?;
        }
        // Tags are restored bit-by-bit through the public API so the
        // memory invariants (bitmap padding) hold by construction.
        for wi in 0..tag_words {
            let w = buf.get_u64_le();
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let g = wi as u64 * 64 + b;
                if g * 16 >= len {
                    return Err(DumpIoError::Truncated);
                }
                let addr = base + g * 16;
                let (word, _) = mem
                    .read_cap_word(addr)
                    .map_err(|_| DumpIoError::Truncated)?;
                mem.write_cap_word(addr, word, true)
                    .map_err(|_| DumpIoError::Truncated)?;
            }
        }
        segments.push(SegmentImage { kind, mem });
    }
    need(&buf, 8)?;
    let npages = buf.get_u64_le() as usize;
    if npages > (1 << 28) {
        return Err(DumpIoError::Truncated);
    }
    need(&buf, npages * 8)?;
    let mut pages = Vec::with_capacity(npages);
    for _ in 0..npages {
        pages.push(buf.get_u64_le());
    }
    Ok(CoreDump::from_parts(segments, pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressSpace, SegmentKind};
    use cheri::Capability;

    fn dump() -> CoreDump {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, 0x1_0000, 1 << 14)
            .segment(SegmentKind::Stack, 0x8_0000, 1 << 12)
            .build();
        let cap = Capability::root_rw(0x1_0000, 64);
        space.store_cap(0x1_0040, &cap).unwrap();
        space.store_cap(0x8_0100, &cap).unwrap();
        space.store_u64(0x1_2000, 0xfeed).unwrap();
        CoreDump::capture(&space)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = dump();
        let back = decode_dump(encode_dump(&d)).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.stats(), d.stats());
        assert_eq!(back.cap_dirty_pages(), d.cap_dirty_pages());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_dump(&dump()).to_vec();
        bytes[1] ^= 0x55;
        assert!(matches!(
            decode_dump(Bytes::from(bytes)),
            Err(DumpIoError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncations_rejected() {
        let bytes = encode_dump(&dump());
        for cut in [0, 7, 8, 9, 100, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_dump(bytes.slice(..cut)).is_err(), "cut {cut}");
        }
        assert!(decode_dump(bytes).is_ok());
    }

    #[test]
    fn bad_segment_kind_rejected() {
        let mut bytes = encode_dump(&dump()).to_vec();
        bytes[8] = 99; // first segment's kind byte
        assert!(matches!(
            decode_dump(Bytes::from(bytes)),
            Err(DumpIoError::BadSegmentKind { found: 99 })
        ));
    }

    #[test]
    fn decoded_dump_is_sweepable() {
        // The point of the format: sweep a deserialised dump offline.
        let d = dump();
        let decoded = decode_dump(encode_dump(&d)).unwrap();
        assert_eq!(decoded.stats().tagged_granules, 2);
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;

    /// Decoding arbitrary byte soup never panics (deterministic xorshift
    /// corpus — tagmem avoids a proptest dependency cycle here).
    #[test]
    fn decode_never_panics_on_garbage() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for len in [0usize, 1, 7, 8, 9, 64, 1024, 8192] {
            let mut bytes = vec![0u8; len];
            for b in &mut bytes {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = x as u8;
            }
            let _ = decode_dump(Bytes::from(bytes));
        }
    }

    /// Single-byte corruption of a valid dump never panics.
    #[test]
    fn decode_never_panics_on_corruption() {
        let mut space = crate::AddressSpace::builder()
            .segment(crate::SegmentKind::Heap, 0x1_0000, 4096)
            .build();
        space
            .store_cap(0x1_0040, &cheri::Capability::root_rw(0x1_0000, 64))
            .unwrap();
        let bytes = encode_dump(&crate::CoreDump::capture(&space)).to_vec();
        for pos in (0..bytes.len()).step_by(37) {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let _ = decode_dump(Bytes::from(corrupt));
            }
        }
    }
}
