//! Tagged memory, page tables with CapDirty bits, and hierarchical tag
//! tables — the memory substrate CHERIvoke sweeps.
//!
//! CHERI memory attaches one out-of-band **tag bit to every 16-byte
//! granule** (paper §2.2): the bit is set only by legitimate capability
//! stores and cleared by any data write, making capabilities unforgeable and
//! *architecturally visible*. This crate models:
//!
//! * [`TaggedMemory`] — a contiguous segment of byte-addressable memory plus
//!   its tag bitmap; data writes clear tags, capability reads/writes move
//!   [`cheri::CapWord`]s with their tags.
//! * [`AddressSpace`] — the program's memory image: heap, stack and globals
//!   segments, a [`RegisterFile`], and a [`PageTable`] whose **CapDirty**
//!   bits record which pages have ever held capabilities (paper §3.4.2).
//! * [`TagTable`] — a two-level hierarchical summary of tag bits (after
//!   Joannou et al.), the structure behind the **CLoadTags** instruction
//!   (paper §3.4.1) that lets a sweep skip capability-free cache lines
//!   without touching their data.
//! * [`CoreDump`] — snapshots of an address space, mirroring the paper's
//!   methodology of sweeping application memory dumps (§5.3).
//!
//! # Example
//!
//! ```
//! use cheri::{Capability, Perms};
//! use tagmem::{AddressSpace, SegmentKind};
//!
//! # fn main() -> Result<(), tagmem::MemError> {
//! let mut space = AddressSpace::builder()
//!     .segment(SegmentKind::Heap, 0x1000_0000, 1 << 20)
//!     .build();
//!
//! // Store a capability: memory remembers the tag, the PTE turns CapDirty.
//! let cap = Capability::root_rw(0x1000_0040, 64);
//! space.store_cap(0x1000_0100, &cap)?;
//! assert!(space.load_cap(0x1000_0100)?.tag());
//! assert!(space.page_table().is_cap_dirty(0x1000_0100));
//!
//! // A data write to the same granule destroys the tag (unforgeability).
//! space.store_u64(0x1000_0100, 0xdead_beef)?;
//! assert!(!space.load_cap(0x1000_0100)?.tag());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addrspace;
mod error;
mod memory;
mod pagetable;
mod regfile;
mod snapshot;
pub mod snapshot_io;
mod tagtable;

pub use addrspace::{AddressSpace, AddressSpaceBuilder, Segment, SegmentKind};
pub use error::MemError;
pub use memory::TaggedMemory;
pub use pagetable::{PageFlags, PageTable, PAGE_SIZE};
pub use regfile::{RegisterFile, NUM_CAP_REGS};
pub use snapshot::{CoreDump, PointerStats, SegmentImage};
pub use tagtable::{TagTable, GRANULES_PER_GROUP};

/// Bytes per tag granule (one tag bit covers this much data).
pub const GRANULE_SIZE: u64 = cheri::GRANULE;

/// Bytes per cache line in the modelled CHERI memory subsystem (CHERI-MIPS
/// uses 128-byte lines; `CLoadTags` returns one tag mask per line).
pub const LINE_SIZE: u64 = 128;

/// Tag granules per cache line.
pub const GRANULES_PER_LINE: u64 = LINE_SIZE / GRANULE_SIZE;
