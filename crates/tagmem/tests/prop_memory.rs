//! Property tests for tagged-memory invariants: tag/data coupling,
//! CLoadTags consistency, and CapDirty soundness.

use cheri::Capability;
use proptest::prelude::*;
use tagmem::{AddressSpace, SegmentKind, TagTable, TaggedMemory, GRANULE_SIZE, PAGE_SIZE};

const BASE: u64 = 0x10_0000;
const LEN: u64 = 1 << 16;

fn granule_addr() -> impl Strategy<Value = u64> {
    (0u64..LEN / GRANULE_SIZE).prop_map(|g| BASE + g * GRANULE_SIZE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any data write of any width and placement clears exactly the tags of
    /// the granules it touches, and no others.
    #[test]
    fn data_writes_clear_only_covered_tags(
        cap_addrs in proptest::collection::btree_set(granule_addr(), 1..20),
        write_off in 0u64..(LEN - 64),
        write_len in 1usize..64,
    ) {
        let mut mem = TaggedMemory::new(BASE, LEN);
        let cap = Capability::root_rw(BASE, 64);
        for &a in &cap_addrs {
            mem.write_cap(a, &cap).unwrap();
        }
        let waddr = BASE + write_off;
        mem.write_bytes(waddr, &vec![0xa5u8; write_len]).unwrap();
        let wfirst = waddr / GRANULE_SIZE;
        let wlast = (waddr + write_len as u64 - 1) / GRANULE_SIZE;
        for &a in &cap_addrs {
            let g = a / GRANULE_SIZE;
            let covered = g >= wfirst && g <= wlast;
            prop_assert_eq!(mem.tag_at(a), !covered, "granule at {:#x}", a);
        }
    }

    /// load_tags agrees with per-granule tag_at for every line.
    #[test]
    fn cloadtags_matches_tag_bits(
        cap_addrs in proptest::collection::btree_set(granule_addr(), 0..30),
    ) {
        let mut mem = TaggedMemory::new(BASE, LEN);
        let cap = Capability::root_rw(BASE, 64);
        for &a in &cap_addrs {
            mem.write_cap(a, &cap).unwrap();
        }
        let mut line = BASE;
        while line < BASE + LEN {
            let mask = mem.load_tags(line).unwrap();
            for i in 0..8u64 {
                let expect = mem.tag_at(line + i * GRANULE_SIZE);
                prop_assert_eq!(mask >> i & 1 == 1, expect);
            }
            line += 128;
        }
    }

    /// The hierarchical tag table never claims a group is empty when it
    /// holds a tag (no false negatives — a sweep may never miss a pointer).
    #[test]
    fn tag_table_has_no_false_negatives(
        cap_addrs in proptest::collection::btree_set(granule_addr(), 0..40),
    ) {
        let mut mem = TaggedMemory::new(BASE, LEN);
        let cap = Capability::root_rw(BASE, 64);
        for &a in &cap_addrs {
            mem.write_cap(a, &cap).unwrap();
        }
        let table = TagTable::build(&mem);
        for &a in &cap_addrs {
            prop_assert!(!table.group_empty(a));
        }
        prop_assert_eq!(mem.tag_count(), cap_addrs.len() as u64);
    }

    /// CapDirty is sound: every page holding a tagged capability is dirty.
    /// (It may be over-approximate — false positives are allowed — but a
    /// clean page must never hold a tag.)
    #[test]
    fn capdirty_is_sound(
        stores in proptest::collection::vec((granule_addr(), any::<bool>()), 1..50),
    ) {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, BASE, LEN)
            .build();
        let cap = Capability::root_rw(BASE, 64);
        for &(addr, tagged) in &stores {
            if tagged {
                space.store_cap(addr, &cap).unwrap();
            } else {
                // Data store at the same location.
                space.store_u64(addr, 0x1234).unwrap();
            }
        }
        let heap = space.segment(SegmentKind::Heap).unwrap().mem().clone();
        for a in heap.tagged_addrs() {
            prop_assert!(
                space.page_table().is_cap_dirty(a),
                "page of tagged granule {a:#x} not CapDirty"
            );
        }
        // Pages never named in a store can't be dirty.
        let touched: std::collections::BTreeSet<u64> =
            stores.iter().map(|&(a, _)| a / PAGE_SIZE).collect();
        for page in (BASE / PAGE_SIZE)..((BASE + LEN) / PAGE_SIZE) {
            if !touched.contains(&page) {
                prop_assert!(!space.page_table().is_cap_dirty(page * PAGE_SIZE));
            }
        }
    }

    /// Capability round-trip through memory preserves the decoded view, and
    /// clearing the tag in memory never destroys data.
    #[test]
    fn cap_memory_roundtrip(addr in granule_addr(), obj_base in 0u64..(1 << 30), obj_len in 1u64..(1 << 16)) {
        let mut mem = TaggedMemory::new(BASE, LEN);
        let cap = Capability::root().set_bounds(obj_base, obj_len).unwrap();
        mem.write_cap(addr, &cap).unwrap();
        let got = mem.read_cap(addr).unwrap();
        prop_assert_eq!(got.base(), cap.base());
        prop_assert_eq!(got.top(), cap.top());
        prop_assert!(got.tag());
        let (before, _) = mem.read_cap_word(addr).unwrap();
        mem.clear_tag_at(addr);
        let (after, tag) = mem.read_cap_word(addr).unwrap();
        prop_assert_eq!(before, after);
        prop_assert!(!tag);
    }
}
