//! The perf-regression gate: diffs a lab run against the committed
//! baseline trajectory and decides pass/fail per metric.
//!
//! ## Gating policy (DESIGN.md §16)
//!
//! Metrics are classed two ways:
//!
//! * **Deterministic** metrics (`overhead_time`, `overhead_memory`,
//!   `quarantine_bounded`) come from the modelled fig. 5 replay — the
//!   same commit produces the same value on any machine — so they gate
//!   unconditionally, with tight thresholds.
//! * **Wall-clock** metrics (`sweep_mib_s`, `service_ops_per_sec`, pause
//!   percentiles) gate only when the baseline was recorded on a
//!   comparable host (same OS/arch/cores, [`crate::trajectory::HostFingerprint`]
//!   comparability); otherwise they are reported informationally. This is
//!   what keeps a baseline committed from a laptop from failing CI on a
//!   2-core runner while still catching regressions wherever the hosts do
//!   match.
//!
//! Verdicts ([`bench::verdicts`]) gate as booleans: a verdict that passed
//! in the baseline must still pass.

use crate::trajectory::ParsedTrajectory;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which way a metric is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better (throughput).
    HigherIsBetter,
    /// Smaller numbers are better (pauses, overheads).
    LowerIsBetter,
}

/// How one metric is gated.
#[derive(Debug, Clone, Copy)]
pub struct MetricPolicy {
    /// Regression tolerated before failing, in percent of the baseline.
    pub threshold_pct: f64,
    /// Comparison direction.
    pub direction: Direction,
    /// Wall-clock metric: gate only on comparable hosts.
    pub wall_clock: bool,
    /// Sibling metric recording this metric's measured noise (relative
    /// repeat spread, percent). When present in both runs, the effective
    /// threshold is raised to [`NOISE_MARGIN`] × the larger spread: a
    /// host that demonstrably cannot measure a metric to X% must not
    /// flag an X% "regression" in it.
    pub noise_metric: Option<&'static str>,
}

/// Multiplier on the observed repeat spread when it widens a threshold.
/// Between-run drift (frequency scaling, co-tenant load changing over
/// minutes) is typically larger than within-run spread, so the floor
/// gets headroom.
pub const NOISE_MARGIN: f64 = 2.0;

/// Ceiling on the noise floor. A host whose demonstrated spread needs a
/// wider bar than this cannot measure the metric at all: rather than
/// silently absorbing arbitrarily large regressions, such comparisons are
/// reported as informational with the noise called out.
pub const NOISE_CAP: f64 = 40.0;

/// The per-metric policy table. Thresholds are the 10% ISSUE default
/// except where a metric's variance demands otherwise; `lab.toml`'s
/// `[thresholds]` section overrides any threshold by metric name.
pub fn default_policies() -> BTreeMap<String, MetricPolicy> {
    let mut m = BTreeMap::new();
    let mut p = |name: &str, threshold_pct: f64, direction, wall_clock, noise_metric| {
        m.insert(
            name.to_string(),
            MetricPolicy {
                threshold_pct,
                direction,
                wall_clock,
                noise_metric,
            },
        );
    };
    p(
        "sweep_mib_s",
        10.0,
        Direction::HigherIsBetter,
        true,
        Some("sweep_noise_pct"),
    );
    p(
        "service_ops_per_sec",
        10.0,
        Direction::HigherIsBetter,
        true,
        Some("service_noise_pct"),
    );
    // Pause percentiles are log2-bucketed, so adjacent buckets differ 2×:
    // anything under a full bucket step is quantisation, not regression.
    p("p50_pause_us", 120.0, Direction::LowerIsBetter, true, None);
    p("p99_pause_us", 120.0, Direction::LowerIsBetter, true, None);
    // Deterministic model outputs: a 2% drift in normalised time is a
    // real policy change, not noise.
    p("overhead_time", 2.0, Direction::LowerIsBetter, false, None);
    p(
        "overhead_memory",
        2.0,
        Direction::LowerIsBetter,
        false,
        None,
    );
    p(
        "quarantine_bounded",
        0.0,
        Direction::HigherIsBetter,
        false,
        None,
    );
    // The sweep-avoidance probe's visited fraction is pure counting —
    // zero tolerance, like the other deterministic metrics.
    p("swept_fraction", 0.0, Direction::LowerIsBetter, false, None);
    // Fleet cells (`[matrix.fleet]`): aggregate throughput and pause tail
    // are wall-clock; budget boundedness is enforced synchronously by
    // admission control, so it is deterministic and gates at zero drift.
    p(
        "fleet_ops_per_sec",
        10.0,
        Direction::HigherIsBetter,
        true,
        Some("fleet_noise_pct"),
    );
    // Fleet sweep slices are tens of µs and contention-scheduled, so the
    // log2-bucketed p99 jitters a couple of buckets run to run; only an
    // order-of-magnitude blowup is a regression (the hard bound is the
    // fleet_fairness verdict's policy max_pause).
    p(
        "fleet_p99_pause_us",
        700.0,
        Direction::LowerIsBetter,
        true,
        None,
    );
    p(
        "tenant_budget_bounded",
        0.0,
        Direction::HigherIsBetter,
        false,
        None,
    );
    m
}

/// Severity of one gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Within threshold (or improved).
    Pass,
    /// Wall-clock delta on a non-comparable host — reported, not gated.
    Info,
    /// Beyond threshold, or a structural problem: fails the gate.
    Fail,
}

/// One comparison the gate made.
#[derive(Debug, Clone)]
pub struct Check {
    /// `experiment id :: metric` (or `verdict :: name`).
    pub subject: String,
    /// What happened.
    pub outcome: Outcome,
    /// Human-readable delta line.
    pub detail: String,
    /// The experiment this check belongs to (`None` for verdict checks).
    pub experiment_id: Option<String>,
    /// Whether this is a wall-clock metric comparison. A failing
    /// wall-clock check is worth re-measuring before believing — the
    /// driver re-runs the experiment to confirm; deterministic failures
    /// are final.
    pub wall_clock: bool,
}

/// The full gate result.
#[derive(Debug)]
pub struct GateReport {
    /// Every comparison, in baseline order.
    pub checks: Vec<Check>,
    /// Context lines (missing baseline, host mismatch, new experiments).
    pub notes: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no `Fail` outcome).
    pub fn passed(&self) -> bool {
        !self.checks.iter().any(|c| c.outcome == Outcome::Fail)
    }

    /// When *every* failure is a wall-clock metric comparison, the ids
    /// of the implicated experiments (deduplicated, in order) — the set
    /// worth re-measuring before believing the failure. Empty when the
    /// gate passed or any failure is structural/deterministic (those are
    /// final; re-running would not change them).
    pub fn retryable_experiments(&self) -> Vec<String> {
        let mut ids: Vec<String> = Vec::new();
        for c in &self.checks {
            if c.outcome != Outcome::Fail {
                continue;
            }
            let Some(id) = c.experiment_id.as_ref().filter(|_| c.wall_clock) else {
                return Vec::new();
            };
            if !ids.contains(id) {
                ids.push(id.clone());
            }
        }
        ids
    }

    /// Renders the report for CI logs: notes, then failures, then a
    /// one-line summary. Passing checks are summarised, not listed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        let mut counts = (0usize, 0usize, 0usize);
        for c in &self.checks {
            match c.outcome {
                Outcome::Pass => counts.0 += 1,
                Outcome::Info => counts.1 += 1,
                Outcome::Fail => counts.2 += 1,
            }
            if c.outcome != Outcome::Pass {
                let tag = if c.outcome == Outcome::Fail {
                    "FAIL"
                } else {
                    "info"
                };
                let _ = writeln!(out, "{tag}: {} — {}", c.subject, c.detail);
            }
        }
        let _ = writeln!(
            out,
            "gate: {} checks pass, {} informational, {} failing → {}",
            counts.0,
            counts.1,
            counts.2,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Percentage change of `current` vs `baseline` in the *regression*
/// direction: positive = got worse, negative = improved.
pub fn regression_pct(baseline: f64, current: f64, direction: Direction) -> f64 {
    if baseline == 0.0 {
        // No meaningful relative change; treat any nonzero current as a
        // full-scale move in whichever direction it is.
        let moved = match direction {
            Direction::HigherIsBetter => -current.signum(),
            Direction::LowerIsBetter => current.signum(),
        };
        return if current == 0.0 { 0.0 } else { moved * 100.0 };
    }
    let change = (current - baseline) / baseline * 100.0;
    match direction {
        Direction::HigherIsBetter => -change,
        Direction::LowerIsBetter => change,
    }
}

/// Diffs `current` against `baseline` under `policies`.
///
/// Structural rules: an experiment present in the baseline but missing
/// from the current run **fails** when both runs used the same mode (a
/// shrunken matrix could otherwise hide a regression); new experiments
/// and metrics are noted and pass. A verdict that passed in the baseline
/// and fails now is a failure even without thresholds.
pub fn compare(
    baseline: &ParsedTrajectory,
    current: &ParsedTrajectory,
    policies: &BTreeMap<String, MetricPolicy>,
) -> GateReport {
    let mut checks = Vec::new();
    let mut notes = Vec::new();

    let hosts_comparable = baseline.host.comparable_to(&current.host);
    if !hosts_comparable {
        notes.push(format!(
            "baseline host ({}/{}/{} cores) differs from this host ({}/{}/{} cores): \
             wall-clock metrics are informational only",
            baseline.host.os,
            baseline.host.arch,
            baseline.host.cores,
            current.host.os,
            current.host.arch,
            current.host.cores
        ));
    }
    let same_mode = baseline.mode == current.mode;
    if !same_mode {
        notes.push(format!(
            "baseline mode '{}' differs from current mode '{}': only shared experiments compare",
            baseline.mode, current.mode
        ));
    }

    for (id, base_metrics) in &baseline.metrics {
        let Some(cur_metrics) = current.metrics.get(id) else {
            if same_mode {
                checks.push(Check {
                    subject: id.clone(),
                    outcome: Outcome::Fail,
                    detail: "experiment present in baseline but missing from this run".into(),
                    experiment_id: Some(id.clone()),
                    wall_clock: false,
                });
            } else {
                notes.push(format!("experiment '{id}' not in this run's matrix"));
            }
            continue;
        };
        for (metric, &base) in base_metrics {
            let Some(policy) = policies.get(metric) else {
                continue; // un-gated metric (informational fields)
            };
            let Some(&cur) = cur_metrics.get(metric) else {
                checks.push(Check {
                    subject: format!("{id} :: {metric}"),
                    outcome: Outcome::Fail,
                    detail: "metric present in baseline but missing from this run".into(),
                    experiment_id: Some(id.clone()),
                    wall_clock: false,
                });
                continue;
            };
            let reg = regression_pct(base, cur, policy.direction);
            // Noise floor: both runs recorded how repeatable this metric
            // was on their host; the gate cannot resolve regressions
            // finer than that.
            let noise_floor = policy.noise_metric.map_or(0.0, |noise| {
                let b = base_metrics.get(noise).copied().unwrap_or(0.0);
                let c = cur_metrics.get(noise).copied().unwrap_or(0.0);
                NOISE_MARGIN * b.max(c)
            });
            let unmeasurable = noise_floor > NOISE_CAP;
            let threshold = policy.threshold_pct.max(noise_floor.min(NOISE_CAP));
            let regressed = reg > threshold;
            let outcome = if !regressed {
                Outcome::Pass
            } else if policy.wall_clock && !hosts_comparable {
                Outcome::Info
            } else if unmeasurable {
                // The repeats spread so far that no delta in this metric
                // is credible on this host; surface it, don't gate on it.
                Outcome::Info
            } else {
                Outcome::Fail
            };
            let raw_change = if base == 0.0 {
                0.0
            } else {
                (cur - base) / base * 100.0
            };
            let threshold_src = if unmeasurable {
                " (noise-limited host: spread exceeds the gateable cap)"
            } else if threshold > policy.threshold_pct {
                " (noise floor)"
            } else {
                ""
            };
            checks.push(Check {
                subject: format!("{id} :: {metric}"),
                outcome,
                detail: format!(
                    "baseline {base:.3}, current {cur:.3} ({raw_change:+.1}%, {} — threshold {threshold:.1}%{threshold_src})",
                    if reg > 0.0 { "worse" } else { "better or equal" },
                ),
                experiment_id: Some(id.clone()),
                wall_clock: policy.wall_clock,
            });
        }
    }
    let new: Vec<&String> = current
        .metrics
        .keys()
        .filter(|id| !baseline.metrics.contains_key(*id))
        .collect();
    if !new.is_empty() {
        notes.push(format!(
            "{} new experiment(s) with no baseline: {}",
            new.len(),
            new.iter()
                .map(|id| id.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    for (name, &base_pass) in &baseline.verdicts {
        match current.verdicts.get(name) {
            None => checks.push(Check {
                subject: format!("verdict :: {name}"),
                outcome: Outcome::Fail,
                detail: "verdict present in baseline but missing from this run".into(),
                experiment_id: None,
                wall_clock: false,
            }),
            Some(&cur_pass) => checks.push(Check {
                subject: format!("verdict :: {name}"),
                outcome: if base_pass && !cur_pass {
                    Outcome::Fail
                } else {
                    Outcome::Pass
                },
                detail: format!("baseline {base_pass}, current {cur_pass}"),
                experiment_id: None,
                wall_clock: false,
            }),
        }
    }

    GateReport { checks, notes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{fixtures, Trajectory};

    fn baseline() -> ParsedTrajectory {
        fixtures::trajectory(vec![
            fixtures::experiment("a", 1000.0, 2_000_000.0),
            fixtures::experiment("b", 500.0, 1_000_000.0),
        ])
        .flatten()
    }

    #[test]
    fn threshold_math() {
        use Direction::*;
        // Throughput dropping is a regression; rising is an improvement.
        assert_eq!(regression_pct(100.0, 80.0, HigherIsBetter), 20.0);
        assert_eq!(regression_pct(100.0, 120.0, HigherIsBetter), -20.0);
        // Pauses rising is a regression.
        assert_eq!(regression_pct(100.0, 120.0, LowerIsBetter), 20.0);
        assert_eq!(regression_pct(100.0, 80.0, LowerIsBetter), -20.0);
        // Zero baselines cannot divide; any move is full-scale.
        assert_eq!(regression_pct(0.0, 5.0, LowerIsBetter), 100.0);
        assert_eq!(regression_pct(0.0, 5.0, HigherIsBetter), -100.0);
        assert_eq!(regression_pct(0.0, 0.0, LowerIsBetter), 0.0);
    }

    #[test]
    fn identical_runs_pass() {
        let report = compare(&baseline(), &baseline(), &default_policies());
        assert!(report.passed(), "{}", report.render());
        assert!(report.checks.iter().all(|c| c.outcome == Outcome::Pass));
    }

    #[test]
    fn synthetic_20pct_throughput_regression_fails_the_gate() {
        // The ISSUE acceptance fixture: drop one experiment's sweep
        // throughput 20% below baseline; the 10% threshold must fire.
        let mut current = fixtures::trajectory(vec![
            fixtures::experiment("a", 800.0, 2_000_000.0),
            fixtures::experiment("b", 500.0, 1_000_000.0),
        ])
        .flatten();
        current.host = baseline().host; // same host: wall-clock gates hard
        let report = compare(&baseline(), &current, &default_policies());
        assert!(!report.passed(), "{}", report.render());
        let failing: Vec<&Check> = report
            .checks
            .iter()
            .filter(|c| c.outcome == Outcome::Fail)
            .collect();
        assert_eq!(failing.len(), 1, "{}", report.render());
        assert_eq!(failing[0].subject, "wl-a/fast/w4/off/stock :: sweep_mib_s");
        assert!(
            failing[0].detail.contains("-20.0%"),
            "{}",
            failing[0].detail
        );
    }

    #[test]
    fn noise_floor_widens_wall_clock_thresholds() {
        // Same 20% sweep drop as the acceptance fixture, but this time
        // the run recorded that sweep rate only repeats to within 15% on
        // this host: 2× 15% = 30% effective threshold, so the drop is
        // indistinguishable from noise and must not fail.
        let mut noisy_base = fixtures::experiment("a", 1000.0, 2_000_000.0);
        noisy_base.metrics.sweep_noise_pct = 15.0;
        let baseline = fixtures::trajectory(vec![noisy_base]).flatten();
        let mut dropped = fixtures::experiment("a", 800.0, 2_000_000.0);
        dropped.metrics.sweep_noise_pct = 15.0;
        let current = fixtures::trajectory(vec![dropped]).flatten();
        let report = compare(&baseline, &current, &default_policies());
        assert!(report.passed(), "{}", report.render());
        // A drop beyond the widened threshold still fails.
        let mut collapsed = fixtures::experiment("a", 600.0, 2_000_000.0);
        collapsed.metrics.sweep_noise_pct = 15.0;
        let current = fixtures::trajectory(vec![collapsed]).flatten();
        let report = compare(&baseline, &current, &default_policies());
        assert!(!report.passed(), "{}", report.render());
        let fail = report
            .checks
            .iter()
            .find(|c| c.outcome == Outcome::Fail)
            .expect("one failure");
        assert!(fail.detail.contains("noise floor"), "{}", fail.detail);
    }

    #[test]
    fn hopelessly_noisy_metrics_report_info_instead_of_gating() {
        // Spread so wide the floor passes NOISE_CAP: a 60% drop can't be
        // distinguished from measurement noise, but it must not vanish —
        // it reports as informational, and the gate still passes.
        let mut noisy_base = fixtures::experiment("a", 1000.0, 2_000_000.0);
        noisy_base.metrics.sweep_noise_pct = 30.0; // 2x30 = 60 > cap
        let baseline = fixtures::trajectory(vec![noisy_base]).flatten();
        let mut dropped = fixtures::experiment("a", 400.0, 2_000_000.0);
        dropped.metrics.sweep_noise_pct = 30.0;
        let current = fixtures::trajectory(vec![dropped]).flatten();
        let report = compare(&baseline, &current, &default_policies());
        assert!(report.passed(), "{}", report.render());
        let info = report
            .checks
            .iter()
            .find(|c| c.outcome == Outcome::Info)
            .expect("one info check");
        assert!(info.subject.contains("sweep_mib_s"), "{}", info.subject);
        assert!(info.detail.contains("noise-limited"), "{}", info.detail);
    }

    #[test]
    fn wall_clock_regressions_downgrade_to_info_on_different_hosts() {
        let mut current = fixtures::trajectory(vec![
            fixtures::experiment("a", 800.0, 2_000_000.0),
            fixtures::experiment("b", 500.0, 1_000_000.0),
        ])
        .flatten();
        current.host.cores = 2; // CI runner, laptop baseline
        let report = compare(&baseline(), &current, &default_policies());
        assert!(report.passed(), "{}", report.render());
        assert!(report
            .checks
            .iter()
            .any(|c| c.outcome == Outcome::Info && c.subject.contains("sweep_mib_s")));
    }

    #[test]
    fn deterministic_regressions_gate_regardless_of_host() {
        let mut worse = fixtures::experiment("a", 1000.0, 2_000_000.0);
        worse.metrics.overhead_time = 1.09; // > 2% above the 1.05 baseline
        let mut current =
            fixtures::trajectory(vec![worse, fixtures::experiment("b", 500.0, 1_000_000.0)])
                .flatten();
        current.host.cores = 2;
        let report = compare(&baseline(), &current, &default_policies());
        assert!(!report.passed(), "{}", report.render());
    }

    #[test]
    fn missing_experiment_fails_same_mode_but_notes_cross_mode() {
        let mut current =
            fixtures::trajectory(vec![fixtures::experiment("a", 1000.0, 2_000_000.0)]).flatten();
        let report = compare(&baseline(), &current, &default_policies());
        assert!(!report.passed());
        current.mode = "full".into();
        let report = compare(&baseline(), &current, &default_policies());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn verdict_flips_fail() {
        let mut t = fixtures::trajectory(vec![fixtures::experiment("a", 1.0, 1.0)]);
        t.verdicts[0].pass = false;
        let current = t.flatten();
        let report = compare(&baseline(), &current, &default_policies());
        assert!(!report.passed());
        assert!(report
            .checks
            .iter()
            .any(|c| c.subject == "verdict :: fast_kernel" && c.outcome == Outcome::Fail));
    }

    #[test]
    fn gate_round_trips_through_disk_format() {
        // End-to-end fixture: render → parse → compare, as the CLI does.
        let base = fixtures::trajectory(vec![fixtures::experiment("a", 1000.0, 2_000_000.0)]);
        let parsed = Trajectory::parse(&base.to_json()).expect("parses");
        let report = compare(&parsed, &base.flatten(), &default_policies());
        assert!(report.passed(), "{}", report.render());
    }
}
