//! `cargo xtask results`: regenerates the committed `results/*.txt`
//! captures deterministically, and (with `--check`) fails when the
//! committed files have drifted from what the current code produces.
//!
//! Only the *model-driven* experiment binaries are covered — their output
//! is a pure function of (code, seed, scale), so a drift means someone
//! changed behaviour without regenerating the captures. Host-measured
//! binaries (`fig7`, `cache_effect`, `parallelism`, `ablations`,
//! `model_check`) print wall-clock sweep rates and are excluded: their
//! captures are illustrative snapshots, not gateable artefacts.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The experiment binaries whose stdout is deterministic, and therefore
/// drift-checked in CI. Each entry regenerates `results/<name>.txt`.
pub const DETERMINISTIC_RESULTS: &[&str] =
    &["table2", "fig5", "fig6", "fig8a", "fig8b", "fig9", "fig10"];

/// Environment variables that change experiment behaviour; scrubbed so a
/// developer's shell cannot skew the regenerated captures.
const SCRUBBED_ENV: &[&str] = &[
    "CHERIVOKE_KERNEL",
    "CHERIVOKE_FAST_KERNEL",
    "CHERIVOKE_SWEEP_WORKERS",
    "CHERIVOKE_FAULT_PLAN",
    "CHERIVOKE_BACKEND",
    "BENCH_MEASURED_PSWEEPER",
];

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("xtask lives at <repo>/crates/xtask")
}

/// Regenerates (or with `check`, verifies) every deterministic capture,
/// optionally restricted to one binary named by `only`.
///
/// # Errors
///
/// Returns a message listing the first failure: an unknown `only` name, a
/// binary that exited nonzero, or (in check mode) each drifted capture.
pub fn run(check: bool, only: Option<&str>) -> Result<(), String> {
    let names: Vec<&str> = match only {
        Some(name) => {
            if !DETERMINISTIC_RESULTS.contains(&name) {
                return Err(format!(
                    "'{name}' is not a deterministic result (choose from: {})",
                    DETERMINISTIC_RESULTS.join(", ")
                ));
            }
            vec![name]
        }
        None => DETERMINISTIC_RESULTS.to_vec(),
    };
    let root = repo_root();
    let mut drifted = Vec::new();
    for name in names {
        let output = capture(&root, name)?;
        let path = root.join("results").join(format!("{name}.txt"));
        let committed = std::fs::read_to_string(&path).unwrap_or_default();
        if output == committed {
            eprintln!("results: {name}.txt up to date");
            continue;
        }
        if check {
            eprintln!("results: {name}.txt DRIFTED from regenerated output");
            drifted.push(name);
        } else {
            std::fs::write(&path, &output).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("results: {name}.txt regenerated");
        }
    }
    if drifted.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "committed results diverge from regenerated output: {} — run `cargo xtask results` \
             and commit the refreshed captures",
            drifted
                .iter()
                .map(|n| format!("results/{n}.txt"))
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

/// Runs one experiment binary with a scrubbed environment and captures
/// its stdout.
fn capture(root: &Path, name: &str) -> Result<String, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(root).args([
        "run",
        "--release",
        "--locked",
        "-q",
        "-p",
        "bench",
        "--bin",
        name,
    ]);
    for var in SCRUBBED_ENV {
        cmd.env_remove(var);
    }
    let out = cmd
        .output()
        .map_err(|e| format!("spawn cargo run --bin {name}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{name} exited with {}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    String::from_utf8(out.stdout).map_err(|_| format!("{name} printed non-UTF-8 output"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_list_matches_committed_captures() {
        let results = repo_root().join("results");
        for name in DETERMINISTIC_RESULTS {
            assert!(
                results.join(format!("{name}.txt")).exists(),
                "results/{name}.txt is drift-checked but not committed"
            );
        }
    }

    #[test]
    fn unknown_only_target_is_rejected() {
        let err = run(true, Some("fig99")).unwrap_err();
        assert!(err.contains("not a deterministic result"), "{err}");
    }
}
