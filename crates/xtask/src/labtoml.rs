//! Parser for `lab.toml`, the scalability lab's declarative config: the
//! experiment matrices and the gate's per-metric thresholds.
//!
//! This is a deliberately minimal TOML subset (the workspace is hermetic;
//! there is no `toml` crate to lean on): `[section]` headers, `key =
//! value` pairs, values that are strings, integers, floats, booleans, or
//! flat arrays of those, and `#` comments. That covers the whole config —
//! anything fancier in the file is a parse error, not silently ignored.

use bench::lab::{LabMatrix, LabOptions};
use std::collections::BTreeMap;

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer (also accepted where floats are expected).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Int(i) => Some(*i as f64),
            TomlValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        match self {
            TomlValue::Int(i) => usize::try_from(*i).ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The whole lab config file.
#[derive(Debug, Default)]
pub struct LabFile {
    /// `section -> key -> value`.
    pub sections: BTreeMap<String, BTreeMap<String, TomlValue>>,
}

impl LabFile {
    /// Parses `lab.toml` text.
    ///
    /// # Errors
    ///
    /// Returns `line: message` for anything outside the supported subset.
    pub fn parse(text: &str) -> Result<LabFile, String> {
        let mut file = LabFile::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lab.toml line {}: {msg}", lineno + 1);
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| err("unclosed '['"))?;
                section = name.trim().to_string();
                file.sections.entry(section.clone()).or_default();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected 'key = value'"))?;
            let value = parse_value(value.trim()).map_err(|m| err(&m))?;
            file.sections
                .entry(section.clone())
                .or_default()
                .insert(key.trim().to_string(), value);
        }
        Ok(file)
    }

    fn get(&self, section: &str, key: &str) -> Option<&TomlValue> {
        self.sections.get(section)?.get(key)
    }

    /// The `[thresholds]` section as `metric -> percent`.
    ///
    /// # Errors
    ///
    /// Returns a message for non-numeric thresholds.
    pub fn thresholds(&self) -> Result<BTreeMap<String, f64>, String> {
        let mut out = BTreeMap::new();
        if let Some(entries) = self.sections.get("thresholds") {
            for (metric, value) in entries {
                let pct = value
                    .as_f64()
                    .ok_or_else(|| format!("threshold '{metric}' is not a number"))?;
                if pct < 0.0 {
                    return Err(format!("threshold '{metric}' is negative"));
                }
                out.insert(metric.clone(), pct);
            }
        }
        Ok(out)
    }

    /// The matrix declared in `[matrix.<mode>]`, overlaid on `defaults`
    /// (axes absent from the file keep the default).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed axis values.
    pub fn matrix(&self, mode: &str, defaults: LabMatrix) -> Result<LabMatrix, String> {
        let section = format!("matrix.{mode}");
        let mut matrix = defaults;
        if let Some(v) = self.get(&section, "workloads") {
            matrix.workloads = string_axis(v, "workloads")?;
        }
        if let Some(v) = self.get(&section, "kernels") {
            matrix.kernels = string_axis(v, "kernels")?;
        }
        if let Some(v) = self.get(&section, "fault_plans") {
            matrix.fault_plans = string_axis(v, "fault_plans")?;
        }
        if let Some(v) = self.get(&section, "backends") {
            matrix.backends = string_axis(v, "backends")?;
        }
        if let Some(v) = self.get(&section, "sweep_workers") {
            let TomlValue::Array(items) = v else {
                return Err("sweep_workers must be an array".into());
            };
            matrix.sweep_workers = items
                .iter()
                .map(|i| i.as_usize().ok_or("sweep_workers entries must be integers"))
                .collect::<Result<_, _>>()?;
        }
        Ok(matrix)
    }

    /// The `[matrix.fleet]` grid: the cross product of `tenants` ×
    /// `skew` × `workers`, each cell one fleet experiment
    /// ([`bench::fleet::run_fleet_cell`]), in deterministic order
    /// (tenants-major, workers-minor). An absent section means no fleet
    /// cells; a present section must declare all three axes.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing axis or malformed entries.
    pub fn fleet_grid(&self) -> Result<Vec<(usize, f64, usize)>, String> {
        let Some(section) = self.sections.get("matrix.fleet") else {
            return Ok(Vec::new());
        };
        let axis = |key: &str| -> Result<&TomlValue, String> {
            section
                .get(key)
                .ok_or_else(|| format!("[matrix.fleet] is missing the '{key}' axis"))
        };
        let usizes = |key: &str| -> Result<Vec<usize>, String> {
            let TomlValue::Array(items) = axis(key)? else {
                return Err(format!("[matrix.fleet] {key} must be an array"));
            };
            items
                .iter()
                .map(|i| {
                    i.as_usize()
                        .ok_or_else(|| format!("[matrix.fleet] {key} entries must be integers"))
                })
                .collect()
        };
        let TomlValue::Array(skews) = axis("skew")? else {
            return Err("[matrix.fleet] skew must be an array".into());
        };
        let skews: Vec<f64> = skews
            .iter()
            .map(|i| {
                i.as_f64()
                    .ok_or_else(|| "[matrix.fleet] skew entries must be numbers".to_string())
            })
            .collect::<Result<_, _>>()?;
        let tenants = usizes("tenants")?;
        let workers = usizes("workers")?;
        let mut cells = Vec::new();
        for &t in &tenants {
            for &s in &skews {
                for &w in &workers {
                    cells.push((t, s, w));
                }
            }
        }
        Ok(cells)
    }

    /// `[lab]` sizing overrides on top of `defaults`.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed values.
    pub fn options(&self, defaults: LabOptions) -> Result<LabOptions, String> {
        let mut opts = defaults;
        let num = |key: &str| -> Result<Option<f64>, String> {
            match self.get("lab", key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("[lab] {key} must be a number")),
            }
        };
        if let Some(v) = num("seed")? {
            opts.seed = v as u64;
        }
        if let Some(v) = num("image_mib")? {
            opts.image_mib = v as u64;
        }
        if let Some(v) = num("service_ops_per_thread")? {
            opts.service_ops_per_thread = v as u64;
        }
        if let Some(v) = num("service_shard_mib")? {
            opts.service_shard_mib = v as u64;
        }
        if let Some(v) = num("measure_repeats")? {
            if v < 1.0 {
                return Err("[lab] measure_repeats must be at least 1".into());
            }
            opts.measure_repeats = v as usize;
        }
        if let Some(v) = num("trace_scale_denominator")? {
            if v <= 0.0 {
                return Err("[lab] trace_scale_denominator must be positive".into());
            }
            opts.trace_scale = 1.0 / v;
        }
        Ok(opts)
    }
}

fn strip_comment(line: &str) -> &str {
    // '#' inside a quoted string is content, not a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn string_axis(value: &TomlValue, name: &str) -> Result<Vec<String>, String> {
    let TomlValue::Array(items) = value else {
        return Err(format!("{name} must be an array"));
    };
    items
        .iter()
        .map(|i| {
            i.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{name} entries must be strings"))
        })
        .collect()
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unclosed array".to_string())?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| "unclosed string".to_string())?;
        if inner.contains('"') {
            return Err("embedded quotes are not supported".to_string());
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    Err(format!("unsupported value '{text}'"))
}

/// Splits on commas (arrays here are flat, so no nesting to respect, but
/// strings may contain commas).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# the lab config
[lab]
seed = 7
service_ops_per_thread = 5000

[matrix.smoke]
workloads = ["omnetpp"]  # one workload only
kernels = ["reference", "fast"]
sweep_workers = [1, 2]
fault_plans = ["off", "chaos-smoke"]
backends = ["stock", "hierarchical"]

[matrix.fleet]
tenants = [8, 128]
skew = [0.0, 1.2]
workers = [2]

[thresholds]
sweep_mib_s = 25.0
overhead_time = 1
"#;

    #[test]
    fn parses_sections_values_and_comments() {
        let file = LabFile::parse(SAMPLE).expect("parses");
        let thresholds = file.thresholds().expect("thresholds");
        assert_eq!(thresholds["sweep_mib_s"], 25.0);
        assert_eq!(thresholds["overhead_time"], 1.0);

        let matrix = file.matrix("smoke", LabMatrix::smoke()).expect("matrix");
        assert_eq!(matrix.workloads, vec!["omnetpp"]);
        assert_eq!(matrix.kernels, vec!["reference", "fast"]);
        assert_eq!(matrix.sweep_workers, vec![1, 2]);
        assert_eq!(matrix.fault_plans, vec!["off", "chaos-smoke"]);
        assert_eq!(matrix.backends, vec!["stock", "hierarchical"]);
        // Absent mode falls through to defaults.
        let full = file.matrix("full", LabMatrix::full()).expect("full");
        assert_eq!(full.sweep_workers, LabMatrix::full().sweep_workers);
        assert_eq!(full.backends, LabMatrix::full().backends);

        let opts = file.options(LabOptions::smoke()).expect("options");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.service_ops_per_thread, 5000);
        assert_eq!(opts.image_mib, LabOptions::smoke().image_mib);

        let cells = file.fleet_grid().expect("fleet grid");
        assert_eq!(
            cells,
            vec![(8, 0.0, 2), (8, 1.2, 2), (128, 0.0, 2), (128, 1.2, 2)]
        );
    }

    #[test]
    fn fleet_grid_is_optional_but_strict_when_present() {
        assert_eq!(LabFile::parse("").unwrap().fleet_grid().unwrap(), vec![]);
        let missing = LabFile::parse("[matrix.fleet]\ntenants = [8]\nskew = [1.0]").unwrap();
        let err = missing.fleet_grid().unwrap_err();
        assert!(err.contains("workers"), "{err}");
        let bad = LabFile::parse("[matrix.fleet]\ntenants = [\"x\"]\nskew = [1.0]\nworkers = [2]")
            .unwrap();
        assert!(bad.fleet_grid().is_err());
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(LabFile::parse("key value").is_err());
        assert!(LabFile::parse("[unclosed").is_err());
        assert!(LabFile::parse("x = [1, 2").is_err());
        assert!(LabFile::parse("x = 'single'").is_err());
        let bad = LabFile::parse("[thresholds]\nx = \"fast\"").unwrap();
        assert!(bad.thresholds().is_err());
    }

    #[test]
    fn strings_protect_delimiters() {
        let file = LabFile::parse("[s]\nx = [\"a,b\", \"c#d\"]").expect("parses");
        let TomlValue::Array(items) = &file.sections["s"]["x"] else {
            panic!("array");
        };
        assert_eq!(items[0], TomlValue::Str("a,b".into()));
        assert_eq!(items[1], TomlValue::Str("c#d".into()));
    }
}
