//! Repo automation (`cargo xtask …`), in the cargo-xtask idiom: plain
//! Rust instead of CI-embedded shell/Python, so every CI verdict can be
//! reproduced locally with the same command CI runs.
//!
//! Subcommands:
//!
//! * `cargo xtask lab` — the scalability lab (DESIGN.md §16): runs the
//!   declared experiment matrix in-process, writes `BENCH_trajectory.json`
//!   at the repo root, and with `--gate` diffs it against the committed
//!   baseline, failing on regression beyond the per-metric thresholds in
//!   `lab.toml`.
//! * `cargo xtask results` — regenerates the deterministic
//!   `results/*.txt` captures; `--check` fails on drift.

mod gate;
mod labtoml;
mod results;
mod trajectory;

use bench::fleet::{run_fleet_cell, FleetParams};
use bench::lab::{run_experiment, ExperimentConfig, LabMatrix, LabOptions};
use bench::service::{churn, ChurnParams};
use gate::{compare, default_policies};
use labtoml::LabFile;
use std::path::PathBuf;
use trajectory::{HostFingerprint, Trajectory, SCHEMA_VERSION};

const USAGE: &str = "\
usage: cargo xtask <subcommand>

  lab [--smoke|--full] [--gate] [--list] [--out PATH] [--baseline PATH]
      [--config PATH] [--metrics-out PATH]
      Run the scalability-lab experiment matrix and write BENCH_trajectory.json.
        --smoke        CI-sized matrix and sizing (the default)
        --full         full characterisation matrix
        --gate         diff against the baseline trajectory; exit 1 on regression
        --list         print the expanded experiment matrix and exit
        --out PATH     trajectory output (default: <repo>/BENCH_trajectory.json)
        --baseline PATH  baseline to gate against (default: the committed --out file)
        --config PATH  lab config (default: <repo>/lab.toml)
        --metrics-out PATH  write the telemetry churn's metrics snapshot JSON

  results [--check] [--only NAME]
      Regenerate the deterministic results/*.txt captures.
        --check        fail if committed captures drift from regenerated output
        --only NAME    restrict to one capture
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lab") => lab(&args[1..]),
        Some("results") => results_cmd(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!(
            "unknown subcommand {:?}\n\n{USAGE}",
            other.unwrap_or("<none>")
        )),
    };
    if let Err(message) = code {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

struct Flags {
    switches: Vec<String>,
    values: std::collections::BTreeMap<String, String>,
}

/// Splits `args` into boolean switches and `--key VALUE` pairs.
fn parse_flags(args: &[String], value_flags: &[&str]) -> Result<Flags, String> {
    let mut flags = Flags {
        switches: Vec::new(),
        values: std::collections::BTreeMap::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if value_flags.contains(&arg.as_str()) {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{arg} requires a value"))?;
            flags.values.insert(arg.clone(), value.clone());
            i += 2;
        } else if arg.starts_with("--") {
            flags.switches.push(arg.clone());
            i += 1;
        } else {
            return Err(format!("unexpected argument '{arg}'\n\n{USAGE}"));
        }
    }
    Ok(flags)
}

fn lab(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--out", "--baseline", "--config", "--metrics-out"])?;
    for s in &flags.switches {
        if !["--smoke", "--full", "--gate", "--list"].contains(&s.as_str()) {
            return Err(format!("unknown flag '{s}'\n\n{USAGE}"));
        }
    }
    let full = flags.switches.iter().any(|s| s == "--full");
    if full && flags.switches.iter().any(|s| s == "--smoke") {
        return Err("--smoke and --full are mutually exclusive".into());
    }
    let mode = if full { "full" } else { "smoke" };
    let root = results::repo_root();

    // Config: lab.toml declares the matrices and thresholds.
    let config_path = flags
        .values
        .get("--config")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lab.toml"));
    let lab_file = match std::fs::read_to_string(&config_path) {
        Ok(text) => LabFile::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "lab: no config at {} — using built-in defaults",
                config_path.display()
            );
            LabFile::default()
        }
        Err(e) => return Err(format!("read {}: {e}", config_path.display())),
    };
    let defaults = if full {
        (LabMatrix::full(), LabOptions::full())
    } else {
        (LabMatrix::smoke(), LabOptions::smoke())
    };
    let matrix = lab_file.matrix(mode, defaults.0)?;
    let opts = lab_file.options(defaults.1)?;
    let experiments = matrix.expand();
    let fleet_cells = fleet_params(mode, &lab_file.fleet_grid()?, &opts);

    if flags.switches.iter().any(|s| s == "--list") {
        println!(
            "lab matrix ({mode}): {} experiments + {} fleet cells",
            experiments.len(),
            fleet_cells.len()
        );
        for config in &experiments {
            println!("  {}", config.id());
        }
        for cell in &fleet_cells {
            println!("  {}", cell.id());
        }
        return Ok(());
    }

    let out_path = flags
        .values
        .get("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("BENCH_trajectory.json"));
    let baseline_path = flags
        .values
        .get("--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| out_path.clone());
    // Read the baseline *before* the run overwrites the file.
    let baseline_text = std::fs::read_to_string(&baseline_path).ok();

    let trajectory = run_lab(
        mode,
        &experiments,
        &fleet_cells,
        &opts,
        flags.values.get("--metrics-out"),
    )?;
    std::fs::write(&out_path, trajectory.to_json())
        .map_err(|e| format!("write {}: {e}", out_path.display()))?;
    eprintln!(
        "lab: trajectory ({} experiments, {} verdicts) written to {}",
        trajectory.experiments.len(),
        trajectory.verdicts.len(),
        out_path.display()
    );

    if !flags.switches.iter().any(|s| s == "--gate") {
        return Ok(());
    }
    let Some(baseline_text) = baseline_text else {
        eprintln!(
            "gate: no baseline at {} — nothing to diff against; the trajectory just written \
             becomes the baseline once committed",
            baseline_path.display()
        );
        return Ok(());
    };
    let baseline = Trajectory::parse(&baseline_text)
        .map_err(|e| format!("baseline {}: {e}", baseline_path.display()))?;
    let mut policies = default_policies();
    for (metric, pct) in lab_file.thresholds()? {
        if let Some(policy) = policies.get_mut(&metric) {
            policy.threshold_pct = pct;
        } else {
            return Err(format!(
                "lab.toml [thresholds] names unknown metric '{metric}' (gated metrics: {})",
                policies.keys().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    let mut trajectory = trajectory;
    let mut report = compare(&baseline, &trajectory.flatten(), &policies);
    // A failing wall-clock comparison on a shared host may just be a bad
    // measurement window: confirm by re-measuring the implicated
    // experiments before believing it. Deterministic failures are final
    // and never retried.
    const GATE_RETRIES: usize = 2;
    for attempt in 1..=GATE_RETRIES {
        if report.passed() {
            break;
        }
        let ids = report.retryable_experiments();
        if ids.is_empty() {
            break;
        }
        eprintln!(
            "gate: re-measuring {} experiment(s) to confirm wall-clock regression \
             (attempt {attempt}/{GATE_RETRIES}): {}",
            ids.len(),
            ids.join(", ")
        );
        for id in &ids {
            if let Some(pos) = trajectory.experiments.iter().position(|e| &e.id == id) {
                let fresh = run_experiment(&trajectory.experiments[pos].config.clone(), &opts)?;
                trajectory.experiments[pos]
                    .metrics
                    .merge_best(&fresh.metrics);
            } else if let Some(pos) = trajectory.fleet.iter().position(|e| &e.id == id) {
                let fresh = run_fleet_cell(&trajectory.fleet[pos].config.clone())?;
                trajectory.fleet[pos].metrics.merge_best(&fresh.metrics);
            }
        }
        std::fs::write(&out_path, trajectory.to_json())
            .map_err(|e| format!("write {}: {e}", out_path.display()))?;
        report = compare(&baseline, &trajectory.flatten(), &policies);
    }
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err("perf gate failed (see FAIL lines above)".into())
    }
}

/// Sizes the `[matrix.fleet]` grid cells for the run: the lab seed flows
/// through, and the full mode drives each cell harder.
fn fleet_params(mode: &str, cells: &[(usize, f64, usize)], opts: &LabOptions) -> Vec<FleetParams> {
    cells
        .iter()
        .map(|&(tenants, skew, workers)| {
            let mut params = FleetParams::smoke(tenants, skew, workers);
            params.seed = opts.seed;
            if mode == "full" {
                params.ops_per_thread = 25_000;
                params.measure_repeats = opts.measure_repeats.max(1);
            }
            params
        })
        .collect()
}

/// Runs the matrix plus the acceptance-bar verdicts and assembles the
/// trajectory.
fn run_lab(
    mode: &str,
    experiments: &[ExperimentConfig],
    fleet_cells: &[FleetParams],
    opts: &LabOptions,
    metrics_out: Option<&String>,
) -> Result<Trajectory, String> {
    let total = experiments.len();
    let mut results = Vec::with_capacity(total);
    for (i, config) in experiments.iter().enumerate() {
        eprintln!("lab: [{}/{total}] {}", i + 1, config.id());
        results.push(run_experiment(config, opts)?);
    }

    let mut fleet = Vec::with_capacity(fleet_cells.len());
    for (i, params) in fleet_cells.iter().enumerate() {
        eprintln!(
            "lab: [fleet {}/{}] {}",
            i + 1,
            fleet_cells.len(),
            params.id()
        );
        fleet.push(run_fleet_cell(params)?);
    }

    // The acceptance bars CI used to compute with inline Python over
    // bench stdout, now in-process (bench::verdicts).
    eprintln!(
        "lab: verdicts (fast kernel, simd kernel, sweep avoidance, telemetry, faults, journal, \
         recovery, snapshot)"
    );
    let mut verdicts = vec![
        bench::verdicts::fast_kernel_verdict(),
        bench::verdicts::simd_kernel_verdict(),
        bench::verdicts::backend_sweep_avoidance_verdict(),
    ];
    let record_iters = if mode == "full" {
        50_000_000
    } else {
        10_000_000
    };
    verdicts.push(bench::verdicts::telemetry_disabled_verdict(record_iters));
    let op_ns = bench::verdicts::service_op_ns(40_000);
    verdicts.push(bench::verdicts::fault_overhead_verdict(record_iters, op_ns));
    // Crash-recovery bars: the journal must be ~free on the service hot
    // path, and the full soft-crash matrix must recover safely.
    verdicts.push(bench::verdicts::journal_overhead_verdict(40_000));
    verdicts.push(bench::verdicts::recovery_safety_verdict());
    // Telemetry-enabled churn: proves the instrumented path records real
    // traffic (the old telemetry-smoke CI job's Python assertions).
    let (_, snapshot) = churn(&ChurnParams {
        telemetry: true,
        ops_per_thread: opts.service_ops_per_thread,
        shard_mib: opts.service_shard_mib,
        ..ChurnParams::default()
    });
    let snapshot = snapshot.expect("telemetry churn returns a snapshot");
    verdicts.push(bench::verdicts::telemetry_snapshot_verdict(&snapshot));
    if !fleet.is_empty() {
        verdicts.push(bench::fleet::fleet_fairness_verdict(&fleet));
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("lab: metrics snapshot written to {path}");
    }
    for v in &verdicts {
        eprintln!("lab: verdict {}: {} ({})", v.name, v.status(), v.detail);
    }

    Ok(Trajectory {
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        host: HostFingerprint::current(),
        experiments: results,
        fleet,
        verdicts,
    })
}

fn results_cmd(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--only"])?;
    for s in &flags.switches {
        if s != "--check" {
            return Err(format!("unknown flag '{s}'\n\n{USAGE}"));
        }
    }
    results::run(
        flags.switches.iter().any(|s| s == "--check"),
        flags.values.get("--only").map(String::as_str),
    )
}
