//! The `BENCH_trajectory.json` schema: one machine-readable record of a
//! lab run, written at the repo root and committed, so every PR diffs its
//! perf against the previous trajectory instead of ad-hoc per-PR verdicts.
//!
//! Serialisation uses the workspace `serde` derive; parsing walks the
//! shim `serde_json` [`Value`] tree (the shim has no typed deserialiser).
//! [`Trajectory::parse`] is therefore the schema's compatibility surface:
//! it accepts any JSON carrying `schema_version`, `mode`, `host`,
//! `experiments[].{id,metrics}` and `verdicts[]`, ignoring unknown keys,
//! so old baselines keep parsing as the schema grows.
//!
//! Deliberately **no timestamps**: a re-run on the same host+commit must
//! produce a byte-identical file for the deterministic metrics, so the
//! committed trajectory only changes when the performance does.

use bench::fleet::FleetResult;
use bench::lab::ExperimentResult;
use bench::verdicts::Verdict;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// Current schema version (bump on breaking field changes).
pub const SCHEMA_VERSION: u64 = 1;

/// Machine identity attached to every trajectory, so the gate can tell
/// "same hardware, got slower" from "different runner".
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HostFingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism when the lab ran.
    pub cores: usize,
    /// `rustc --version` output (or `unknown`).
    pub rustc: String,
}

impl HostFingerprint {
    /// Fingerprints the current process's host.
    pub fn current() -> HostFingerprint {
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        HostFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            rustc,
        }
    }

    /// Whether wall-clock measurements from `other` are comparable to
    /// ones taken here: same OS, architecture and core count. (The rustc
    /// version is recorded but not part of comparability — a compiler
    /// upgrade changing performance is exactly what the gate should see.)
    pub fn comparable_to(&self, other: &HostFingerprint) -> bool {
        self.os == other.os && self.arch == other.arch && self.cores == other.cores
    }
}

/// A full lab run: the file `cargo xtask lab` writes.
#[derive(Debug, Serialize)]
pub struct Trajectory {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// `smoke` or `full`.
    pub mode: String,
    /// Where the run happened.
    pub host: HostFingerprint,
    /// Per-experiment records, in matrix order.
    pub experiments: Vec<ExperimentResult>,
    /// Fleet-cell records (`[matrix.fleet]`), in grid order. Empty when
    /// the run had no fleet grid; old baselines without the field still
    /// parse (the gate then treats fleet ids as new experiments).
    pub fleet: Vec<FleetResult>,
    /// The acceptance-bar verdicts ([`bench::verdicts`]).
    pub verdicts: Vec<Verdict>,
}

/// A parsed (possibly older) trajectory: experiment metrics flattened to
/// `id -> metric -> value`, plus verdict pass flags. This is everything
/// the gate needs from a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrajectory {
    /// Schema version the file declared.
    pub schema_version: u64,
    /// `smoke` or `full`.
    pub mode: String,
    /// Host the baseline was recorded on.
    pub host: HostFingerprint,
    /// `experiment id -> metric name -> value` (numeric metrics only;
    /// booleans are folded to 0.0 / 1.0).
    pub metrics: BTreeMap<String, BTreeMap<String, f64>>,
    /// `verdict name -> pass`.
    pub verdicts: BTreeMap<String, bool>,
}

impl Trajectory {
    /// Renders the canonical pretty-printed JSON (what gets committed).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("serialise trajectory");
        s.push('\n');
        s
    }

    /// Flattens this run into the gate's comparison form — the same shape
    /// [`Trajectory::parse`] produces, so "current run vs parsed
    /// baseline" and "parsed current vs parsed baseline" are identical.
    pub fn flatten(&self) -> ParsedTrajectory {
        parse(&serde_json::from_str(&self.to_json()).expect("own rendering parses"))
            .expect("own rendering matches schema")
    }

    /// Parses trajectory JSON text into the gate's comparison form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn parse(text: &str) -> Result<ParsedTrajectory, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        parse(&value)
    }
}

fn parse(value: &Value) -> Result<ParsedTrajectory, String> {
    let schema_version = value
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing schema_version")?;
    if schema_version > SCHEMA_VERSION {
        return Err(format!(
            "trajectory schema v{schema_version} is newer than this xtask (v{SCHEMA_VERSION}); \
             rebuild xtask or regenerate the baseline"
        ));
    }
    let mode = value
        .get("mode")
        .and_then(Value::as_str)
        .ok_or("missing mode")?
        .to_string();
    let host = value.get("host").ok_or("missing host")?;
    let host = HostFingerprint {
        os: str_field(host, "os")?,
        arch: str_field(host, "arch")?,
        cores: host
            .get("cores")
            .and_then(Value::as_u64)
            .ok_or("missing host.cores")? as usize,
        rustc: str_field(host, "rustc")?,
    };

    let mut metrics = BTreeMap::new();
    for exp in value
        .get("experiments")
        .and_then(Value::as_array)
        .ok_or("missing experiments")?
    {
        let id = str_field(exp, "id")?;
        let mut row = BTreeMap::new();
        for (name, metric) in exp
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("experiment {id}: missing metrics"))?
        {
            let folded = match metric {
                Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
                other => other.as_f64(),
            };
            if let Some(v) = folded {
                row.insert(name.clone(), v);
            }
        }
        if metrics.insert(id.clone(), row).is_some() {
            return Err(format!("duplicate experiment id '{id}'"));
        }
    }

    // Fleet cells are optional (the field postdates schema v1 baselines)
    // and flatten into the same id -> metric map the gate diffs.
    if let Some(cells) = value.get("fleet").and_then(Value::as_array) {
        for cell in cells {
            let id = str_field(cell, "id")?;
            let mut row = BTreeMap::new();
            for (name, metric) in cell
                .get("metrics")
                .and_then(Value::as_object)
                .ok_or_else(|| format!("fleet cell {id}: missing metrics"))?
            {
                let folded = match metric {
                    Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
                    other => other.as_f64(),
                };
                if let Some(v) = folded {
                    row.insert(name.clone(), v);
                }
            }
            if metrics.insert(id.clone(), row).is_some() {
                return Err(format!("duplicate experiment id '{id}'"));
            }
        }
    }

    let mut verdicts = BTreeMap::new();
    for v in value
        .get("verdicts")
        .and_then(Value::as_array)
        .ok_or("missing verdicts")?
    {
        let name = str_field(v, "name")?;
        let pass = v
            .get("pass")
            .and_then(Value::as_bool)
            .ok_or_else(|| format!("verdict {name}: missing pass"))?;
        verdicts.insert(name, pass);
    }

    Ok(ParsedTrajectory {
        schema_version,
        mode,
        host,
        metrics,
        verdicts,
    })
}

fn str_field(value: &Value, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing field '{key}'"))
}

#[cfg(test)]
pub(crate) mod fixtures {
    use bench::fleet::{FleetMetrics, FleetParams, FleetResult};
    use bench::lab::{ExperimentConfig, ExperimentMetrics, ExperimentResult};

    /// A fixture fleet cell with round metric values.
    pub fn fleet_cell(tenants: usize, ops: f64, bounded: bool) -> FleetResult {
        let config = FleetParams {
            ops_per_thread: 1_000,
            driver_threads: 2,
            measure_repeats: 1,
            ..FleetParams::smoke(tenants, 1.2, 4)
        };
        FleetResult {
            id: config.id(),
            config,
            metrics: FleetMetrics {
                fleet_ops_per_sec: ops,
                fleet_p99_pause_us: 800.0,
                tenant_budget_bounded: bounded,
                max_budget_fraction: 0.9,
                steals: 5,
                epochs: 20,
                throttled: 3,
                emergency_sweeps: 1,
                fleet_noise_pct: 0.0,
            },
        }
    }

    /// A fixture experiment with round metric values the gate tests can
    /// perturb.
    pub fn experiment(id_suffix: &str, sweep: f64, ops: f64) -> ExperimentResult {
        let config = ExperimentConfig {
            workload: format!("wl-{id_suffix}"),
            kernel: "fast".into(),
            sweep_workers: 4,
            fault_plan: "off".into(),
            backend: "stock".into(),
        };
        ExperimentResult {
            id: config.id(),
            config,
            metrics: ExperimentMetrics {
                sweep_mib_s: sweep,
                service_ops_per_sec: ops,
                p50_pause_us: 40.0,
                p99_pause_us: 400.0,
                overhead_time: 1.05,
                overhead_memory: 1.2,
                swept_fraction: 0.25,
                service_epochs: 12,
                quarantine_bounded: true,
                // Perfectly repeatable fixture: gate tests exercise the
                // configured thresholds, not the noise floor.
                sweep_noise_pct: 0.0,
                service_noise_pct: 0.0,
            },
        }
    }

    pub fn trajectory(experiments: Vec<ExperimentResult>) -> super::Trajectory {
        super::Trajectory {
            schema_version: super::SCHEMA_VERSION,
            mode: "smoke".into(),
            host: super::HostFingerprint {
                os: "linux".into(),
                arch: "x86_64".into(),
                cores: 8,
                rustc: "rustc 1.0.0-fixture".into(),
            },
            experiments,
            fleet: Vec::new(),
            verdicts: vec![bench::verdicts::Verdict {
                name: "fast_kernel".into(),
                pass: true,
                value: 4.5,
                target: 3.0,
                detail: "fixture".into(),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_round_trips_through_json() {
        let t = fixtures::trajectory(vec![
            fixtures::experiment("a", 1000.0, 2_000_000.0),
            fixtures::experiment("b", 500.0, 1_000_000.0),
        ]);
        let rendered = t.to_json();
        let parsed = Trajectory::parse(&rendered).expect("parses");
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.mode, "smoke");
        assert_eq!(parsed.host, t.host);
        assert_eq!(parsed.metrics.len(), 2);
        let a = &parsed.metrics["wl-a/fast/w4/off/stock"];
        assert_eq!(a["sweep_mib_s"], 1000.0);
        assert_eq!(a["service_ops_per_sec"], 2_000_000.0);
        assert_eq!(a["overhead_time"], 1.05);
        assert_eq!(a["swept_fraction"], 0.25);
        assert_eq!(a["quarantine_bounded"], 1.0);
        assert!(parsed.verdicts["fast_kernel"]);
        // flatten() is the same projection.
        assert_eq!(t.flatten(), parsed);
    }

    #[test]
    fn fleet_cells_flatten_into_the_metric_map() {
        let mut t = fixtures::trajectory(vec![fixtures::experiment("a", 1000.0, 2_000_000.0)]);
        t.fleet.push(fixtures::fleet_cell(128, 500_000.0, true));
        let parsed = Trajectory::parse(&t.to_json()).expect("parses");
        let cell = &parsed.metrics["fleet/t128/s1.2/w4"];
        assert_eq!(cell["fleet_ops_per_sec"], 500_000.0);
        assert_eq!(cell["fleet_p99_pause_us"], 800.0);
        assert_eq!(cell["tenant_budget_bounded"], 1.0);
        assert_eq!(cell["steals"], 5.0);
        assert_eq!(t.flatten(), parsed);
        // Baselines predating the field parse as before.
        let without = fixtures::trajectory(vec![]).to_json();
        assert!(Trajectory::parse(&without).is_ok());
    }

    #[test]
    fn parse_ignores_unknown_fields_but_rejects_missing_ones() {
        let t = fixtures::trajectory(vec![fixtures::experiment("a", 1.0, 2.0)]);
        let with_extra = t.to_json().replacen(
            "\"schema_version\"",
            "\"future_field\": {\"x\": 1},\n  \"schema_version\"",
            1,
        );
        assert!(Trajectory::parse(&with_extra).is_ok());
        assert!(Trajectory::parse("{}")
            .unwrap_err()
            .contains("schema_version"));
        assert!(Trajectory::parse("not json").is_err());
    }

    #[test]
    fn newer_schema_versions_are_refused() {
        let t = fixtures::trajectory(vec![]);
        let bumped = t
            .to_json()
            .replacen("\"schema_version\": 1", "\"schema_version\": 999", 1);
        let err = Trajectory::parse(&bumped).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn host_comparability_is_os_arch_cores() {
        let a = HostFingerprint {
            os: "linux".into(),
            arch: "x86_64".into(),
            cores: 8,
            rustc: "rustc 1.80".into(),
        };
        let mut b = a.clone();
        b.rustc = "rustc 1.85".into();
        assert!(a.comparable_to(&b));
        b.cores = 2;
        assert!(!a.comparable_to(&b));
    }
}
