//! Property tests for the CPU model: arbitrary instruction streams never
//! panic, traps are precise, and capability monotonicity holds at the ISA
//! level.

use cheri::{Capability, Perms};
use cheriisa::{Cpu, Insn, Reg, XReg};
use proptest::prelude::*;
use tagmem::{AddressSpace, SegmentKind};

const HEAP: u64 = 0x1000_0000;
const LEN: u64 = 1 << 14;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..34).prop_map(Reg) // includes out-of-range names on purpose
}

fn any_xreg() -> impl Strategy<Value = XReg> {
    (0u8..32).prop_map(XReg)
}

fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (any_xreg(), any_reg()).prop_map(|(xd, cs)| Insn::CGetBase { xd, cs }),
        (any_xreg(), any_reg()).prop_map(|(xd, cs)| Insn::CGetLen { xd, cs }),
        (any_xreg(), any_reg()).prop_map(|(xd, cs)| Insn::CGetTag { xd, cs }),
        (any_xreg(), any_reg()).prop_map(|(xd, cs)| Insn::CGetAddr { xd, cs }),
        (any_reg(), any_reg()).prop_map(|(cd, cs)| Insn::CMove { cd, cs }),
        (any_reg(), any_reg(), any_xreg()).prop_map(|(cd, cs, xs)| Insn::CSetAddr { cd, cs, xs }),
        (any_reg(), any_reg(), -(1i64 << 20)..(1i64 << 20))
            .prop_map(|(cd, cs, imm)| Insn::CIncOffset { cd, cs, imm }),
        (any_reg(), any_reg(), HEAP..HEAP + LEN, 0u64..512)
            .prop_map(|(cd, cs, base, len)| Insn::CSetBounds { cd, cs, base, len }),
        (any_reg(), any_reg(), any::<u16>()).prop_map(|(cd, cs, mask)| Insn::CAndPerm {
            cd,
            cs,
            mask
        }),
        (any_reg(), any_reg()).prop_map(|(cd, cs)| Insn::CClearTag { cd, cs }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(cd, ca, cs)| Insn::CBuildCap { cd, ca, cs }),
        (any_reg(), any_reg(), 0u64..(2 * LEN)).prop_map(|(cd, cbase, offset)| Insn::Clc {
            cd,
            cbase,
            offset: offset & !15
        }),
        (any_reg(), any_reg(), 0u64..(2 * LEN)).prop_map(|(cs, cbase, offset)| Insn::Csc {
            cs,
            cbase,
            offset: offset & !15
        }),
        (any_xreg(), any_reg(), 0u64..(2 * LEN)).prop_map(|(xd, cbase, offset)| Insn::Ld {
            xd,
            cbase,
            offset
        }),
        (any_xreg(), any_reg(), 0u64..(2 * LEN)).prop_map(|(xs, cbase, offset)| Insn::Sd {
            xs,
            cbase,
            offset
        }),
        (any_xreg(), any_reg(), 0u64..(2 * LEN)).prop_map(|(xd, cbase, offset)| Insn::CLoadTags {
            xd,
            cbase,
            offset
        }),
        (any_xreg(), any::<u64>()).prop_map(|(xd, imm)| Insn::Li { xd, imm }),
        (any_xreg(), any_xreg(), any_xreg()).prop_map(|(xd, xa, xb)| Insn::Add { xd, xa, xb }),
        (any_xreg(), any_xreg(), any::<u8>()).prop_map(|(xd, xa, shift)| Insn::Srl {
            xd,
            xa,
            shift: shift & 63
        }),
        (any_xreg(), any_xreg(), any::<u64>()).prop_map(|(xd, xa, imm)| Insn::Andi { xd, xa, imm }),
        (any_xreg(), any_xreg(), any_xreg()).prop_map(|(xd, xa, xb)| Insn::Srlv { xd, xa, xb }),
    ]
}

fn cpu() -> Cpu {
    let space = AddressSpace::builder()
        .segment(SegmentKind::Heap, HEAP, LEN)
        .build();
    let mut cpu = Cpu::new(space);
    cpu.set_cap(Reg(1), Capability::root_rw(HEAP, LEN));
    cpu.set_cap(Reg(2), Capability::root());
    cpu
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No instruction stream panics the CPU, and x0 stays zero.
    #[test]
    fn arbitrary_programs_never_panic(program in proptest::collection::vec(any_insn(), 1..200)) {
        let mut c = cpu();
        for insn in &program {
            let _ = c.step(insn);
            prop_assert_eq!(c.xreg(XReg(0)), 0);
        }
    }

    /// ISA-level monotonicity: whatever the program does, no capability
    /// register ever gains authority beyond one of the two roots it
    /// started with — bounds stay within a root, and tags only come from
    /// derivation chains (never from integer data).
    #[test]
    fn register_authority_is_bounded_by_roots(program in proptest::collection::vec(any_insn(), 1..150)) {
        let mut c = cpu();
        // Clear the omnipotent root after deriving a bounded one, so every
        // tagged capability must trace to the heap root.
        c.step(&Insn::CClearTag { cd: Reg(2), cs: Reg(2) }).expect("clear root");
        for insn in &program {
            let _ = c.step(insn);
        }
        for r in 0..32u8 {
            let cap = c.cap(Reg(r));
            if cap.tag() && !cap.is_sealed() {
                prop_assert!(cap.base() >= HEAP, "r{r} base {:#x} below heap", cap.base());
                prop_assert!(cap.top() <= (HEAP + LEN) as u128, "r{r} top beyond heap");
                prop_assert!(
                    cap.perms().is_subset_of(Perms::RW_DATA),
                    "r{r} gained permissions"
                );
            }
        }
    }

    /// Precise traps: a trapping instruction leaves every register intact.
    #[test]
    fn traps_do_not_modify_state(
        setup in proptest::collection::vec(any_insn(), 0..40),
        probe in any_insn(),
    ) {
        let mut c = cpu();
        for insn in &setup {
            let _ = c.step(insn);
        }
        let caps_before: Vec<Capability> = (0..32).map(|r| c.cap(Reg(r))).collect();
        let xregs_before: Vec<u64> = (0..32).map(|x| c.xreg(XReg(x))).collect();
        if c.step(&probe).is_err() {
            for r in 0..32u8 {
                prop_assert_eq!(c.cap(Reg(r)), caps_before[r as usize], "c{} changed", r);
            }
            for x in 0..32u8 {
                prop_assert_eq!(c.xreg(XReg(x)), xregs_before[x as usize], "x{} changed", x);
            }
        }
    }
}
