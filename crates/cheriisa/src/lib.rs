//! An instruction-level model of the CHERI ISA surface CHERIvoke uses,
//! including the paper's proposed **CLoadTags** instruction (§3.4.1).
//!
//! The paper's sweep is "a small code kernel" (§6.6) expressed in CHERI
//! instructions: capability loads, tag queries, shadow-map arithmetic, and
//! conditional invalidating stores. This crate provides a tiny CPU over
//! [`tagmem::AddressSpace`] executing exactly that instruction set, so the
//! §3.3 inner loop can be written — and tested — *as a program* (see
//! [`programs::sweep_heap`] and the `isa_sweep` example).
//!
//! Register model: 32 capability registers (`c0`–`c31`) and 32 integer
//! registers (`x0`–`x31`, with `x0` hard-wired to zero, MIPS/RISC-V
//! style). Faults are precise and surfaced as [`Trap`]s.
//!
//! # Example
//!
//! ```
//! use cheri::Capability;
//! use cheriisa::{Cpu, Insn, Reg, XReg};
//! use tagmem::{AddressSpace, SegmentKind};
//!
//! # fn main() -> Result<(), cheriisa::Trap> {
//! let space = AddressSpace::builder()
//!     .segment(SegmentKind::Heap, 0x1000, 4096)
//!     .build();
//! let mut cpu = Cpu::new(space);
//! cpu.set_cap(Reg(1), Capability::root_rw(0x1000, 4096));
//!
//! // Derive a bounded field pointer and store through it.
//! cpu.step(&Insn::CSetBounds { cd: Reg(2), cs: Reg(1), base: 0x1040, len: 64 })?;
//! cpu.step(&Insn::Li { xd: XReg(5), imm: 0xabcd })?;
//! cpu.step(&Insn::Sd { xs: XReg(5), cbase: Reg(2), offset: 0 })?;
//! cpu.step(&Insn::Ld { xd: XReg(6), cbase: Reg(2), offset: 0 })?;
//! assert_eq!(cpu.xreg(XReg(6)), 0xabcd);
//!
//! // Out-of-bounds access traps precisely.
//! let trap = cpu.step(&Insn::Ld { xd: XReg(6), cbase: Reg(2), offset: 64 });
//! assert!(trap.is_err());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cpu;
mod insn;
pub mod programs;
pub mod timed;

pub use asm::{Asm, UnresolvedLabel};
pub use cpu::{Cpu, Trap};
pub use insn::{Insn, Reg, XReg};
