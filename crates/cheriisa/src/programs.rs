//! The paper's §3.3 inner loop, expressed in CHERI instructions.
//!
//! The sweep visits every granule of the heap; for each valid capability it
//! computes the shadow-map index from the capability's **base**, loads the
//! shadow word, tests the bit, and conditionally invalidates. Every memory
//! touch, capability inspection and shadow lookup below is an [`Insn`]
//! executed by the [`Cpu`] — the host Rust merely sequences (the ISA model
//! is straight-line; branches are the host's `if`/`while`). The
//! [`Insn::CLoadTags`] fast path skips capability-free lines exactly as
//! §3.4.1 proposes.

use cheri::Capability;
use revoker::line_spans;
use tagmem::{GRANULE_SIZE, LINE_SIZE};

use crate::{Asm, Cpu, Insn, Reg, Trap, XReg};

/// Register conventions used by [`sweep_heap`].
mod regs {
    use crate::{Reg, XReg};
    /// The capability under inspection.
    pub const CUR: Reg = Reg(10);
    /// Scratch pointer for indexed loads/stores.
    pub const PTR: Reg = Reg(11);
    /// Invalidated (tag-cleared) copy for the revocation store.
    pub const DEAD: Reg = Reg(12);
    pub const TAG: XReg = XReg(10);
    pub const BASE: XReg = XReg(11);
    pub const TMP: XReg = XReg(12);
    pub const GRAN: XReg = XReg(13);
    pub const WOFF: XReg = XReg(14);
    pub const BIT: XReg = XReg(15);
    pub const WORD: XReg = XReg(16);
    pub const ADDR: XReg = XReg(17);
    pub const MASK: XReg = XReg(18);
}

/// Statistics of an ISA-level sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsaSweepStats {
    /// Cache lines skipped thanks to a zero `CLoadTags` mask.
    pub lines_skipped: u64,
    /// Capabilities inspected.
    pub caps_inspected: u64,
    /// Capabilities revoked (invalidating stores issued).
    pub caps_revoked: u64,
    /// Instructions retired by the sweep.
    pub instructions: u64,
}

/// Copies a shadow bitmap into simulated memory so the ISA loop can index
/// it like the real runtime does (the §5.2 fixed-transform mapping).
pub(crate) mod revoker_shadow {
    use crate::{Cpu, Trap};

    pub fn install_words(cpu: &mut Cpu, base: u64, words: &[u64]) -> Result<(), Trap> {
        for (i, &w) in words.iter().enumerate() {
            cpu.space_mut().store_u64(base + i as u64 * 8, w)?;
        }
        Ok(())
    }
}

/// Runs the §3.3 sweep over `[heap_base, heap_base + heap_len)` using only
/// ISA instructions for memory and capability work.
///
/// * `heap` (c-register) must cover the heap with load/store + cap
///   load/store rights.
/// * `shadow` (c-register) must cover a `heap_len / 128`-byte shadow
///   bitmap; `shadow_words` is installed at its base first.
///
/// # Errors
///
/// Returns the first [`Trap`] (the sweep itself should never trap over a
/// well-formed heap — a trap is a test failure, not a policy signal).
pub fn sweep_heap(
    cpu: &mut Cpu,
    heap: Reg,
    shadow: Reg,
    shadow_words: &[u64],
) -> Result<IsaSweepStats, Trap> {
    use regs::*;

    let heap_cap = cpu.cap(heap);
    let heap_base = heap_cap.base();
    let heap_len = heap_cap.length();
    let shadow_base = cpu.cap(shadow).base();
    revoker_shadow::install_words(cpu, shadow_base, shadow_words)?;

    let mut stats = IsaSweepStats::default();
    let start_retired = cpu.retired();

    // The same line chunking the sweep engine uses — the ISA loop and the
    // native kernels visit lines in one canonical order.
    for (line, span) in line_spans(0, heap_len) {
        // CLoadTags: one instruction decides whether the line is touched.
        cpu.step(&Insn::CLoadTags {
            xd: MASK,
            cbase: heap,
            offset: line,
        })?;
        let mask = cpu.xreg(MASK);
        if mask == 0 {
            stats.lines_skipped += 1;
            continue;
        }
        for g in 0..(span / GRANULE_SIZE) {
            if mask >> g & 1 == 0 {
                continue;
            }
            let offset = line + g * GRANULE_SIZE;
            stats.caps_inspected += 1;
            // capword = *x  (CLC) — then test the tag (CGetTag).
            cpu.step(&Insn::Clc {
                cd: CUR,
                cbase: heap,
                offset,
            })?;
            cpu.step(&Insn::CGetTag { xd: TAG, cs: CUR })?;
            debug_assert_eq!(cpu.xreg(TAG), 1, "CLoadTags said this granule is tagged");
            // Shadow index from the BASE (paper footnote 2).
            cpu.step(&Insn::CGetBase { xd: BASE, cs: CUR })?;
            cpu.step(&Insn::Li {
                xd: TMP,
                imm: heap_base.wrapping_neg(),
            })?;
            cpu.step(&Insn::Add {
                xd: GRAN,
                xa: BASE,
                xb: TMP,
            })?;
            cpu.step(&Insn::Srl {
                xd: GRAN,
                xa: GRAN,
                shift: 4,
            })?; // 16-byte granule
                 // Shadow word byte offset = (granule / 64) * 8 = (granule >> 3) & !7.
            cpu.step(&Insn::Srl {
                xd: WOFF,
                xa: GRAN,
                shift: 3,
            })?;
            cpu.step(&Insn::Andi {
                xd: WOFF,
                xa: WOFF,
                imm: !7,
            })?;
            // Load the shadow word through an indexed pointer.
            cpu.step(&Insn::Li {
                xd: ADDR,
                imm: shadow_base,
            })?;
            cpu.step(&Insn::Add {
                xd: ADDR,
                xa: ADDR,
                xb: WOFF,
            })?;
            cpu.step(&Insn::CSetAddr {
                cd: PTR,
                cs: shadow,
                xs: ADDR,
            })?;
            cpu.step(&Insn::Ld {
                xd: WORD,
                cbase: PTR,
                offset: 0,
            })?;
            // bit = (word >> (granule & 63)) & 1.
            cpu.step(&Insn::Andi {
                xd: BIT,
                xa: GRAN,
                imm: 63,
            })?;
            cpu.step(&Insn::Srlv {
                xd: WORD,
                xa: WORD,
                xb: BIT,
            })?;
            cpu.step(&Insn::Andi {
                xd: WORD,
                xa: WORD,
                imm: 1,
            })?;
            if cpu.xreg(WORD) == 1 {
                // Pointing at freed memory: invalidate (*x = cleared).
                cpu.step(&Insn::CClearTag { cd: DEAD, cs: CUR })?;
                cpu.step(&Insn::Csc {
                    cs: DEAD,
                    cbase: heap,
                    offset,
                })?;
                stats.caps_revoked += 1;
            }
        }
    }
    stats.instructions = cpu.retired() - start_retired;
    Ok(stats)
}

/// Builds a CPU whose heap segment contains the given capabilities, plus a
/// shadow segment — the common scaffolding for ISA sweep tests and the
/// `isa_sweep` example.
///
/// # Panics
///
/// Panics if a plant lies outside the heap (test-setup misuse).
pub fn heap_cpu(heap_base: u64, heap_len: u64, plants: &[(u64, Capability)]) -> (Cpu, Reg, Reg) {
    let shadow_base = 0x7000_0000u64;
    let shadow_len = cheri::granule_round_up(heap_len / 128).max(16);
    let space = tagmem::AddressSpace::builder()
        .segment(tagmem::SegmentKind::Heap, heap_base, heap_len)
        .segment(tagmem::SegmentKind::Shadow, shadow_base, shadow_len)
        .build();
    let mut cpu = Cpu::new(space);
    let heap_reg = Reg(1);
    let shadow_reg = Reg(2);
    cpu.set_cap(heap_reg, Capability::root_rw(heap_base, heap_len));
    cpu.set_cap(
        shadow_reg,
        Capability::root()
            .set_bounds(shadow_base, shadow_len)
            .expect("shadow bounds")
            .with_perms(cheri::Perms::RW_DATA)
            .expect("tagged root"),
    );
    for (addr, cap) in plants {
        cpu.space_mut()
            .store_cap(*addr, cap)
            .expect("plant inside heap");
    }
    (cpu, heap_reg, shadow_reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revoker::{Kernel, NoFilter, ShadowMap, SpaceSource, SweepEngine};

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 14;

    fn scenario() -> (Vec<(u64, Capability)>, ShadowMap) {
        let mut plants = Vec::new();
        for i in 0..24u64 {
            let obj = Capability::root_rw(HEAP + 0x2000 + i * 64, 64);
            plants.push((HEAP + i * 48 / 16 * 16, obj));
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        for i in (0..24u64).step_by(3) {
            shadow.paint(HEAP + 0x2000 + i * 64, 64);
        }
        (plants, shadow)
    }

    #[test]
    fn isa_sweep_matches_the_native_sweeper() {
        let (plants, shadow) = scenario();

        // ISA sweep.
        let (mut cpu, heap_reg, shadow_reg) = heap_cpu(HEAP, LEN, &plants);
        let stats = sweep_heap(&mut cpu, heap_reg, shadow_reg, shadow.as_words()).unwrap();

        // Native sweep over an identical heap.
        let mut native_space = tagmem::AddressSpace::builder()
            .segment(tagmem::SegmentKind::Heap, HEAP, LEN)
            .build();
        for (addr, cap) in &plants {
            native_space.store_cap(*addr, cap).unwrap();
        }
        let (source, _page_table) = SpaceSource::split(&mut native_space);
        let native = SweepEngine::new(Kernel::Wide).sweep(source, NoFilter, &shadow);

        assert_eq!(stats.caps_revoked, native.caps_revoked);
        assert!(stats.caps_inspected >= native.caps_inspected);
        // And the post-sweep heap images agree granule-for-granule.
        let isa_heap = cpu
            .space()
            .segment(tagmem::SegmentKind::Heap)
            .unwrap()
            .mem();
        let nat_heap = native_space
            .segment(tagmem::SegmentKind::Heap)
            .unwrap()
            .mem();
        assert_eq!(isa_heap.tag_count(), nat_heap.tag_count());
        for addr in nat_heap.tagged_addrs() {
            assert!(isa_heap.tag_at(addr), "tag mismatch at {addr:#x}");
        }
    }

    #[test]
    fn cloadtags_skips_most_of_a_sparse_heap() {
        let (plants, shadow) = scenario();
        let (mut cpu, heap_reg, shadow_reg) = heap_cpu(HEAP, LEN, &plants);
        let stats = sweep_heap(&mut cpu, heap_reg, shadow_reg, shadow.as_words()).unwrap();
        let total_lines = LEN / LINE_SIZE;
        assert!(
            stats.lines_skipped > total_lines / 2,
            "sparse heap should skip most lines: {} of {total_lines}",
            stats.lines_skipped
        );
        // Deterministic instruction count (§3.2's predictability claim):
        // re-running the same sweep retires the same count.
        let (mut cpu2, h2, s2) = heap_cpu(HEAP, LEN, &plants);
        let stats2 = sweep_heap(&mut cpu2, h2, s2, shadow.as_words()).unwrap();
        assert_eq!(stats.instructions, stats2.instructions);
    }

    #[test]
    fn empty_heap_costs_one_cloadtags_per_line() {
        let shadow = ShadowMap::new(HEAP, LEN);
        let (mut cpu, heap_reg, shadow_reg) = heap_cpu(HEAP, LEN, &[]);
        let stats = sweep_heap(&mut cpu, heap_reg, shadow_reg, shadow.as_words()).unwrap();
        assert_eq!(stats.caps_inspected, 0);
        assert_eq!(stats.lines_skipped, LEN / LINE_SIZE);
        assert_eq!(stats.instructions, LEN / LINE_SIZE);
    }
}

/// Builds the **complete, self-contained** §3.3 sweep as a single program
/// with real branches — no host sequencing at all. Registers: `heap` in
/// `c1`, `shadow` in `c2`; scratch in `c10`–`c12` and `x20`–`x29`.
///
/// The program sweeps `heap_len` bytes from the heap capability's base,
/// skipping capability-free lines via `CLoadTags`, and halts when done.
///
/// # Panics
///
/// Never — all labels are defined by construction.
pub fn sweep_program(heap_base: u64, heap_len: u64, shadow_base: u64) -> Vec<Insn> {
    const HEAP: Reg = Reg(1);
    const SHADOW: Reg = Reg(2);
    const CUR: Reg = Reg(10);
    const PTR: Reg = Reg(11);
    const DEAD: Reg = Reg(12);
    let line_off = XReg(20);
    let heap_len_r = XReg(21);
    let g = XReg(22);
    let tmp = XReg(23);
    let mask = XReg(24);
    let eight = XReg(25);
    let gran_off = XReg(27);
    let tmp2 = XReg(28);
    let bit = XReg(29);

    let mut asm = Asm::new();
    asm.push(Insn::Li {
        xd: heap_len_r,
        imm: heap_len,
    });
    asm.push(Insn::Li {
        xd: eight,
        imm: LINE_SIZE / GRANULE_SIZE,
    });
    asm.push(Insn::Li {
        xd: line_off,
        imm: 0,
    });

    asm.label("line");
    // while (line_off < heap_len)
    asm.push(Insn::Sltu {
        xd: tmp,
        xa: line_off,
        xb: heap_len_r,
    });
    asm.beqz(tmp, "done");
    // mask = CLoadTags(heap_base + line_off)
    asm.push(Insn::Li {
        xd: tmp,
        imm: heap_base,
    });
    asm.push(Insn::Add {
        xd: tmp,
        xa: tmp,
        xb: line_off,
    });
    asm.push(Insn::CSetAddr {
        cd: PTR,
        cs: HEAP,
        xs: tmp,
    });
    asm.push(Insn::CLoadTags {
        xd: mask,
        cbase: PTR,
        offset: 0,
    });
    asm.beqz(mask, "next_line");
    // for (g = 0, gran_off = line_off; g < 8; g++, gran_off += 16)
    asm.push(Insn::Li { xd: g, imm: 0 });
    asm.push(Insn::Add {
        xd: gran_off,
        xa: line_off,
        xb: XReg(0),
    });

    asm.label("gran");
    asm.push(Insn::Sltu {
        xd: tmp,
        xa: g,
        xb: eight,
    });
    asm.beqz(tmp, "next_line");
    // if (!(mask >> g & 1)) continue;
    asm.push(Insn::Srlv {
        xd: tmp,
        xa: mask,
        xb: g,
    });
    asm.push(Insn::Andi {
        xd: tmp,
        xa: tmp,
        imm: 1,
    });
    asm.beqz(tmp, "next_gran");
    // capword = *(heap_base + gran_off)   (CLC)
    asm.push(Insn::Li {
        xd: tmp,
        imm: heap_base,
    });
    asm.push(Insn::Add {
        xd: tmp,
        xa: tmp,
        xb: gran_off,
    });
    asm.push(Insn::CSetAddr {
        cd: PTR,
        cs: HEAP,
        xs: tmp,
    });
    asm.push(Insn::Clc {
        cd: CUR,
        cbase: PTR,
        offset: 0,
    });
    // granule = (base(capword) - heap_base) >> 4
    asm.push(Insn::CGetBase { xd: tmp, cs: CUR });
    asm.push(Insn::Li {
        xd: tmp2,
        imm: heap_base.wrapping_neg(),
    });
    asm.push(Insn::Add {
        xd: tmp,
        xa: tmp,
        xb: tmp2,
    });
    asm.push(Insn::Srl {
        xd: tmp,
        xa: tmp,
        shift: 4,
    });
    // bit = granule & 63; word byte offset = (granule >> 3) & !7
    asm.push(Insn::Andi {
        xd: bit,
        xa: tmp,
        imm: 63,
    });
    asm.push(Insn::Srl {
        xd: tmp,
        xa: tmp,
        shift: 3,
    });
    asm.push(Insn::Andi {
        xd: tmp,
        xa: tmp,
        imm: !7,
    });
    // word = shadow[offset]
    asm.push(Insn::Li {
        xd: tmp2,
        imm: shadow_base,
    });
    asm.push(Insn::Add {
        xd: tmp,
        xa: tmp,
        xb: tmp2,
    });
    asm.push(Insn::CSetAddr {
        cd: PTR,
        cs: SHADOW,
        xs: tmp,
    });
    asm.push(Insn::Ld {
        xd: tmp,
        cbase: PTR,
        offset: 0,
    });
    // if (word >> bit & 1) { *x = cleared; }
    asm.push(Insn::Srlv {
        xd: tmp,
        xa: tmp,
        xb: bit,
    });
    asm.push(Insn::Andi {
        xd: tmp,
        xa: tmp,
        imm: 1,
    });
    asm.beqz(tmp, "next_gran");
    asm.push(Insn::CClearTag { cd: DEAD, cs: CUR });
    asm.push(Insn::Li {
        xd: tmp,
        imm: heap_base,
    });
    asm.push(Insn::Add {
        xd: tmp,
        xa: tmp,
        xb: gran_off,
    });
    asm.push(Insn::CSetAddr {
        cd: PTR,
        cs: HEAP,
        xs: tmp,
    });
    asm.push(Insn::Csc {
        cs: DEAD,
        cbase: PTR,
        offset: 0,
    });

    asm.label("next_gran");
    asm.push(Insn::Addi {
        xd: g,
        xa: g,
        imm: 1,
    });
    asm.push(Insn::Addi {
        xd: gran_off,
        xa: gran_off,
        imm: GRANULE_SIZE as i64,
    });
    asm.jump("gran");

    asm.label("next_line");
    asm.push(Insn::Addi {
        xd: line_off,
        xa: line_off,
        imm: LINE_SIZE as i64,
    });
    asm.jump("line");

    asm.label("done");
    asm.push(Insn::Halt);
    asm.assemble().expect("all labels defined")
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use revoker::{Kernel, NoFilter, ShadowMap, SpaceSource, SweepEngine};

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 13;

    #[test]
    fn self_contained_program_matches_host_sequenced_sweep() {
        let mut plants = Vec::new();
        for i in 0..16u64 {
            let obj = Capability::root_rw(HEAP + 0x1000 + i * 64, 64);
            plants.push((HEAP + i * 96, obj));
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        for i in (0..16u64).step_by(2) {
            shadow.paint(HEAP + 0x1000 + i * 64, 64);
        }

        // Self-contained program with branches.
        let (mut cpu, _h, shadow_reg) = heap_cpu(HEAP, LEN, &plants);
        let shadow_base = cpu.cap(shadow_reg).base();
        revoker_shadow::install_words(&mut cpu, shadow_base, shadow.as_words()).unwrap();
        let program = sweep_program(HEAP, LEN, shadow_base);
        let done = cpu.execute(&program, 10_000_000).unwrap();
        assert!(done, "program must halt");

        // Native reference.
        let mut native = tagmem::AddressSpace::builder()
            .segment(tagmem::SegmentKind::Heap, HEAP, LEN)
            .build();
        for (addr, cap) in &plants {
            native.store_cap(*addr, cap).unwrap();
        }
        let (source, _page_table) = SpaceSource::split(&mut native);
        let stats = SweepEngine::new(Kernel::Wide).sweep(source, NoFilter, &shadow);
        assert_eq!(stats.caps_revoked, 8);

        let isa_heap = cpu
            .space()
            .segment(tagmem::SegmentKind::Heap)
            .unwrap()
            .mem();
        let nat_heap = native.segment(tagmem::SegmentKind::Heap).unwrap().mem();
        assert_eq!(isa_heap.tag_count(), nat_heap.tag_count());
        for addr in nat_heap.tagged_addrs() {
            assert!(isa_heap.tag_at(addr), "{addr:#x}");
        }
    }

    #[test]
    fn program_is_loop_structured_not_unrolled() {
        // The whole sweep over an 8 KiB heap fits in a fixed-size program:
        // proof that the control flow is real, not host-side.
        let program = sweep_program(HEAP, LEN, 0x7000_0000);
        assert!(
            program.len() < 64,
            "program should be a compact loop, got {}",
            program.len()
        );
        let big = sweep_program(HEAP, 1 << 30, 0x7000_0000);
        assert_eq!(
            program.len(),
            big.len(),
            "size must not depend on heap size"
        );
    }
}
