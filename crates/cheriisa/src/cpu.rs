//! The CPU: register state + precise execution of [`Insn`]s.

use cheri::{CapError, Capability, Perms};
use tagmem::{AddressSpace, MemError};

use crate::{Insn, Reg, XReg};

/// A precise trap raised by an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// A capability check failed (tag, seal, bounds, permissions,
    /// monotonicity, representability).
    Cap(CapError),
    /// The memory system rejected the access (unmapped, misaligned,
    /// cap-store-inhibited page).
    Mem(MemError),
    /// A register name was out of range.
    BadRegister {
        /// The offending register index.
        index: u8,
    },
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Trap::Cap(e) => write!(f, "capability trap: {e}"),
            Trap::Mem(e) => write!(f, "memory trap: {e}"),
            Trap::BadRegister { index } => write!(f, "bad register index {index}"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<CapError> for Trap {
    fn from(e: CapError) -> Trap {
        Trap::Cap(e)
    }
}

impl From<MemError> for Trap {
    fn from(e: MemError) -> Trap {
        Trap::Mem(e)
    }
}

/// A single-core CHERI CPU over a simulated address space.
///
/// See the crate-level example. The capability register file is the same
/// [`tagmem::RegisterFile`] the revocation sweep treats as a root set, so
/// programs executed here interoperate with `revoker` sweeps.
#[derive(Debug)]
pub struct Cpu {
    space: AddressSpace,
    xregs: [u64; 32],
    /// Instructions retired (for the §6 "deterministic instruction count"
    /// property of the sweep loop).
    retired: u64,
}

impl Cpu {
    /// A CPU with zeroed integer registers and null capabilities over
    /// `space`.
    pub fn new(space: AddressSpace) -> Cpu {
        Cpu {
            space,
            xregs: [0; 32],
            retired: 0,
        }
    }

    /// The underlying address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable address space (test setup; sweeps).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Consumes the CPU, returning its address space.
    pub fn into_space(self) -> AddressSpace {
        self.space
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn check_reg(r: u8) -> Result<usize, Trap> {
        if r < 32 {
            Ok(r as usize)
        } else {
            Err(Trap::BadRegister { index: r })
        }
    }

    /// Reads capability register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.0 >= 32` (use [`Cpu::step`] for trapping semantics).
    pub fn cap(&self, r: Reg) -> Capability {
        self.space.registers().get(r.0 as usize)
    }

    /// Writes capability register `r` (test setup).
    ///
    /// # Panics
    ///
    /// Panics if `r.0 >= 32`.
    pub fn set_cap(&mut self, r: Reg, cap: Capability) {
        self.space.registers_mut().set(r.0 as usize, cap);
    }

    /// Reads integer register `x` (`x0` is always zero).
    ///
    /// # Panics
    ///
    /// Panics if `x.0 >= 32`.
    pub fn xreg(&self, x: XReg) -> u64 {
        if x.0 == 0 {
            0
        } else {
            self.xregs[x.0 as usize]
        }
    }

    fn set_xreg(&mut self, x: XReg, value: u64) {
        if x.0 != 0 {
            self.xregs[x.0 as usize] = value;
        }
    }

    fn cap_at(&self, r: Reg) -> Result<Capability, Trap> {
        Ok(self.space.registers().get(Self::check_reg(r.0)?))
    }

    fn put_cap(&mut self, r: Reg, cap: Capability) -> Result<(), Trap> {
        let idx = Self::check_reg(r.0)?;
        self.space.registers_mut().set(idx, cap);
        Ok(())
    }

    /// Executes one instruction with precise trap semantics: on `Err`, no
    /// architectural state has changed.
    ///
    /// # Errors
    ///
    /// [`Trap`] per the instruction's capability/memory checks.
    pub fn step(&mut self, insn: &Insn) -> Result<(), Trap> {
        match *insn {
            Insn::CGetBase { xd, cs } => {
                let v = self.cap_at(cs)?.base();
                self.set_xreg(xd, v);
            }
            Insn::CGetLen { xd, cs } => {
                let v = self.cap_at(cs)?.length();
                self.set_xreg(xd, v);
            }
            Insn::CGetTag { xd, cs } => {
                let v = u64::from(self.cap_at(cs)?.tag());
                self.set_xreg(xd, v);
            }
            Insn::CGetPerm { xd, cs } => {
                let v = u64::from(self.cap_at(cs)?.perms().bits());
                self.set_xreg(xd, v);
            }
            Insn::CGetAddr { xd, cs } => {
                let v = self.cap_at(cs)?.address();
                self.set_xreg(xd, v);
            }
            Insn::CMove { cd, cs } => {
                let c = self.cap_at(cs)?;
                self.put_cap(cd, c)?;
            }
            Insn::CSetAddr { cd, cs, xs } => {
                let c = self.cap_at(cs)?.with_address_clearing(self.xreg(xs));
                self.put_cap(cd, c)?;
            }
            Insn::CIncOffset { cd, cs, imm } => {
                let src = self.cap_at(cs)?;
                let target = if imm >= 0 {
                    src.address().wrapping_add(imm as u64)
                } else {
                    src.address().wrapping_sub(imm.unsigned_abs())
                };
                self.put_cap(cd, src.with_address_clearing(target))?;
            }
            Insn::CSetBounds { cd, cs, base, len } => {
                let c = self.cap_at(cs)?.set_bounds_exact(base, len)?;
                self.put_cap(cd, c)?;
            }
            Insn::CAndPerm { cd, cs, mask } => {
                let c = self.cap_at(cs)?.with_perms(Perms::from_bits(mask))?;
                self.put_cap(cd, c)?;
            }
            Insn::CClearTag { cd, cs } => {
                let c = self.cap_at(cs)?.cleared();
                self.put_cap(cd, c)?;
            }
            Insn::CBuildCap { cd, ca, cs } => {
                let auth = self.cap_at(ca)?;
                let pattern = self.cap_at(cs)?;
                self.put_cap(cd, auth.build_cap(&pattern)?)?;
            }
            Insn::Clc { cd, cbase, offset } => {
                let base = self.cap_at(cbase)?;
                let addr = effective(&base, offset)?;
                base.check_access(addr, 16, Perms::LOAD | Perms::LOAD_CAP)?;
                let c = self.space.load_cap(addr)?;
                self.put_cap(cd, c)?;
            }
            Insn::Csc { cs, cbase, offset } => {
                let base = self.cap_at(cbase)?;
                let addr = effective(&base, offset)?;
                base.check_access(addr, 16, Perms::STORE | Perms::STORE_CAP)?;
                let value = self.cap_at(cs)?;
                self.space.store_cap(addr, &value)?;
            }
            Insn::Ld { xd, cbase, offset } => {
                let base = self.cap_at(cbase)?;
                let addr = effective(&base, offset)?;
                base.check_access(addr, 8, Perms::LOAD)?;
                let v = self.space.load_u64(addr)?;
                self.set_xreg(xd, v);
            }
            Insn::Sd { xs, cbase, offset } => {
                let base = self.cap_at(cbase)?;
                let addr = effective(&base, offset)?;
                base.check_access(addr, 8, Perms::STORE)?;
                self.space.store_u64(addr, self.xreg(xs))?;
            }
            Insn::CLoadTags { xd, cbase, offset } => {
                let base = self.cap_at(cbase)?;
                let addr = effective(&base, offset)?;
                // Authority over the line (not its data values) is required;
                // the tags themselves come back without a data fetch.
                let line = addr & !(tagmem::LINE_SIZE - 1);
                base.check_access(line, tagmem::LINE_SIZE, Perms::LOAD)?;
                let seg = self
                    .space
                    .segments()
                    .iter()
                    .find(|s| s.mem().contains(line, tagmem::LINE_SIZE))
                    .ok_or(MemError::Unmapped { addr: line })?;
                let mask = seg.mem().load_tags(line)?;
                self.set_xreg(xd, u64::from(mask));
            }
            Insn::Li { xd, imm } => self.set_xreg(xd, imm),
            Insn::Add { xd, xa, xb } => {
                self.set_xreg(xd, self.xreg(xa).wrapping_add(self.xreg(xb)));
            }
            Insn::Srl { xd, xa, shift } => {
                self.set_xreg(xd, self.xreg(xa) >> (shift & 63));
            }
            Insn::Andi { xd, xa, imm } => {
                self.set_xreg(xd, self.xreg(xa) & imm);
            }
            Insn::Srlv { xd, xa, xb } => {
                self.set_xreg(xd, self.xreg(xa) >> (self.xreg(xb) & 63));
            }
            Insn::Addi { xd, xa, imm } => {
                let v = if imm >= 0 {
                    self.xreg(xa).wrapping_add(imm as u64)
                } else {
                    self.xreg(xa).wrapping_sub(imm.unsigned_abs())
                };
                self.set_xreg(xd, v);
            }
            Insn::Sltu { xd, xa, xb } => {
                self.set_xreg(xd, u64::from(self.xreg(xa) < self.xreg(xb)));
            }
            // Control flow is a no-op under step(): step() executes
            // straight-line semantics; execute() interprets the targets.
            Insn::Beqz { .. } | Insn::Bnez { .. } | Insn::J { .. } | Insn::Halt => {}
        }
        self.retired += 1;
        Ok(())
    }

    /// Executes `program` with program-counter semantics (branches and
    /// [`Insn::Halt`] honoured) until it halts, falls off the end, or
    /// exhausts `fuel` instructions.
    ///
    /// # Errors
    ///
    /// Returns the faulting `(pc, Trap)` on a trap; `Err((pc,
    /// Trap::BadRegister))`-style fuel exhaustion is reported as reaching
    /// `fuel` with `Ok(false)` — see the return value: `Ok(true)` means
    /// halted/completed, `Ok(false)` means fuel ran out.
    pub fn execute(&mut self, program: &[Insn], fuel: u64) -> Result<bool, (usize, Trap)> {
        let mut pc = 0usize;
        let mut spent = 0u64;
        while pc < program.len() {
            if spent >= fuel {
                return Ok(false);
            }
            spent += 1;
            match program[pc] {
                Insn::Halt => {
                    self.retired += 1;
                    return Ok(true);
                }
                Insn::J { target } => {
                    self.retired += 1;
                    pc = target;
                }
                Insn::Beqz { xs, target } => {
                    self.retired += 1;
                    pc = if self.xreg(xs) == 0 { target } else { pc + 1 };
                }
                Insn::Bnez { xs, target } => {
                    self.retired += 1;
                    pc = if self.xreg(xs) != 0 { target } else { pc + 1 };
                }
                ref insn => {
                    self.step(insn).map_err(|t| (pc, t))?;
                    pc += 1;
                }
            }
        }
        Ok(true)
    }

    /// Runs a straight-line program to completion.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first trap, with the faulting index.
    pub fn run(&mut self, program: &[Insn]) -> Result<(), (usize, Trap)> {
        for (i, insn) in program.iter().enumerate() {
            self.step(insn).map_err(|t| (i, t))?;
        }
        Ok(())
    }
}

fn effective(base: &Capability, offset: u64) -> Result<u64, Trap> {
    base.address()
        .checked_add(offset)
        .ok_or(Trap::Cap(CapError::AddressOverflow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagmem::SegmentKind;

    fn cpu() -> Cpu {
        let space = AddressSpace::builder()
            .segment(SegmentKind::Heap, 0x1000, 4096)
            .build();
        let mut cpu = Cpu::new(space);
        cpu.set_cap(Reg(1), Capability::root_rw(0x1000, 4096));
        cpu
    }

    #[test]
    fn getters_read_capability_fields() {
        let mut c = cpu();
        c.run(&[
            Insn::CGetBase {
                xd: XReg(2),
                cs: Reg(1),
            },
            Insn::CGetLen {
                xd: XReg(3),
                cs: Reg(1),
            },
            Insn::CGetTag {
                xd: XReg(4),
                cs: Reg(1),
            },
            Insn::CGetAddr {
                xd: XReg(5),
                cs: Reg(1),
            },
            Insn::CGetPerm {
                xd: XReg(6),
                cs: Reg(1),
            },
        ])
        .unwrap();
        assert_eq!(c.xreg(XReg(2)), 0x1000);
        assert_eq!(c.xreg(XReg(3)), 4096);
        assert_eq!(c.xreg(XReg(4)), 1);
        assert_eq!(c.xreg(XReg(5)), 0x1000);
        assert_eq!(c.xreg(XReg(6)), u64::from(Perms::RW_DATA.bits()));
        assert_eq!(c.retired(), 5);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut c = cpu();
        c.step(&Insn::Li {
            xd: XReg(0),
            imm: 99,
        })
        .unwrap();
        assert_eq!(c.xreg(XReg(0)), 0);
        c.step(&Insn::Add {
            xd: XReg(2),
            xa: XReg(0),
            xb: XReg(0),
        })
        .unwrap();
        assert_eq!(c.xreg(XReg(2)), 0);
    }

    #[test]
    fn capability_roundtrip_through_memory() {
        let mut c = cpu();
        c.run(&[
            Insn::CSetBounds {
                cd: Reg(2),
                cs: Reg(1),
                base: 0x1100,
                len: 64,
            },
            Insn::Csc {
                cs: Reg(2),
                cbase: Reg(1),
                offset: 0x40,
            },
            Insn::Clc {
                cd: Reg(3),
                cbase: Reg(1),
                offset: 0x40,
            },
            Insn::CGetTag {
                xd: XReg(2),
                cs: Reg(3),
            },
            Insn::CGetBase {
                xd: XReg(3),
                cs: Reg(3),
            },
        ])
        .unwrap();
        assert_eq!(c.xreg(XReg(2)), 1);
        assert_eq!(c.xreg(XReg(3)), 0x1100);
        // The page is now CapDirty.
        assert!(c.space().page_table().is_cap_dirty(0x1040));
    }

    #[test]
    fn data_store_clears_tag_architecturally() {
        let mut c = cpu();
        c.run(&[
            Insn::Csc {
                cs: Reg(1),
                cbase: Reg(1),
                offset: 0x40,
            },
            Insn::Li {
                xd: XReg(2),
                imm: 7,
            },
            Insn::Sd {
                xs: XReg(2),
                cbase: Reg(1),
                offset: 0x40,
            },
            Insn::Clc {
                cd: Reg(3),
                cbase: Reg(1),
                offset: 0x40,
            },
            Insn::CGetTag {
                xd: XReg(3),
                cs: Reg(3),
            },
        ])
        .unwrap();
        assert_eq!(c.xreg(XReg(3)), 0, "data store must have cleared the tag");
    }

    #[test]
    fn cloadtags_reports_line_masks_without_authority_over_values() {
        let mut c = cpu();
        c.run(&[
            Insn::Csc {
                cs: Reg(1),
                cbase: Reg(1),
                offset: 0x00,
            },
            Insn::Csc {
                cs: Reg(1),
                cbase: Reg(1),
                offset: 0x70,
            },
            Insn::CLoadTags {
                xd: XReg(2),
                cbase: Reg(1),
                offset: 0x00,
            },
            Insn::CLoadTags {
                xd: XReg(3),
                cbase: Reg(1),
                offset: 0x80,
            },
        ])
        .unwrap();
        assert_eq!(c.xreg(XReg(2)), 0b1000_0001);
        assert_eq!(c.xreg(XReg(3)), 0, "clean line: sweep can skip it");
    }

    #[test]
    fn traps_are_precise() {
        let mut c = cpu();
        // A trapping load must not modify xd.
        c.step(&Insn::Li {
            xd: XReg(2),
            imm: 123,
        })
        .unwrap();
        let r = c.step(&Insn::Ld {
            xd: XReg(2),
            cbase: Reg(1),
            offset: 1 << 20,
        });
        assert!(matches!(
            r,
            Err(Trap::Cap(CapError::BoundsViolation { .. }))
        ));
        assert_eq!(c.xreg(XReg(2)), 123);
        // run() reports the faulting index.
        let err = c
            .run(&[
                Insn::Li {
                    xd: XReg(3),
                    imm: 1,
                },
                Insn::Clc {
                    cd: Reg(4),
                    cbase: Reg(1),
                    offset: 8,
                }, // misaligned
            ])
            .unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn monotonicity_traps_at_isa_level() {
        let mut c = cpu();
        c.step(&Insn::CSetBounds {
            cd: Reg(2),
            cs: Reg(1),
            base: 0x1100,
            len: 64,
        })
        .unwrap();
        let r = c.step(&Insn::CSetBounds {
            cd: Reg(3),
            cs: Reg(2),
            base: 0x1000,
            len: 4096,
        });
        assert!(matches!(r, Err(Trap::Cap(CapError::MonotonicityViolation))));
        // CBuildCap under sufficient authority works…
        c.step(&Insn::CClearTag {
            cd: Reg(4),
            cs: Reg(2),
        })
        .unwrap();
        c.step(&Insn::CBuildCap {
            cd: Reg(5),
            ca: Reg(1),
            cs: Reg(4),
        })
        .unwrap();
        assert!(c.cap(Reg(5)).tag());
        // …and under the narrow authority it fails.
        let r = c.step(&Insn::CBuildCap {
            cd: Reg(6),
            ca: Reg(2),
            cs: Reg(1),
        });
        assert!(r.is_err());
    }

    #[test]
    fn bad_register_indices_trap() {
        let mut c = cpu();
        assert!(matches!(
            c.step(&Insn::CMove {
                cd: Reg(40),
                cs: Reg(1)
            }),
            Err(Trap::BadRegister { index: 40 })
        ));
    }
}
