//! A tiny label-resolving assembler for [`Insn`] programs.

use std::collections::HashMap;

use crate::{Insn, XReg};

/// Assembles straight-line instructions plus labelled branches into a
/// program executable by [`crate::Cpu::execute`].
///
/// # Examples
///
/// ```
/// use cheriisa::{Asm, Insn, XReg};
///
/// // x2 = 10; while (x2 != 0) { x2 -= 1; x3 += 2; }
/// let mut asm = Asm::new();
/// asm.push(Insn::Li { xd: XReg(2), imm: 10 });
/// asm.label("loop");
/// asm.beqz(XReg(2), "done");
/// asm.push(Insn::Addi { xd: XReg(2), xa: XReg(2), imm: -1 });
/// asm.push(Insn::Addi { xd: XReg(3), xa: XReg(3), imm: 2 });
/// asm.jump("loop");
/// asm.label("done");
/// asm.push(Insn::Halt);
/// let program = asm.assemble().unwrap();
///
/// let space = tagmem::AddressSpace::builder()
///     .segment(tagmem::SegmentKind::Heap, 0x1000, 4096)
///     .build();
/// let mut cpu = cheriisa::Cpu::new(space);
/// assert!(cpu.execute(&program, 10_000).unwrap());
/// assert_eq!(cpu.xreg(XReg(3)), 20);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    insns: Vec<Insn>,
    labels: HashMap<String, usize>,
    /// (instruction index, label) pairs to patch at assembly time.
    fixups: Vec<(usize, String)>,
}

/// An unresolved label at assembly time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedLabel(
    /// The label that had no definition.
    pub String,
);

impl core::fmt::Display for UnresolvedLabel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unresolved label {:?}", self.0)
    }
}

impl std::error::Error for UnresolvedLabel {}

impl Asm {
    /// An empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Appends a non-branching instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Asm {
        self.insns.push(insn);
        self
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Asm {
        self.labels.insert(name.to_string(), self.insns.len());
        self
    }

    /// Appends `beqz xs, name`.
    pub fn beqz(&mut self, xs: XReg, name: &str) -> &mut Asm {
        self.fixups.push((self.insns.len(), name.to_string()));
        self.insns.push(Insn::Beqz {
            xs,
            target: usize::MAX,
        });
        self
    }

    /// Appends `bnez xs, name`.
    pub fn bnez(&mut self, xs: XReg, name: &str) -> &mut Asm {
        self.fixups.push((self.insns.len(), name.to_string()));
        self.insns.push(Insn::Bnez {
            xs,
            target: usize::MAX,
        });
        self
    }

    /// Appends `j name`.
    pub fn jump(&mut self, name: &str) -> &mut Asm {
        self.fixups.push((self.insns.len(), name.to_string()));
        self.insns.push(Insn::J { target: usize::MAX });
        self
    }

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// [`UnresolvedLabel`] if a branch references an undefined label.
    pub fn assemble(mut self) -> Result<Vec<Insn>, UnresolvedLabel> {
        for (idx, name) in &self.fixups {
            let &target = self
                .labels
                .get(name)
                .ok_or_else(|| UnresolvedLabel(name.clone()))?;
            match &mut self.insns[*idx] {
                Insn::Beqz { target: t, .. }
                | Insn::Bnez { target: t, .. }
                | Insn::J { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(self.insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cpu;
    use tagmem::{AddressSpace, SegmentKind};

    fn cpu() -> Cpu {
        Cpu::new(
            AddressSpace::builder()
                .segment(SegmentKind::Heap, 0x1000, 4096)
                .build(),
        )
    }

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Asm::new();
        asm.push(Insn::Li {
            xd: XReg(2),
            imm: 3,
        });
        asm.label("head");
        asm.beqz(XReg(2), "exit"); // forward reference
        asm.push(Insn::Addi {
            xd: XReg(2),
            xa: XReg(2),
            imm: -1,
        });
        asm.push(Insn::Addi {
            xd: XReg(4),
            xa: XReg(4),
            imm: 1,
        });
        asm.jump("head"); // backward reference
        asm.label("exit");
        asm.push(Insn::Halt);
        let program = asm.assemble().unwrap();
        let mut c = cpu();
        assert!(c.execute(&program, 1000).unwrap());
        assert_eq!(c.xreg(XReg(4)), 3);
    }

    #[test]
    fn unresolved_labels_error() {
        let mut asm = Asm::new();
        asm.jump("nowhere");
        assert_eq!(asm.assemble(), Err(UnresolvedLabel("nowhere".to_string())));
    }

    #[test]
    fn fuel_exhaustion_reports_incomplete() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.jump("spin");
        let program = asm.assemble().unwrap();
        let mut c = cpu();
        assert_eq!(c.execute(&program, 100), Ok(false));
    }

    #[test]
    fn bnez_takes_and_falls_through() {
        let mut asm = Asm::new();
        asm.push(Insn::Li {
            xd: XReg(2),
            imm: 1,
        });
        asm.bnez(XReg(2), "taken");
        asm.push(Insn::Li {
            xd: XReg(3),
            imm: 111,
        }); // skipped
        asm.label("taken");
        asm.push(Insn::Li {
            xd: XReg(4),
            imm: 222,
        });
        asm.bnez(XReg(0), "never"); // x0 == 0: falls through
        asm.push(Insn::Li {
            xd: XReg(5),
            imm: 333,
        });
        asm.label("never");
        asm.push(Insn::Halt);
        let program = asm.assemble().unwrap();
        let mut c = cpu();
        assert!(c.execute(&program, 100).unwrap());
        assert_eq!(c.xreg(XReg(3)), 0);
        assert_eq!(c.xreg(XReg(4)), 222);
        assert_eq!(c.xreg(XReg(5)), 333);
    }
}
