//! Cycle-costed execution: ISA programs on the `simcache` machine model.
//!
//! [`execute_timed`] runs a program exactly like [`Cpu::execute`] while
//! charging a [`simcache::Machine`] for every fetch-free architectural
//! event: one compute cycle per instruction, hierarchy accesses for memory
//! instructions, the tag-cache round trip for `CLoadTags`, and a
//! mispredict penalty whenever a conditional branch changes direction
//! (the §3.3 observation that the sweep's data-dependent branches are
//! "often predicted in the wrong direction").

use simcache::Machine;

use crate::{Cpu, Insn, Trap};

/// Outcome of a timed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRun {
    /// `true` if the program halted; `false` if fuel ran out.
    pub completed: bool,
    /// Instructions retired.
    pub instructions: u64,
    /// Machine cycles consumed (also accumulated in the machine).
    pub cycles: u64,
    /// Conditional-branch mispredictions charged.
    pub mispredicts: u64,
}

/// Executes `program` with pc semantics, charging `machine` for each event.
///
/// # Errors
///
/// Returns the faulting `(pc, Trap)` on a trap, with costs up to the fault
/// already charged.
pub fn execute_timed(
    cpu: &mut Cpu,
    machine: &mut Machine,
    program: &[Insn],
    fuel: u64,
) -> Result<TimedRun, (usize, Trap)> {
    let start_cycles = machine.cycles();
    let start_retired = cpu.retired();
    let mut mispredicts = 0u64;
    // One-bit local predictor per static branch site.
    let mut last_taken = vec![false; program.len()];

    let mut pc = 0usize;
    let mut spent = 0u64;
    let mut completed = true;
    while pc < program.len() {
        if spent >= fuel {
            completed = false;
            break;
        }
        spent += 1;
        machine.charge(1); // base issue cost
        match program[pc] {
            Insn::Halt => {
                cpu.step(&Insn::Halt).map_err(|t| (pc, t))?;
                break;
            }
            Insn::J { target } => {
                cpu.step(&Insn::J { target }).map_err(|t| (pc, t))?;
                pc = target;
            }
            Insn::Beqz { xs, target } => {
                let taken = cpu.xreg(xs) == 0;
                if taken != last_taken[pc] {
                    machine.branch_mispredict();
                    mispredicts += 1;
                }
                last_taken[pc] = taken;
                cpu.step(&program[pc]).map_err(|t| (pc, t))?;
                pc = if taken { target } else { pc + 1 };
            }
            Insn::Bnez { xs, target } => {
                let taken = cpu.xreg(xs) != 0;
                if taken != last_taken[pc] {
                    machine.branch_mispredict();
                    mispredicts += 1;
                }
                last_taken[pc] = taken;
                cpu.step(&program[pc]).map_err(|t| (pc, t))?;
                pc = if taken { target } else { pc + 1 };
            }
            ref insn => {
                // Charge hierarchy costs for the memory port before the
                // architectural effect (either order is fine: both happen
                // or the trap aborts the run).
                match *insn {
                    Insn::Clc { cbase, offset, .. } | Insn::Ld { cbase, offset, .. } => {
                        let addr = cpu.cap(cbase).address().wrapping_add(offset);
                        machine.read(addr, 8);
                    }
                    Insn::Csc { cbase, offset, .. } | Insn::Sd { cbase, offset, .. } => {
                        let addr = cpu.cap(cbase).address().wrapping_add(offset);
                        machine.write(addr, 8);
                    }
                    Insn::CLoadTags { cbase, offset, .. } => {
                        let addr = cpu.cap(cbase).address().wrapping_add(offset);
                        machine.cloadtags(addr);
                    }
                    _ => {}
                }
                cpu.step(insn).map_err(|t| (pc, t))?;
                pc += 1;
            }
        }
    }
    Ok(TimedRun {
        completed,
        instructions: cpu.retired() - start_retired,
        cycles: machine.cycles() - start_cycles,
        mispredicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{heap_cpu, sweep_program};
    use crate::{Reg, XReg};
    use cheri::Capability;
    use revoker::ShadowMap;
    use simcache::MachineConfig;

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 13;

    fn timed_sweep_cycles(plants: &[(u64, Capability)], shadow: &ShadowMap) -> TimedRun {
        let (mut cpu, _h, shadow_reg) = heap_cpu(HEAP, LEN, plants);
        let shadow_base = cpu.cap(shadow_reg).base();
        for (i, &w) in shadow.as_words().iter().enumerate() {
            cpu.space_mut()
                .store_u64(shadow_base + i as u64 * 8, w)
                .unwrap();
        }
        let program = sweep_program(HEAP, LEN, shadow_base);
        let mut machine = simcache::Machine::new(MachineConfig::cheri_fpga_like());
        execute_timed(&mut cpu, &mut machine, &program, 100_000_000).unwrap()
    }

    #[test]
    fn timed_sweep_completes_and_charges_cycles() {
        let plants: Vec<_> = (0..8u64)
            .map(|i| {
                (
                    HEAP + i * 256,
                    Capability::root_rw(HEAP + 0x1000 + i * 64, 64),
                )
            })
            .collect();
        let shadow = ShadowMap::new(HEAP, LEN);
        let run = timed_sweep_cycles(&plants, &shadow);
        assert!(run.completed);
        assert!(
            run.cycles > run.instructions,
            "memory costs exceed 1 cycle/insn"
        );
        assert!(run.mispredicts > 0, "data-dependent branches mispredict");
    }

    #[test]
    fn denser_heaps_cost_more_cycles() {
        let shadow = ShadowMap::new(HEAP, LEN);
        let sparse: Vec<_> = (0..4u64)
            .map(|i| {
                (
                    HEAP + i * 1024,
                    Capability::root_rw(HEAP + 0x1000 + i * 64, 64),
                )
            })
            .collect();
        let dense: Vec<_> = (0..128u64)
            .map(|i| {
                (
                    HEAP + i * 32,
                    Capability::root_rw(HEAP + 0x1000 + i * 16, 16),
                )
            })
            .collect();
        let a = timed_sweep_cycles(&sparse, &shadow);
        let b = timed_sweep_cycles(&dense, &shadow);
        assert!(
            b.cycles > a.cycles,
            "dense {} should out-cost sparse {}",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn fuel_exhaustion_is_reported_not_trapped() {
        let _shadow = ShadowMap::new(HEAP, LEN);
        let (mut cpu, _h, shadow_reg) = heap_cpu(HEAP, LEN, &[]);
        let shadow_base = cpu.cap(shadow_reg).base();
        let program = sweep_program(HEAP, LEN, shadow_base);
        let mut machine = simcache::Machine::new(MachineConfig::cheri_fpga_like());
        let run = execute_timed(&mut cpu, &mut machine, &program, 10).unwrap();
        assert!(!run.completed);
        assert!(run.instructions <= 10);
    }

    #[test]
    fn traps_report_the_faulting_pc() {
        // A program that dereferences an untagged capability register.
        let program = vec![
            crate::Insn::Li {
                xd: XReg(2),
                imm: 1,
            },
            crate::Insn::Ld {
                xd: XReg(3),
                cbase: Reg(9),
                offset: 0,
            }, // c9 is NULL
        ];
        let (mut cpu, _h, _s) = heap_cpu(HEAP, LEN, &[]);
        let mut machine = simcache::Machine::new(MachineConfig::cheri_fpga_like());
        let err = execute_timed(&mut cpu, &mut machine, &program, 100).unwrap_err();
        assert_eq!(err.0, 1);
    }
}
