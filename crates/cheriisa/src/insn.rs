//! The instruction set: the CHERI operations CHERIvoke's software relies
//! on, plus the paper's CLoadTags extension.

/// A capability-register name (`c0`–`c31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u8);

/// An integer-register name (`x0`–`x31`; `x0` reads as zero and ignores
/// writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XReg(pub u8);

/// One instruction. Capability semantics follow the `cheri` crate's model
/// (monotonic derivation, precise traps); memory semantics follow
/// `tagmem` (data stores clear tags, capability stores set CapDirty).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Insn {
    // --- Capability inspection (CGet*) ---------------------------------
    /// `xd := base(cs)`.
    CGetBase {
        /// Destination integer register.
        xd: XReg,
        /// Source capability register.
        cs: Reg,
    },
    /// `xd := length(cs)` (saturating, like the hardware's CGetLen).
    CGetLen {
        /// Destination integer register.
        xd: XReg,
        /// Source capability register.
        cs: Reg,
    },
    /// `xd := tag(cs)` (0 or 1).
    CGetTag {
        /// Destination integer register.
        xd: XReg,
        /// Source capability register.
        cs: Reg,
    },
    /// `xd := perms(cs)` as a bit mask.
    CGetPerm {
        /// Destination integer register.
        xd: XReg,
        /// Source capability register.
        cs: Reg,
    },
    /// `xd := address(cs)`.
    CGetAddr {
        /// Destination integer register.
        xd: XReg,
        /// Source capability register.
        cs: Reg,
    },

    // --- Capability manipulation ---------------------------------------
    /// `cd := cs` (CMove).
    CMove {
        /// Destination capability register.
        cd: Reg,
        /// Source capability register.
        cs: Reg,
    },
    /// `cd := cs` with address set to `xs`'s value (CSetAddr; clears the
    /// tag if unrepresentable, hardware-style).
    CSetAddr {
        /// Destination capability register.
        cd: Reg,
        /// Source capability register.
        cs: Reg,
        /// Integer register holding the new address.
        xs: XReg,
    },
    /// `cd := cs + imm` (CIncOffset immediate; clears tag when leaving the
    /// representable region).
    CIncOffset {
        /// Destination capability register.
        cd: Reg,
        /// Source capability register.
        cs: Reg,
        /// Signed immediate added to the address.
        imm: i64,
    },
    /// `cd := cs` bounded to exactly `[base, base+len)` (CSetBoundsExact;
    /// traps on monotonicity or representability violations).
    CSetBounds {
        /// Destination capability register.
        cd: Reg,
        /// Source capability register.
        cs: Reg,
        /// New base.
        base: u64,
        /// New length.
        len: u64,
    },
    /// `cd := cs ∩ mask` permissions (CAndPerm).
    CAndPerm {
        /// Destination capability register.
        cd: Reg,
        /// Source capability register.
        cs: Reg,
        /// Permission mask to intersect with.
        mask: u16,
    },
    /// `cd := cs` with tag cleared (CClearTag — what revocation does).
    CClearTag {
        /// Destination capability register.
        cd: Reg,
        /// Source capability register.
        cs: Reg,
    },
    /// `cd := rebuild(pattern cs, authority ca)` (CBuildCap).
    CBuildCap {
        /// Destination capability register.
        cd: Reg,
        /// Authorising capability register.
        ca: Reg,
        /// Pattern capability register (tag ignored).
        cs: Reg,
    },

    // --- Memory ----------------------------------------------------------
    /// Capability load: `cd := mem[address(cbase) + offset]` (CLC).
    Clc {
        /// Destination capability register.
        cd: Reg,
        /// Capability register providing authority and base address.
        cbase: Reg,
        /// Byte offset (16-byte aligned).
        offset: u64,
    },
    /// Capability store: `mem[address(cbase) + offset] := cs` (CSC).
    Csc {
        /// Source capability register.
        cs: Reg,
        /// Capability register providing authority and base address.
        cbase: Reg,
        /// Byte offset (16-byte aligned).
        offset: u64,
    },
    /// Integer load: `xd := mem64[address(cbase) + offset]` (CLD).
    Ld {
        /// Destination integer register.
        xd: XReg,
        /// Capability register providing authority.
        cbase: Reg,
        /// Byte offset.
        offset: u64,
    },
    /// Integer store: `mem64[address(cbase) + offset] := xs` (CSD; clears
    /// the covered granule's tag, like any data store).
    Sd {
        /// Source integer register.
        xs: XReg,
        /// Capability register providing authority.
        cbase: Reg,
        /// Byte offset.
        offset: u64,
    },
    /// **CLoadTags** (paper §3.4.1): `xd :=` the tag bits of the cache
    /// line containing `address(cbase) + offset`, one bit per granule,
    /// *without* loading the line's data. A zero result lets software skip
    /// the line entirely.
    CLoadTags {
        /// Destination integer register (receives the 8-bit line mask).
        xd: XReg,
        /// Capability register providing authority over the line.
        cbase: Reg,
        /// Byte offset of the line (any address within it).
        offset: u64,
    },

    // --- Integer helpers --------------------------------------------------
    /// `xd := imm`.
    Li {
        /// Destination integer register.
        xd: XReg,
        /// Immediate value.
        imm: u64,
    },
    /// `xd := xa + xb`.
    Add {
        /// Destination integer register.
        xd: XReg,
        /// First operand.
        xa: XReg,
        /// Second operand.
        xb: XReg,
    },
    /// `xd := xa >> shift` (logical).
    Srl {
        /// Destination integer register.
        xd: XReg,
        /// Operand.
        xa: XReg,
        /// Shift amount.
        shift: u8,
    },
    /// `xd := xa & imm`.
    Andi {
        /// Destination integer register.
        xd: XReg,
        /// Operand.
        xa: XReg,
        /// Immediate mask.
        imm: u64,
    },
    /// `xd := xa >> (xb & 63)` (variable logical shift, SRLV).
    Srlv {
        /// Destination integer register.
        xd: XReg,
        /// Operand.
        xa: XReg,
        /// Register holding the shift amount.
        xb: XReg,
    },

    /// `xd := xa + imm` (signed immediate, wrapping).
    Addi {
        /// Destination integer register.
        xd: XReg,
        /// Operand.
        xa: XReg,
        /// Signed immediate.
        imm: i64,
    },
    /// `xd := (xa < xb) ? 1 : 0` (unsigned compare, SLTU).
    Sltu {
        /// Destination integer register.
        xd: XReg,
        /// Left operand.
        xa: XReg,
        /// Right operand.
        xb: XReg,
    },

    // --- Control flow (used by [`crate::Cpu::execute`]) -----------------
    /// Branch to instruction index `target` if `xs == 0`.
    Beqz {
        /// Condition register.
        xs: XReg,
        /// Absolute instruction index to branch to.
        target: usize,
    },
    /// Branch to instruction index `target` if `xs != 0`.
    Bnez {
        /// Condition register.
        xs: XReg,
        /// Absolute instruction index to branch to.
        target: usize,
    },
    /// Unconditional jump to instruction index `target`.
    J {
        /// Absolute instruction index to jump to.
        target: usize,
    },
    /// Stop execution.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_are_plain_names() {
        assert_eq!(Reg(3), Reg(3));
        assert_ne!(XReg(0), XReg(1));
        let i = Insn::Li {
            xd: XReg(1),
            imm: 42,
        };
        assert_eq!(format!("{i:?}").contains("Li"), true);
    }
}
