//! Multi-seed runs: the paper takes "the average of 5 runs for each
//! benchmark" (§5.4). [`run_many`] replays independently-seeded traces of
//! the same profile and summarises the normalised results.

use serde::Serialize;

use crate::{run_trace, BenchmarkProfile, CherivokeUnderTest, TraceGenerator};

/// Summary statistics over several independently-seeded runs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MultiRunSummary {
    /// Runs aggregated.
    pub runs: u32,
    /// Mean normalised execution time.
    pub mean_time: f64,
    /// Smallest normalised time observed.
    pub min_time: f64,
    /// Largest normalised time observed.
    pub max_time: f64,
    /// Sample standard deviation of normalised time (0 for a single run).
    pub stddev_time: f64,
    /// Mean normalised memory.
    pub mean_memory: f64,
}

/// Replays `profile` under the paper-default CHERIvoke configuration once
/// per seed and summarises.
///
/// # Errors
///
/// Propagates the first run failure, tagged with its seed.
pub fn run_many(
    profile: BenchmarkProfile,
    scale: f64,
    seeds: &[u64],
) -> Result<MultiRunSummary, String> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut times = Vec::with_capacity(seeds.len());
    let mut memories = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let trace = TraceGenerator::new(profile, scale, seed).generate();
        let mut sut = CherivokeUnderTest::paper_default(&trace)
            .map_err(|e| format!("{} seed {seed}: {e}", profile.name))?;
        let report = run_trace(&mut sut, &trace)
            .map_err(|e| format!("{} seed {seed}: {e}", profile.name))?;
        times.push(report.normalized_time);
        memories.push(report.normalized_memory);
    }
    let n = times.len() as f64;
    let mean_time = times.iter().sum::<f64>() / n;
    let var = if times.len() > 1 {
        times.iter().map(|t| (t - mean_time).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Ok(MultiRunSummary {
        runs: seeds.len() as u32,
        mean_time,
        min_time: times.iter().cloned().fold(f64::INFINITY, f64::min),
        max_time: times.iter().cloned().fold(0.0, f64::max),
        stddev_time: var.sqrt(),
        mean_memory: memories.iter().sum::<f64>() / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn summary_statistics_are_consistent() {
        let p = profiles::by_name("dealII").unwrap();
        let s = run_many(p, 1.0 / 2048.0, &[1, 2, 3]).unwrap();
        assert_eq!(s.runs, 3);
        assert!(s.min_time <= s.mean_time && s.mean_time <= s.max_time);
        assert!(s.stddev_time >= 0.0);
        assert!(s.mean_memory > 1.0);
    }

    #[test]
    fn single_seed_has_zero_stddev() {
        let p = profiles::by_name("hmmer").unwrap();
        let s = run_many(p, 1.0 / 2048.0, &[9]).unwrap();
        assert_eq!(s.stddev_time, 0.0);
        assert_eq!(s.min_time, s.max_time);
    }

    #[test]
    fn seeds_produce_low_variance_for_stable_profiles() {
        // The paper's determinism claim: sweep cost depends on rates, not
        // on layout details, so seed-to-seed variance is small.
        let p = profiles::by_name("omnetpp").unwrap();
        let s = run_many(p, 1.0 / 2048.0, &[1, 2, 3, 4, 5]).unwrap();
        assert!(
            s.stddev_time < 0.05 * s.mean_time,
            "seed variance should be small: {s:?}"
        );
    }
}
