//! The CHERIvoke system-under-test adapter.

use std::collections::HashMap;

use cheri::Capability;
use cherivoke::{CherivokeHeap, HeapConfig, HeapStats, RevocationPolicy};

use crate::{MechanismBreakdown, Trace, WorkloadHeap};

/// Which constituent parts of CHERIvoke to charge for — the three bars of
/// Figure 6 (quarantine only → + shadow map → + sweeping). The underlying
/// mechanics always run in full; the stage only masks which costs count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Quarantine buffer only.
    QuarantineOnly,
    /// Quarantine + shadow-map maintenance.
    WithShadow,
    /// The complete system including memory sweeps.
    Full,
}

/// Calibrated unit costs for converting measured mechanism work into
/// virtual seconds — the same hybrid methodology as the paper (§5.2–5.3:
/// live allocator runs combined with offline sweep-rate measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// A conventional `free()` on the baseline allocator (replaced by the
    /// quarantine push).
    pub t_free_s: f64,
    /// A quarantine push — "typically less than half the execution time of
    /// a real free" (§6.1.1).
    pub t_quarantine_free_s: f64,
    /// One internal free at drain time (after aggregation there are far
    /// fewer of these than program frees).
    pub t_internal_free_s: f64,
    /// Shadow-map painting rate in bytes/s of painted heap (wide aligned
    /// stores, §5.2; painting touches 1/128 of the painted bytes).
    pub paint_rate_bytes_s: f64,
    /// Sweep scan rate in bytes/s (fig. 7: the AVX2 kernel sustains
    /// ~8 GiB/s on the paper's machine).
    pub scan_rate_bytes_s: f64,
}

impl CostModel {
    /// Costs calibrated to the paper's x86 evaluation machine.
    pub fn x86_default() -> CostModel {
        CostModel {
            t_free_s: 80e-9,
            t_quarantine_free_s: 35e-9,
            t_internal_free_s: 60e-9,
            paint_rate_bytes_s: 30.0 * 1024.0 * 1024.0 * 1024.0,
            scan_rate_bytes_s: 8.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// A cost model with a different sweep scan rate (e.g. the fig. 7
    /// kernels' measured rates).
    pub fn with_scan_rate(self, bytes_per_s: f64) -> CostModel {
        CostModel {
            scan_rate_bytes_s: bytes_per_s,
            ..self
        }
    }
}

/// A real [`CherivokeHeap`] driven by workload traces, accounting its costs
/// per the [`CostModel`].
///
/// See the crate-level example.
#[derive(Debug)]
pub struct CherivokeUnderTest {
    heap: CherivokeHeap,
    handles: HashMap<u64, Capability>,
    cost: CostModel,
    stage: Stage,
    cache_sensitivity: f64,
    app_seconds: f64,
    quarantine_s: f64,
    shadow_s: f64,
    sweep_s: f64,
    last: HeapStats,
    finished: bool,
}

impl CherivokeUnderTest {
    /// Builds the system under test for `trace` with explicit policy, cost
    /// model and fig. 6 stage.
    ///
    /// # Errors
    ///
    /// Returns an error if the heap cannot be constructed.
    pub fn new(
        trace: &Trace,
        policy: RevocationPolicy,
        cost: CostModel,
        stage: Stage,
    ) -> Result<CherivokeUnderTest, String> {
        // Headroom so quarantine growth does not force emergency sweeps:
        // the live target is 45% of the trace's nominal heap.
        let slack = 1.5 + policy.quarantine.fraction.min(4.0);
        let heap_size = cheri::granule_round_up((trace.heap_bytes as f64 * slack) as u64);
        let config = HeapConfig {
            heap_size,
            policy,
            ..HeapConfig::default()
        };
        let heap = CherivokeHeap::new(config).map_err(|e| e.to_string())?;
        let last = heap.stats();
        Ok(CherivokeUnderTest {
            heap,
            handles: HashMap::new(),
            cost,
            stage,
            cache_sensitivity: trace.profile.cache_sensitivity,
            app_seconds: trace.duration_s,
            quarantine_s: 0.0,
            shadow_s: 0.0,
            sweep_s: 0.0,
            last,
            finished: false,
        })
    }

    /// The paper's default configuration (25% quarantine, full system,
    /// x86 cost model).
    ///
    /// # Errors
    ///
    /// As [`CherivokeUnderTest::new`].
    pub fn paper_default(trace: &Trace) -> Result<CherivokeUnderTest, String> {
        CherivokeUnderTest::new(
            trace,
            RevocationPolicy::paper_default(),
            CostModel::x86_default(),
            Stage::Full,
        )
    }

    /// The underlying heap (inspection).
    pub fn heap(&self) -> &CherivokeHeap {
        &self.heap
    }

    /// Number of sweeps the policy has triggered so far.
    pub fn sweeps(&self) -> u64 {
        self.heap.stats().sweeps
    }

    /// Folds any newly-performed sweeps' measured work into the cost
    /// accounting.
    fn absorb_new_work(&mut self) {
        let now = self.heap.stats();
        let d_painted = now.bytes_painted - self.last.bytes_painted;
        let d_swept = now.bytes_swept - self.last.bytes_swept;
        let d_internal = now.alloc.internal_frees - self.last.alloc.internal_frees;
        // Painting writes 1/128 of the painted bytes, twice (paint + clear).
        self.shadow_s += 2.0 * (d_painted as f64 / 128.0) / self.cost.paint_rate_bytes_s;
        self.sweep_s += d_swept as f64 / self.cost.scan_rate_bytes_s;
        self.quarantine_s += d_internal as f64 * self.cost.t_internal_free_s;
        self.last = now;
    }

    /// The §6.1.1 / §6.4 temporal-fragmentation cache penalty: worst at
    /// small quarantines, easing as the quarantine grows (fig. 9's
    /// counterintuitive second effect).
    fn cache_penalty_s(&self) -> f64 {
        if self.cache_sensitivity == 0.0 {
            return 0.0;
        }
        let fraction = self.heap.policy().quarantine.fraction.max(0.01);
        self.cache_sensitivity * (0.25 / fraction).powf(0.7) * self.app_seconds
    }
}

impl WorkloadHeap for CherivokeUnderTest {
    fn malloc(&mut self, id: u64, size: u64) -> Result<(), String> {
        // Allocation cost equals the baseline's: no overhead charged.
        let cap = self
            .heap
            .malloc(size)
            .map_err(|e| format!("malloc {id}: {e}"))?;
        self.handles.insert(id, cap);
        self.absorb_new_work(); // malloc may have emergency-swept
        Ok(())
    }

    fn free(&mut self, id: u64) -> Result<(), String> {
        let cap = self
            .handles
            .remove(&id)
            .ok_or_else(|| format!("free of unknown id {id}"))?;
        self.heap.free(cap).map_err(|e| format!("free {id}: {e}"))?;
        // The program paid a quarantine push instead of a real free.
        self.quarantine_s += self.cost.t_quarantine_free_s - self.cost.t_free_s;
        self.absorb_new_work();
        Ok(())
    }

    fn write_ptr(&mut self, from: u64, slot: u64, to: u64) -> Result<(), String> {
        let from_cap = *self
            .handles
            .get(&from)
            .ok_or_else(|| format!("unknown holder {from}"))?;
        let to_cap = *self
            .handles
            .get(&to)
            .ok_or_else(|| format!("unknown target {to}"))?;
        // Pointer stores cost the same as on the baseline: no overhead.
        self.heap
            .store_cap(&from_cap, slot, &to_cap)
            .map_err(|e| format!("write_ptr {from}+{slot}: {e}"))
    }

    fn finish(&mut self) {
        self.absorb_new_work();
        self.finished = true;
    }

    fn mechanism(&self) -> MechanismBreakdown {
        let quarantine = self.quarantine_s + self.cache_penalty_s();
        match self.stage {
            Stage::QuarantineOnly => MechanismBreakdown {
                quarantine,
                ..Default::default()
            },
            Stage::WithShadow => MechanismBreakdown {
                quarantine,
                shadow: self.shadow_s,
                ..Default::default()
            },
            Stage::Full => MechanismBreakdown {
                quarantine,
                shadow: self.shadow_s,
                sweep: self.sweep_s,
                other: 0.0,
            },
        }
    }

    fn peak_footprint(&self) -> u64 {
        self.heap.stats().alloc.peak_footprint_bytes + self.heap.shadow_bytes()
    }

    fn peak_live(&self) -> u64 {
        self.heap.stats().alloc.peak_live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profiles, run_trace, TraceGenerator};

    fn trace(name: &str) -> Trace {
        TraceGenerator::new(profiles::by_name(name).unwrap(), 1.0 / 1024.0, 5).generate()
    }

    #[test]
    fn allocation_heavy_workload_sweeps_and_pays() {
        let t = trace("xalancbmk");
        let mut sut = CherivokeUnderTest::paper_default(&t).unwrap();
        let report = run_trace(&mut sut, &t).unwrap();
        assert!(sut.sweeps() > 0, "policy should have triggered sweeps");
        assert!(
            report.normalized_time > 1.05,
            "xalancbmk must show real overhead"
        );
        assert!(
            report.normalized_time < 2.0,
            "but not a blow-up: {report:?}"
        );
        assert!(report.breakdown.sweep > 0.0);
        // Memory: quarantine (25% of live) + shadow.
        assert!(report.normalized_memory > 1.05);
        assert!(report.normalized_memory < 1.6);
    }

    #[test]
    fn idle_workload_costs_nothing() {
        let t = trace("bzip2");
        let mut sut = CherivokeUnderTest::paper_default(&t).unwrap();
        let report = run_trace(&mut sut, &t).unwrap();
        assert_eq!(sut.sweeps(), 0);
        assert!((report.normalized_time - 1.0).abs() < 0.01, "{report:?}");
    }

    #[test]
    fn batching_makes_quarantine_cheap_or_free() {
        // dealII's quarantine component should be near zero or negative:
        // frees are replaced by cheaper pushes (§6.1.1).
        let t = trace("dealII");
        let mut sut = CherivokeUnderTest::paper_default(&t).unwrap();
        let report = run_trace(&mut sut, &t).unwrap();
        assert!(
            report.breakdown.quarantine < 0.0,
            "expected net batching gain, got {:?}",
            report.breakdown
        );
    }

    #[test]
    fn stages_are_cumulative() {
        let t = trace("omnetpp");
        let mut totals = Vec::new();
        for stage in [Stage::QuarantineOnly, Stage::WithShadow, Stage::Full] {
            let mut sut = CherivokeUnderTest::new(
                &t,
                cherivoke::RevocationPolicy::paper_default(),
                CostModel::x86_default(),
                stage,
            )
            .unwrap();
            let report = run_trace(&mut sut, &t).unwrap();
            totals.push(report.breakdown.total());
        }
        assert!(totals[0] <= totals[1] + 1e-12);
        assert!(totals[1] <= totals[2] + 1e-12);
    }

    #[test]
    fn bigger_quarantine_trades_memory_for_time() {
        let t = trace("xalancbmk");
        let mut time_small = 0.0;
        let mut time_big = 0.0;
        let mut mem_small = 0.0;
        let mut mem_big = 0.0;
        for (fraction, time, mem) in [
            (0.25, &mut time_small, &mut mem_small),
            (1.0, &mut time_big, &mut mem_big),
        ] {
            let mut sut = CherivokeUnderTest::new(
                &t,
                cherivoke::RevocationPolicy::with_fraction(fraction),
                CostModel::x86_default(),
                Stage::Full,
            )
            .unwrap();
            let report = run_trace(&mut sut, &t).unwrap();
            *time = report.normalized_time;
            *mem = report.normalized_memory;
        }
        assert!(time_big < time_small, "{time_big} !< {time_small}");
        assert!(mem_big > mem_small, "{mem_big} !> {mem_small}");
    }

    #[test]
    fn dangling_pointers_get_revoked_during_real_runs() {
        let t = trace("omnetpp");
        let mut sut = CherivokeUnderTest::paper_default(&t).unwrap();
        run_trace(&mut sut, &t).unwrap();
        let stats = sut.heap().stats();
        assert!(
            stats.caps_revoked > 0,
            "churny pointer-dense run must revoke something"
        );
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::{profiles, run_trace, TraceGenerator};

    /// The §3.5 incremental mode replays full workloads with the same
    /// safety outcome as stop-the-world, at comparable cost.
    #[test]
    fn incremental_mode_replays_workloads_safely() {
        let p = profiles::by_name("xalancbmk").unwrap();
        let trace = TraceGenerator::new(p, 1.0 / 1024.0, 5).generate();

        let mut stw = CherivokeUnderTest::paper_default(&trace).unwrap();
        let stw_report = run_trace(&mut stw, &trace).unwrap();

        let mut policy = cherivoke::RevocationPolicy::paper_default();
        policy.incremental_slice_bytes = Some(32 << 10);
        let mut inc =
            CherivokeUnderTest::new(&trace, policy, CostModel::x86_default(), Stage::Full).unwrap();
        let inc_report = run_trace(&mut inc, &trace).unwrap();

        // Both modes revoke dangling capabilities (barrier + sweep for the
        // incremental run).
        let inc_stats = inc.heap().stats();
        assert!(
            inc_stats.epochs > 0,
            "incremental mode must have run epochs"
        );
        assert!(
            inc_stats.caps_revoked + inc_stats.barrier_revocations > 0,
            "incremental run revoked nothing"
        );
        assert!(stw.heap().stats().caps_revoked > 0);

        // Costs stay in the same regime (incremental pays some extra work
        // for bounded pauses, but no blow-up).
        assert!(
            inc_report.normalized_time < stw_report.normalized_time * 2.5 + 0.1,
            "incremental {} vs stop-the-world {}",
            inc_report.normalized_time,
            stw_report.normalized_time
        );
    }
}
