//! Benchmark profiles: Table 2 of the paper, plus calibration.
//!
//! The first three numeric columns are transcribed directly from Table 2
//! ("Deallocation metadata from applications"). The remaining fields are
//! calibration constants documented per field; they do not come from the
//! paper's table but are chosen so the derived quantities (sweep frequency,
//! allocation granularity, cache behaviour) land in the regimes the paper
//! describes in §6.1.

use serde::Serialize;

/// Statistics describing one benchmark's allocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (Table 2, column 0).
    pub name: &'static str,
    /// Fraction of pages holding pointers (Table 2 "Pages with pointers").
    pub pointer_page_density: f64,
    /// Free rate in MiB/s (Table 2 "Free rate").
    pub free_rate_mib_s: f64,
    /// Frees per second (Table 2 "Frees", thousands/s × 1000).
    pub frees_per_sec: f64,
    /// Approximate full-scale heap footprint in MiB (calibrated from SPEC
    /// CPU2006 reference-input memory usage, not from the paper).
    pub heap_mib: f64,
    /// Sensitivity of the application's cache behaviour to delayed reuse
    /// (the §6.1.1 temporal-fragmentation effect): extra execution-time
    /// fraction at the default 25% quarantine. Zero for almost everything;
    /// xalancbmk is the paper's outlier at ~0.22.
    pub cache_sensitivity: f64,
}

impl BenchmarkProfile {
    /// Mean bytes per free (free rate / free count) — the workload's
    /// allocation granularity. Defaults to 4 KiB when the benchmark
    /// essentially never frees.
    pub fn mean_alloc_bytes(&self) -> u64 {
        if self.frees_per_sec < 1.0 || self.free_rate_mib_s < 0.5 {
            return 4096;
        }
        let mean = self.free_rate_mib_s * 1024.0 * 1024.0 / self.frees_per_sec;
        (mean.round() as u64).clamp(16, 1 << 20)
    }
}

/// All 17 benchmarks of Table 2 (ffmpeg + 16 SPEC CPU2006), in the paper's
/// order.
pub fn all() -> Vec<BenchmarkProfile> {
    // Columns 1-3 transcribed from Table 2. `≈ 0` frees entries are encoded
    // as the small positive rates the table's MiB/s column implies.
    let rows: [(&'static str, f64, f64, f64, f64, f64); 17] = [
        // name, page density, MiB/s, frees/s, heap MiB, cache sensitivity
        ("ffmpeg", 0.04, 1268.0, 44_000.0, 768.0, 0.0),
        ("astar", 0.62, 24.0, 27_000.0, 325.0, 0.0),
        ("bzip2", 0.00, 0.0, 0.0, 856.0, 0.0),
        ("dealII", 0.70, 40.0, 498_000.0, 514.0, 0.0),
        ("gobmk", 0.54, 1.0, 1_000.0, 28.0, 0.0),
        ("h264ref", 0.09, 3.0, 1_000.0, 64.0, 0.0),
        ("hmmer", 0.04, 17.0, 12_000.0, 24.0, 0.0),
        ("lbm", 0.00, 5.0, 10.0, 409.0, 0.0),
        ("libquantum", 0.01, 5.0, 10.0, 96.0, 0.0),
        ("mcf", 0.46, 53.0, 10.0, 1700.0, 0.0),
        ("milc", 0.03, 224.0, 30.0, 679.0, 0.0),
        ("omnetpp", 0.95, 175.0, 1_027_000.0, 172.0, 0.0),
        ("povray", 0.19, 1.0, 17_000.0, 3.0, 0.0),
        ("sjeng", 0.24, 0.0, 10.0, 172.0, 0.0),
        ("soplex", 0.23, 287.0, 2_000.0, 421.0, 0.0),
        ("sphinx3", 0.18, 33.0, 30_000.0, 45.0, 0.0),
        ("xalancbmk", 0.86, 371.0, 811_000.0, 428.0, 0.22),
    ];
    rows.into_iter()
        .map(|(name, d, fr, fs, heap, cs)| BenchmarkProfile {
            name,
            pointer_page_density: d,
            free_rate_mib_s: fr,
            frees_per_sec: fs,
            heap_mib: heap,
            cache_sensitivity: cs,
        })
        .collect()
}

/// The 16 SPEC benchmarks (Figure 5 excludes ffmpeg).
pub fn spec() -> Vec<BenchmarkProfile> {
    all().into_iter().filter(|p| p.name != "ffmpeg").collect()
}

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// The three most allocation-intensive workloads the paper singles out
/// (§5.4), used by several focused experiments.
pub fn allocation_intensive() -> Vec<BenchmarkProfile> {
    ["dealII", "omnetpp", "xalancbmk"]
        .iter()
        .map(|n| by_name(n).expect("known benchmark"))
        .collect()
}

/// The traffic shape a fleet tenant's intensity follows over a run
/// (the burst/diurnal knob on [`zipfian_fleet`]). Every shape averages
/// to 1.0 over a full period, so the Zipfian weights alone decide each
/// tenant's share of the fleet's total load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetShape {
    /// Constant intensity — the pure Zipfian mix.
    Steady,
    /// A hot quarter-period burst (2.5×) over a quiet floor (0.5×) —
    /// batch jobs and flash traffic.
    Burst,
    /// A smooth day/night sinusoid (±80% around the mean) — interactive
    /// fleets.
    Diurnal,
}

impl FleetShape {
    /// Intensity multiplier at `phase` of the shape's period (`phase` is
    /// folded into `[0, 1)`, so callers can feed raw progress ratios).
    pub fn intensity(self, phase: f64) -> f64 {
        let phase = phase.rem_euclid(1.0);
        match self {
            FleetShape::Steady => 1.0,
            FleetShape::Burst => {
                if phase < 0.25 {
                    2.5
                } else {
                    0.5
                }
            }
            FleetShape::Diurnal => 1.0 + 0.8 * (2.0 * std::f64::consts::PI * phase).sin(),
        }
    }
}

/// One tenant's slice of a Zipfian fleet: a Table-2 profile, the
/// tenant's share of fleet load, and the deterministic seed its trace
/// deals from.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant index (also the Zipfian rank: tenant 0 is the heaviest).
    pub tenant: usize,
    /// The Table-2 behaviour this tenant replays. Stored by value but
    /// always one of [`all`]'s named rows, so dealt traces survive the
    /// name-keyed trace encode/decode round trip.
    pub profile: BenchmarkProfile,
    /// Normalised Zipfian share of the fleet's total op rate (sums to
    /// 1.0 across the fleet).
    pub weight: f64,
    /// Per-tenant trace seed (derived from the fleet seed).
    pub seed: u64,
}

impl TenantLoad {
    /// This tenant's dealt trace at heap scale `scale`, capped at
    /// `max_events` events — [`crate::TraceGenerator`] with the
    /// tenant's profile and seed.
    pub fn trace(&self, scale: f64, max_events: usize) -> crate::trace::Trace {
        crate::trace::TraceGenerator::new(self.profile, scale, self.seed)
            .with_max_events(max_events)
            .generate()
    }
}

/// A multi-tenant fleet workload: Table-2 profiles dealt across
/// `n_tenants` tenants with Zipfian-skewed intensity.
#[derive(Debug, Clone)]
pub struct FleetProfile {
    tenants: Vec<TenantLoad>,
    shape: FleetShape,
    skew: f64,
}

impl FleetProfile {
    /// Replaces the traffic shape (default [`FleetShape::Steady`]).
    pub fn with_shape(mut self, shape: FleetShape) -> FleetProfile {
        self.shape = shape;
        self
    }

    /// The configured traffic shape.
    pub fn shape(&self) -> FleetShape {
        self.shape
    }

    /// The Zipfian exponent the fleet was dealt with.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// The per-tenant loads, tenant 0 first (the heaviest).
    pub fn tenants(&self) -> &[TenantLoad] {
        &self.tenants
    }

    /// Tenant `tenant`'s instantaneous share of fleet load at `phase`
    /// of the shape period: the Zipfian weight modulated by the shape.
    /// Tenants are phase-staggered so a burst shape does not synchronise
    /// the whole fleet.
    pub fn intensity(&self, tenant: usize, phase: f64) -> f64 {
        let load = &self.tenants[tenant];
        let stagger = tenant as f64 / self.tenants.len().max(1) as f64;
        load.weight * self.shape.intensity(phase + stagger)
    }
}

/// Deals a Zipfian multi-tenant fleet: `n_tenants` tenants, each with a
/// deterministically-assigned Table-2 profile and per-tenant trace seed,
/// with intensity weights `w_rank ∝ 1 / rank^s` (tenant 0 heaviest). At
/// `s = 0` every tenant carries equal load; `s ≥ 1.0` concentrates most
/// of the fleet's traffic on the first few tenants — the regime where
/// the fleet scheduler's work-stealing has to move sweep bandwidth.
/// The same `(n_tenants, s, seed)` always deals the same fleet.
pub fn zipfian_fleet(n_tenants: usize, s: f64, seed: u64) -> FleetProfile {
    let n = n_tenants.max(1);
    let s = if s.is_finite() && s >= 0.0 { s } else { 0.0 };
    // SplitMix64 stream for profile assignment, decoupled from the
    // per-tenant trace seeds derived from the same generator.
    let mut state = seed ^ 0xf1ee_7000_0000_0000;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let pool = all();
    let harmonic: f64 = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).sum();
    let tenants = (0..n)
        .map(|tenant| {
            let profile = pool[(next() % pool.len() as u64) as usize];
            let weight = 1.0 / ((tenant + 1) as f64).powf(s) / harmonic;
            TenantLoad {
                tenant,
                profile,
                weight,
                seed: next(),
            }
        })
        .collect();
    FleetProfile {
        tenants,
        shape: FleetShape::Steady,
        skew: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_17_rows() {
        let v = all();
        assert_eq!(v.len(), 17);
        assert_eq!(v[0].name, "ffmpeg");
        assert_eq!(v[16].name, "xalancbmk");
        assert_eq!(spec().len(), 16);
    }

    #[test]
    fn lookups_work() {
        assert!(by_name("omnetpp").is_some());
        assert!(by_name("doom").is_none());
        assert_eq!(allocation_intensive().len(), 3);
    }

    #[test]
    fn densities_are_fractions() {
        for p in all() {
            assert!((0.0..=1.0).contains(&p.pointer_page_density), "{}", p.name);
            assert!(p.free_rate_mib_s >= 0.0);
            assert!(p.heap_mib > 0.0);
        }
    }

    #[test]
    fn zipfian_fleet_is_deterministic_and_normalised() {
        let a = zipfian_fleet(100, 1.2, 42);
        let b = zipfian_fleet(100, 1.2, 42);
        assert_eq!(a.tenants().len(), 100);
        for (ta, tb) in a.tenants().iter().zip(b.tenants()) {
            assert_eq!(ta.profile.name, tb.profile.name);
            assert_eq!(ta.seed, tb.seed);
            assert_eq!(ta.weight, tb.weight);
        }
        let total: f64 = a.tenants().iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        // Ranks are monotone: tenant 0 is the heaviest.
        for w in a.tenants().windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        // Every dealt profile is a named Table-2 row.
        for t in a.tenants() {
            assert!(by_name(t.profile.name).is_some(), "{}", t.profile.name);
        }
    }

    #[test]
    fn zipfian_skew_concentrates_load() {
        let flat = zipfian_fleet(50, 0.0, 7);
        let skewed = zipfian_fleet(50, 1.5, 7);
        assert!((flat.tenants()[0].weight - 0.02).abs() < 1e-9);
        assert!(
            skewed.tenants()[0].weight > 5.0 * flat.tenants()[0].weight,
            "s=1.5 head weight {}",
            skewed.tenants()[0].weight
        );
        assert_eq!(skewed.skew(), 1.5);
        // Degenerate inputs are repaired, not panicked on.
        assert_eq!(zipfian_fleet(0, f64::NAN, 1).tenants().len(), 1);
    }

    #[test]
    fn fleet_shapes_average_to_unity() {
        const STEPS: usize = 10_000;
        for shape in [FleetShape::Steady, FleetShape::Burst, FleetShape::Diurnal] {
            let mean: f64 = (0..STEPS)
                .map(|i| shape.intensity(i as f64 / STEPS as f64))
                .sum::<f64>()
                / STEPS as f64;
            assert!((mean - 1.0).abs() < 0.01, "{shape:?} mean {mean}");
            assert!(shape.intensity(-0.3) > 0.0, "negative phase folds");
        }
        // The shape knob modulates intensity without touching weights.
        let fleet = zipfian_fleet(4, 1.0, 3).with_shape(FleetShape::Burst);
        assert_eq!(fleet.shape(), FleetShape::Burst);
        let w0 = fleet.tenants()[0].weight;
        assert!((fleet.intensity(0, 0.0) - 2.5 * w0).abs() < 1e-9);
    }

    #[test]
    fn mean_alloc_sizes_match_paper_arithmetic() {
        // dealII: 40 MiB/s over 498k frees/s ≈ 84 B.
        let d = by_name("dealII").unwrap().mean_alloc_bytes();
        assert!((80..=90).contains(&d), "dealII mean {d}");
        // xalancbmk ≈ 480 B — "small allocations, high throughput" (§6.1.1).
        let x = by_name("xalancbmk").unwrap().mean_alloc_bytes();
        assert!((450..=510).contains(&x), "xalancbmk mean {x}");
        // ffmpeg ≈ 30 KiB — large-buffer churn.
        let f = by_name("ffmpeg").unwrap().mean_alloc_bytes();
        assert!((28_000..=32_000).contains(&f), "ffmpeg mean {f}");
        // Never-freeing benchmarks get the default.
        assert_eq!(by_name("bzip2").unwrap().mean_alloc_bytes(), 4096);
    }

    #[test]
    fn profiles_serialize() {
        let json = serde_json::to_string(&all()).unwrap();
        assert!(json.contains("xalancbmk"));
    }
}
