//! Benchmark profiles: Table 2 of the paper, plus calibration.
//!
//! The first three numeric columns are transcribed directly from Table 2
//! ("Deallocation metadata from applications"). The remaining fields are
//! calibration constants documented per field; they do not come from the
//! paper's table but are chosen so the derived quantities (sweep frequency,
//! allocation granularity, cache behaviour) land in the regimes the paper
//! describes in §6.1.

use serde::Serialize;

/// Statistics describing one benchmark's allocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (Table 2, column 0).
    pub name: &'static str,
    /// Fraction of pages holding pointers (Table 2 "Pages with pointers").
    pub pointer_page_density: f64,
    /// Free rate in MiB/s (Table 2 "Free rate").
    pub free_rate_mib_s: f64,
    /// Frees per second (Table 2 "Frees", thousands/s × 1000).
    pub frees_per_sec: f64,
    /// Approximate full-scale heap footprint in MiB (calibrated from SPEC
    /// CPU2006 reference-input memory usage, not from the paper).
    pub heap_mib: f64,
    /// Sensitivity of the application's cache behaviour to delayed reuse
    /// (the §6.1.1 temporal-fragmentation effect): extra execution-time
    /// fraction at the default 25% quarantine. Zero for almost everything;
    /// xalancbmk is the paper's outlier at ~0.22.
    pub cache_sensitivity: f64,
}

impl BenchmarkProfile {
    /// Mean bytes per free (free rate / free count) — the workload's
    /// allocation granularity. Defaults to 4 KiB when the benchmark
    /// essentially never frees.
    pub fn mean_alloc_bytes(&self) -> u64 {
        if self.frees_per_sec < 1.0 || self.free_rate_mib_s < 0.5 {
            return 4096;
        }
        let mean = self.free_rate_mib_s * 1024.0 * 1024.0 / self.frees_per_sec;
        (mean.round() as u64).clamp(16, 1 << 20)
    }
}

/// All 17 benchmarks of Table 2 (ffmpeg + 16 SPEC CPU2006), in the paper's
/// order.
pub fn all() -> Vec<BenchmarkProfile> {
    // Columns 1-3 transcribed from Table 2. `≈ 0` frees entries are encoded
    // as the small positive rates the table's MiB/s column implies.
    let rows: [(&'static str, f64, f64, f64, f64, f64); 17] = [
        // name, page density, MiB/s, frees/s, heap MiB, cache sensitivity
        ("ffmpeg", 0.04, 1268.0, 44_000.0, 768.0, 0.0),
        ("astar", 0.62, 24.0, 27_000.0, 325.0, 0.0),
        ("bzip2", 0.00, 0.0, 0.0, 856.0, 0.0),
        ("dealII", 0.70, 40.0, 498_000.0, 514.0, 0.0),
        ("gobmk", 0.54, 1.0, 1_000.0, 28.0, 0.0),
        ("h264ref", 0.09, 3.0, 1_000.0, 64.0, 0.0),
        ("hmmer", 0.04, 17.0, 12_000.0, 24.0, 0.0),
        ("lbm", 0.00, 5.0, 10.0, 409.0, 0.0),
        ("libquantum", 0.01, 5.0, 10.0, 96.0, 0.0),
        ("mcf", 0.46, 53.0, 10.0, 1700.0, 0.0),
        ("milc", 0.03, 224.0, 30.0, 679.0, 0.0),
        ("omnetpp", 0.95, 175.0, 1_027_000.0, 172.0, 0.0),
        ("povray", 0.19, 1.0, 17_000.0, 3.0, 0.0),
        ("sjeng", 0.24, 0.0, 10.0, 172.0, 0.0),
        ("soplex", 0.23, 287.0, 2_000.0, 421.0, 0.0),
        ("sphinx3", 0.18, 33.0, 30_000.0, 45.0, 0.0),
        ("xalancbmk", 0.86, 371.0, 811_000.0, 428.0, 0.22),
    ];
    rows.into_iter()
        .map(|(name, d, fr, fs, heap, cs)| BenchmarkProfile {
            name,
            pointer_page_density: d,
            free_rate_mib_s: fr,
            frees_per_sec: fs,
            heap_mib: heap,
            cache_sensitivity: cs,
        })
        .collect()
}

/// The 16 SPEC benchmarks (Figure 5 excludes ffmpeg).
pub fn spec() -> Vec<BenchmarkProfile> {
    all().into_iter().filter(|p| p.name != "ffmpeg").collect()
}

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// The three most allocation-intensive workloads the paper singles out
/// (§5.4), used by several focused experiments.
pub fn allocation_intensive() -> Vec<BenchmarkProfile> {
    ["dealII", "omnetpp", "xalancbmk"]
        .iter()
        .map(|n| by_name(n).expect("known benchmark"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_17_rows() {
        let v = all();
        assert_eq!(v.len(), 17);
        assert_eq!(v[0].name, "ffmpeg");
        assert_eq!(v[16].name, "xalancbmk");
        assert_eq!(spec().len(), 16);
    }

    #[test]
    fn lookups_work() {
        assert!(by_name("omnetpp").is_some());
        assert!(by_name("doom").is_none());
        assert_eq!(allocation_intensive().len(), 3);
    }

    #[test]
    fn densities_are_fractions() {
        for p in all() {
            assert!((0.0..=1.0).contains(&p.pointer_page_density), "{}", p.name);
            assert!(p.free_rate_mib_s >= 0.0);
            assert!(p.heap_mib > 0.0);
        }
    }

    #[test]
    fn mean_alloc_sizes_match_paper_arithmetic() {
        // dealII: 40 MiB/s over 498k frees/s ≈ 84 B.
        let d = by_name("dealII").unwrap().mean_alloc_bytes();
        assert!((80..=90).contains(&d), "dealII mean {d}");
        // xalancbmk ≈ 480 B — "small allocations, high throughput" (§6.1.1).
        let x = by_name("xalancbmk").unwrap().mean_alloc_bytes();
        assert!((450..=510).contains(&x), "xalancbmk mean {x}");
        // ffmpeg ≈ 30 KiB — large-buffer churn.
        let f = by_name("ffmpeg").unwrap().mean_alloc_bytes();
        assert!((28_000..=32_000).contains(&f), "ffmpeg mean {f}");
        // Never-freeing benchmarks get the default.
        assert_eq!(by_name("bzip2").unwrap().mean_alloc_bytes(), 4096);
    }

    #[test]
    fn profiles_serialize() {
        let json = serde_json::to_string(&all()).unwrap();
        assert!(json.contains("xalancbmk"));
    }
}
