//! Benchmark workloads and the experiment driver (paper §5).
//!
//! The paper evaluates CHERIvoke on SPEC CPU2006 plus ffmpeg. Those exact
//! binaries and reference inputs are not reproducible here, but the paper
//! itself proves (§6.1.3) that CHERIvoke's costs depend only on a small set
//! of per-application statistics — **free rate**, **pointer density**, and
//! allocation granularity — which the paper publishes in Table 2. This
//! crate regenerates equivalent workloads from those statistics:
//!
//! * [`BenchmarkProfile`] — one entry per Table 2 row (free rate in MiB/s,
//!   frees per second, fraction of pages holding pointers), extended with
//!   calibrated heap sizes and cache-sensitivity parameters.
//! * [`TraceGenerator`] — deterministic, seeded allocation traces matching
//!   a profile's statistics: timestamped malloc/free/pointer-write events
//!   with a feedback controller that steers the realised pointer density
//!   onto the profile's value.
//! * [`WorkloadHeap`] / [`run_trace`] — the driver: replays a trace against
//!   any system under test (CHERIvoke or the `baselines` crate's
//!   comparators) and reports normalised execution time and memory, with
//!   the fig. 6 breakdown (quarantine / shadow / sweep).
//! * [`CherivokeUnderTest`] — the adapter wiring a real
//!   [`cherivoke::CherivokeHeap`] into the driver, with the measured-cost
//!   model of §5.2–5.3 (quarantine op costs, shadow painting rate, sweep
//!   scan rate).
//!
//! # Example
//!
//! ```
//! use workloads::{profiles, CherivokeUnderTest, CostModel, TraceGenerator};
//!
//! let profile = profiles::by_name("dealII").unwrap();
//! let trace = TraceGenerator::new(profile, 1.0 / 1024.0, 42).generate();
//! let mut sut = CherivokeUnderTest::paper_default(&trace).unwrap();
//! let report = workloads::run_trace(&mut sut, &trace).unwrap();
//! assert!(report.normalized_time >= 1.0 - 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod driver;
mod multirun;
pub mod profiles;
mod table2;
mod trace;
pub mod trace_io;

pub use adapter::{CherivokeUnderTest, CostModel, Stage};
pub use driver::{run_trace, MechanismBreakdown, ReplayError, RunReport, WorkloadHeap};
pub use multirun::{run_many, MultiRunSummary};
pub use profiles::BenchmarkProfile;
pub use table2::{measure_table2, Table2Row};
pub use trace::{Trace, TraceEvent, TraceGenerator, TraceOp};
