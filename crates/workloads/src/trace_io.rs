//! Trace record/replay: a compact binary format for allocation traces.
//!
//! Traces are deterministic given (profile, scale, seed), but serialising
//! them lets experiments pin the *exact* event stream across machines and
//! versions (the paper's methodology replays fixed memory images, §5.3 —
//! this is the trace-level equivalent). The format is a little-endian
//! tag-length-value stream with a versioned header.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{profiles, Trace, TraceEvent, TraceOp};

/// Format magic: "CVKT" + version 1.
const MAGIC: u32 = 0x4356_4b01;

const OP_MALLOC: u8 = 1;
const OP_FREE: u8 = 2;
const OP_WRITE_PTR: u8 = 3;

/// The ways decoding can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceIoError {
    /// The buffer does not start with the expected magic/version.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// The named profile is not in this build's Table 2.
    UnknownProfile {
        /// The profile name from the header.
        name: String,
    },
    /// The buffer ended mid-record or an opcode was invalid.
    Truncated,
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::BadMagic { found } => {
                write!(f, "bad trace magic {found:#010x}")
            }
            TraceIoError::UnknownProfile { name } => {
                write!(f, "unknown benchmark profile {name:?}")
            }
            TraceIoError::Truncated => write!(f, "trace buffer truncated or corrupt"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Serialises a trace to its binary form.
pub fn encode_trace(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.events.len() * 20);
    buf.put_u32_le(MAGIC);
    let name = trace.profile.name.as_bytes();
    buf.put_u8(name.len() as u8);
    buf.put_slice(name);
    buf.put_f64_le(trace.scale);
    buf.put_u64_le(trace.heap_bytes);
    buf.put_f64_le(trace.duration_s);
    buf.put_u64_le(trace.events.len() as u64);
    for e in &trace.events {
        buf.put_u64_le(e.at_us);
        match e.op {
            TraceOp::Malloc { id, size } => {
                buf.put_u8(OP_MALLOC);
                buf.put_u64_le(id);
                buf.put_u64_le(size);
            }
            TraceOp::Free { id } => {
                buf.put_u8(OP_FREE);
                buf.put_u64_le(id);
            }
            TraceOp::WritePtr { from, slot, to } => {
                buf.put_u8(OP_WRITE_PTR);
                buf.put_u64_le(from);
                buf.put_u64_le(slot);
                buf.put_u64_le(to);
            }
        }
    }
    buf.freeze()
}

/// Deserialises a trace from its binary form.
///
/// # Errors
///
/// [`TraceIoError`] on malformed input; decoding never panics on
/// attacker-controlled bytes.
pub fn decode_trace(mut buf: Bytes) -> Result<Trace, TraceIoError> {
    let need = |buf: &Bytes, n: usize| -> Result<(), TraceIoError> {
        if buf.remaining() < n {
            Err(TraceIoError::Truncated)
        } else {
            Ok(())
        }
    };
    need(&buf, 4)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic { found: magic });
    }
    need(&buf, 1)?;
    let name_len = buf.get_u8() as usize;
    need(&buf, name_len)?;
    let name_bytes = buf.copy_to_bytes(name_len);
    let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| TraceIoError::Truncated)?;
    let profile = profiles::by_name(&name).ok_or(TraceIoError::UnknownProfile { name })?;
    need(&buf, 8 * 4)?;
    let scale = buf.get_f64_le();
    let heap_bytes = buf.get_u64_le();
    let duration_s = buf.get_f64_le();
    let count = buf.get_u64_le() as usize;
    if count > 100_000_000 {
        return Err(TraceIoError::Truncated);
    }
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        need(&buf, 9)?;
        let at_us = buf.get_u64_le();
        let op = match buf.get_u8() {
            OP_MALLOC => {
                need(&buf, 16)?;
                TraceOp::Malloc {
                    id: buf.get_u64_le(),
                    size: buf.get_u64_le(),
                }
            }
            OP_FREE => {
                need(&buf, 8)?;
                TraceOp::Free {
                    id: buf.get_u64_le(),
                }
            }
            OP_WRITE_PTR => {
                need(&buf, 24)?;
                TraceOp::WritePtr {
                    from: buf.get_u64_le(),
                    slot: buf.get_u64_le(),
                    to: buf.get_u64_le(),
                }
            }
            _ => return Err(TraceIoError::Truncated),
        };
        events.push(TraceEvent { at_us, op });
    }
    Ok(Trace {
        profile,
        scale,
        heap_bytes,
        duration_s,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;

    fn sample() -> Trace {
        let p = profiles::by_name("dealII").unwrap();
        TraceGenerator::new(p, 1.0 / 2048.0, 3).generate()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let t = sample();
        let bytes = encode_trace(&t);
        let back = decode_trace(bytes).unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.heap_bytes, t.heap_bytes);
        assert_eq!(back.profile.name, t.profile.name);
        assert!((back.duration_s - t.duration_s).abs() < 1e-12);
        assert!((back.scale - t.scale).abs() < 1e-15);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_trace(&sample()).to_vec();
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_trace(Bytes::from(bytes)),
            Err(TraceIoError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = encode_trace(&sample());
        // Probe a spread of truncation points (every length would be slow).
        for cut in [0, 3, 4, 5, 20, 40, bytes.len() / 2, bytes.len() - 1] {
            let r = decode_trace(bytes.slice(..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
        assert!(decode_trace(bytes).is_ok());
    }

    #[test]
    fn unknown_profile_is_rejected() {
        let t = sample();
        let mut bytes = encode_trace(&t).to_vec();
        // Corrupt the profile name (offset 5, after magic + len byte).
        bytes[5] = b'z';
        assert!(matches!(
            decode_trace(Bytes::from(bytes)),
            Err(TraceIoError::UnknownProfile { .. })
        ));
    }

    #[test]
    fn corrupt_opcode_is_rejected() {
        let t = sample();
        let bytes = encode_trace(&t).to_vec();
        // First event's opcode lives right after the fixed header.
        let header = 4 + 1 + t.profile.name.len() + 8 + 8 + 8 + 8;
        let mut corrupted = bytes.clone();
        corrupted[header + 8] = 0xee;
        assert!(decode_trace(Bytes::from(corrupted)).is_err());
    }

    #[test]
    fn replay_of_decoded_trace_matches_original() {
        use crate::{run_trace, CherivokeUnderTest};
        let t = sample();
        let decoded = decode_trace(encode_trace(&t)).unwrap();
        let mut a = CherivokeUnderTest::paper_default(&t).unwrap();
        let mut b = CherivokeUnderTest::paper_default(&decoded).unwrap();
        let ra = run_trace(&mut a, &t).unwrap();
        let rb = run_trace(&mut b, &decoded).unwrap();
        assert_eq!(ra.events, rb.events);
        assert!((ra.normalized_time - rb.normalized_time).abs() < 1e-12);
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = TraceOp> {
        prop_oneof![
            (any::<u64>(), any::<u64>()).prop_map(|(id, size)| TraceOp::Malloc { id, size }),
            any::<u64>().prop_map(|id| TraceOp::Free { id }),
            (any::<u64>(), any::<u64>(), any::<u64>())
                .prop_map(|(from, slot, to)| TraceOp::WritePtr { from, slot, to }),
        ]
    }

    /// Arbitrary structurally-valid traces: any Table 2 profile, any
    /// event mix — not just what [`crate::TraceGenerator`] emits.
    fn arb_trace() -> impl Strategy<Value = Trace> {
        let n_profiles = profiles::all().len();
        (
            0..n_profiles,
            0.0..=1.0f64,
            any::<u64>(),
            0.0..=1e6f64,
            proptest::collection::vec(
                (any::<u64>(), arb_op()).prop_map(|(at_us, op)| TraceEvent { at_us, op }),
                0..64,
            ),
        )
            .prop_map(|(pi, scale, heap_bytes, duration_s, events)| Trace {
                profile: profiles::all()[pi],
                scale,
                heap_bytes,
                duration_s,
                events,
            })
    }

    proptest! {
        /// Every encodable trace decodes back to itself, field for field.
        #[test]
        fn roundtrip_is_lossless_for_arbitrary_traces(t in arb_trace()) {
            let back = decode_trace(encode_trace(&t)).unwrap();
            prop_assert_eq!(back.profile.name, t.profile.name);
            prop_assert_eq!(back.scale.to_bits(), t.scale.to_bits());
            prop_assert_eq!(back.heap_bytes, t.heap_bytes);
            prop_assert_eq!(back.duration_s.to_bits(), t.duration_s.to_bits());
            prop_assert_eq!(back.events, t.events);
        }

        /// Every strict prefix of a valid encoding fails with a clean
        /// error — never a panic, never a silently-shortened trace.
        #[test]
        fn every_truncation_errors_cleanly(t in arb_trace(), frac in 0.0..1.0f64) {
            let bytes = encode_trace(&t);
            let cut = ((bytes.len() as f64) * frac) as usize; // strictly < len
            let r = decode_trace(bytes.slice(..cut));
            prop_assert!(
                matches!(r, Err(TraceIoError::Truncated)),
                "cut at {} of {} gave {:?}", cut, bytes.len(), r
            );
        }

        /// Decoding arbitrary bytes never panics — it returns an error or a
        /// structurally valid trace.
        /// Decoding arbitrary bytes never panics — it returns an error or a
        /// structurally valid trace.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let _ = decode_trace(Bytes::from(bytes));
        }

        /// Every trace a Zipfian fleet deals (any tenant count, skew and
        /// seed) round-trips losslessly — the fleet dealer only ever
        /// assigns named Table-2 profiles, so the name-keyed codec can
        /// always resolve them on decode.
        #[test]
        fn zipfian_fleet_traces_round_trip(
            n_tenants in 1usize..6,
            s in 0.0..2.0f64,
            seed in any::<u64>(),
        ) {
            let fleet = crate::profiles::zipfian_fleet(n_tenants, s, seed);
            prop_assert_eq!(fleet.tenants().len(), n_tenants);
            for load in fleet.tenants() {
                let t = load.trace(1.0 / 4096.0, 128);
                let back = decode_trace(encode_trace(&t)).unwrap();
                prop_assert_eq!(back.profile.name, t.profile.name);
                prop_assert_eq!(back.heap_bytes, t.heap_bytes);
                prop_assert_eq!(back.events, t.events);
            }
        }

        /// Valid encodings corrupted at one byte either fail cleanly or
        /// still decode to *some* structurally valid trace (single-bit
        /// integrity is not a goal; panic-freedom is).
        #[test]
        fn corrupted_encodings_never_panic(pos in 0usize..2048, flip in 1u8..=255) {
            let p = crate::profiles::by_name("hmmer").unwrap();
            let t = crate::TraceGenerator::new(p, 1.0 / 4096.0, 1).generate();
            let mut bytes = encode_trace(&t).to_vec();
            if pos < bytes.len() {
                bytes[pos] ^= flip;
            }
            let _ = decode_trace(Bytes::from(bytes));
        }
    }
}
