//! Deterministic allocation-trace generation from benchmark profiles.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BenchmarkProfile;

/// One operation in an allocation trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Allocate `size` bytes; the object is known as `id` from here on.
    Malloc {
        /// Object identifier (unique per trace).
        id: u64,
        /// Requested size in bytes.
        size: u64,
    },
    /// Free object `id`.
    Free {
        /// Object identifier.
        id: u64,
    },
    /// Store a pointer to object `to` into object `from` at byte offset
    /// `slot` (16-byte aligned within the object).
    WritePtr {
        /// Holder object.
        from: u64,
        /// 16-byte-aligned offset within the holder.
        slot: u64,
        /// Target object.
        to: u64,
    },
}

/// A timestamped trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time in microseconds from trace start.
    pub at_us: u64,
    /// The operation.
    pub op: TraceOp,
}

/// A generated workload trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The profile this trace was generated from.
    pub profile: BenchmarkProfile,
    /// Heap-size scale factor applied (1.0 = full SPEC footprint).
    pub scale: f64,
    /// Simulated heap size in bytes (scaled, granule-aligned).
    pub heap_bytes: u64,
    /// Virtual duration in seconds.
    pub duration_s: f64,
    /// The events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of `Malloc` events.
    pub fn mallocs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Malloc { .. }))
            .count()
    }

    /// Number of `Free` events.
    pub fn frees(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Free { .. }))
            .count()
    }

    /// Number of `WritePtr` events.
    pub fn ptr_writes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::WritePtr { .. }))
            .count()
    }

    /// Total bytes freed by the trace.
    pub fn freed_bytes(&self) -> u64 {
        let mut sizes = std::collections::HashMap::new();
        let mut freed = 0;
        for e in &self.events {
            match e.op {
                TraceOp::Malloc { id, size } => {
                    sizes.insert(id, size);
                }
                TraceOp::Free { id } => freed += sizes.get(&id).copied().unwrap_or(0),
                TraceOp::WritePtr { .. } => {}
            }
        }
        freed
    }
}

/// Generates seeded, deterministic traces whose realised statistics match a
/// [`BenchmarkProfile`].
///
/// The generator preserves the quantities CHERIvoke's costs depend on
/// (§6.1.3) under heap scaling:
///
/// * **Free rate (MiB/s)** is preserved exactly in expectation: if the
///   scaled heap forces the mean allocation below the profile's, the event
///   rate is raised to compensate.
/// * **Pointer page density** is steered by giving each object a pointer
///   with probability `1 - (1 - density)^(1/objects_per_page)`, the
///   analytic solution under uniform object placement.
/// * **Temporal fragmentation** (the §6.1.1 xalancbmk effect) is controlled
///   by the victim-selection mix: cache-sensitive profiles free scattered
///   (random) victims; others free mostly oldest-first.
///
/// # Examples
///
/// ```
/// use workloads::{profiles, TraceGenerator};
///
/// let p = profiles::by_name("omnetpp").unwrap();
/// let t = TraceGenerator::new(p, 1.0 / 1024.0, 7).generate();
/// assert!(t.frees() > 100);
/// // Deterministic: same seed, same trace.
/// let t2 = TraceGenerator::new(p, 1.0 / 1024.0, 7).generate();
/// assert_eq!(t.events, t2.events);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    scale: f64,
    seed: u64,
    duration_s: Option<f64>,
    max_events: usize,
}

impl TraceGenerator {
    /// A generator for `profile` at heap scale `scale` with a deterministic
    /// `seed`.
    pub fn new(profile: BenchmarkProfile, scale: f64, seed: u64) -> TraceGenerator {
        TraceGenerator {
            profile,
            scale,
            seed,
            duration_s: None,
            max_events: 400_000,
        }
    }

    /// Overrides the automatically-chosen virtual duration.
    pub fn with_duration(mut self, seconds: f64) -> TraceGenerator {
        self.duration_s = Some(seconds);
        self
    }

    /// Caps the number of generated events (the duration shrinks to fit).
    pub fn with_max_events(mut self, max: usize) -> TraceGenerator {
        self.max_events = max;
        self
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let p = &self.profile;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xc0ff_ee00);

        let heap_bytes =
            cheri::granule_round_up(((p.heap_mib * self.scale) * 1024.0 * 1024.0) as u64)
                .max(256 << 10);
        let live_target = (heap_bytes as f64 * 0.45) as u64;

        // Allocation granularity, clamped so a scaled heap still holds a
        // meaningful number of objects.
        let mean = p.mean_alloc_bytes().min(heap_bytes / 128).max(16);
        // Event rate preserving the profile's free MiB/s.
        let free_bytes_per_s = p.free_rate_mib_s * 1024.0 * 1024.0;
        let churns_per_s = if free_bytes_per_s > 0.0 {
            free_bytes_per_s / mean as f64
        } else {
            0.0
        };

        // Duration: enough for several quarantine cycles at the default 25%
        // fraction, bounded by the event budget.
        let mut duration = self.duration_s.unwrap_or_else(|| {
            if free_bytes_per_s <= 0.0 {
                return 0.05;
            }
            let per_sweep = 0.25 * live_target as f64;
            (8.0 * per_sweep / free_bytes_per_s).clamp(0.02, 5.0)
        });
        if churns_per_s > 0.0 {
            let max_dur = self.max_events as f64 / (2.5 * churns_per_s);
            duration = duration.min(max_dur);
        }

        // Pointer-bearing probability solving for the target page density,
        // with a calibration factor compensating for fragmentation spreading
        // allocations over more pages than the footprint implies.
        let objs_per_page = (4096.0 / mean as f64).max(1.0);
        let d_adj = (p.pointer_page_density * 1.1).min(0.999);
        let p_ptr = if p.pointer_page_density >= 1.0 {
            1.0
        } else {
            1.0 - (1.0 - d_adj).powf(1.0 / objs_per_page)
        };
        let page_density = p.pointer_page_density;

        // Victim-selection mix: cache-sensitive → scattered lifetimes.
        let random_victim_frac = if p.cache_sensitivity > 0.0 { 0.8 } else { 0.3 };

        let mut events = Vec::new();
        let mut live: Vec<(u64, u64)> = Vec::new(); // (id, size)
        let mut next_id = 0u64;
        let mut live_bytes = 0u64;
        let mut t_us = 0u64;

        let sample_size = |rng: &mut SmallRng| -> u64 {
            // A discrete spread with mean ≈ `mean`.
            let f = match rng.gen_range(0..100) {
                0..=39 => 0.5,
                40..=79 => 1.0,
                80..=94 => 2.0,
                _ => 4.0,
            };
            ((mean as f64 * f) as u64).clamp(16, heap_bytes / 16)
        };

        // Emits the pointer stores a fresh object receives: small objects
        // carry one pointer with probability `p_ptr`; page-spanning objects
        // get an independent chance per page (large structures hold
        // pointers throughout, e.g. mcf's arena of linked nodes).
        // Most pointers in real programs reference *live* data (interior
        // structure pointers); only a minority end up dangling. Model this
        // with 70% self-references (stable for the holder's lifetime) and
        // 30% cross-object references (the dangling-pointer source).
        let pick_target = |rng: &mut SmallRng, live: &Vec<(u64, u64)>, id: u64| -> u64 {
            if rng.gen_bool(0.7) || live.is_empty() {
                id
            } else {
                live[rng.gen_range(0..live.len())].0
            }
        };
        let emit_ptrs = |rng: &mut SmallRng,
                         events: &mut Vec<TraceEvent>,
                         live: &Vec<(u64, u64)>,
                         at_us: u64,
                         id: u64,
                         size: u64| {
            if size > 4096 {
                for k in 0..(size / 4096) {
                    if rng.gen_bool(page_density) {
                        let target = pick_target(rng, live, id);
                        events.push(TraceEvent {
                            at_us,
                            op: TraceOp::WritePtr {
                                from: id,
                                slot: k * 4096,
                                to: target,
                            },
                        });
                    }
                }
            } else if rng.gen_bool(p_ptr) {
                let target = pick_target(rng, live, id);
                events.push(TraceEvent {
                    at_us,
                    op: TraceOp::WritePtr {
                        from: id,
                        slot: 0,
                        to: target,
                    },
                });
            }
        };

        // Ramp-up: build the live set at t ≈ 0.
        while live_bytes < live_target {
            let size = sample_size(&mut rng);
            let id = next_id;
            next_id += 1;
            events.push(TraceEvent {
                at_us: t_us,
                op: TraceOp::Malloc { id, size },
            });
            emit_ptrs(&mut rng, &mut events, &live, t_us, id, size);
            live.push((id, size));
            live_bytes += size;
            t_us += 1;
        }

        // Steady-state churn at the profile's free rate.
        if churns_per_s > 0.0 {
            let step_us = (1e6 / churns_per_s).max(1e-3);
            let mut t = t_us as f64;
            let end_us = duration * 1e6;
            while t < end_us && events.len() + 4 < self.max_events {
                t += step_us;
                let at_us = t as u64;
                // Free a victim.
                if !live.is_empty() {
                    let idx = if rng.gen_bool(random_victim_frac) {
                        rng.gen_range(0..live.len())
                    } else {
                        0 // oldest
                    };
                    let (id, size) = live.remove(idx);
                    live_bytes -= size;
                    events.push(TraceEvent {
                        at_us,
                        op: TraceOp::Free { id },
                    });
                }
                // Allocate a replacement to hold the live set steady.
                if live_bytes < live_target {
                    let size = sample_size(&mut rng);
                    let id = next_id;
                    next_id += 1;
                    events.push(TraceEvent {
                        at_us,
                        op: TraceOp::Malloc { id, size },
                    });
                    emit_ptrs(&mut rng, &mut events, &live, at_us, id, size);
                    live.push((id, size));
                    live_bytes += size;
                }
            }
            duration = duration.max(t / 1e6);
        }

        Trace {
            profile: *p,
            scale: self.scale,
            heap_bytes,
            duration_s: duration,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn gen(name: &str, scale: f64) -> Trace {
        TraceGenerator::new(profiles::by_name(name).unwrap(), scale, 1).generate()
    }

    #[test]
    fn traces_are_deterministic() {
        let a = gen("dealII", 1.0 / 512.0);
        let b = gen("dealII", 1.0 / 512.0);
        assert_eq!(a.events, b.events);
        assert_eq!(a.heap_bytes, b.heap_bytes);
    }

    #[test]
    fn free_rate_is_preserved_under_scaling() {
        for name in ["dealII", "omnetpp", "xalancbmk", "mcf", "milc"] {
            let t = gen(name, 1.0 / 512.0);
            let realised = t.freed_bytes() as f64 / t.duration_s / (1024.0 * 1024.0);
            let target = t.profile.free_rate_mib_s;
            assert!(
                (realised - target).abs() / target < 0.35,
                "{name}: realised {realised:.1} MiB/s vs target {target} MiB/s"
            );
        }
    }

    #[test]
    fn never_freeing_benchmarks_generate_ramp_only() {
        let t = gen("bzip2", 1.0 / 512.0);
        assert_eq!(t.frees(), 0);
        assert!(t.mallocs() > 0);
    }

    #[test]
    fn pointer_writes_track_density() {
        let dense = gen("omnetpp", 1.0 / 512.0);
        let sparse = gen("milc", 1.0 / 512.0);
        let dense_frac = dense.ptr_writes() as f64 / dense.mallocs() as f64;
        let sparse_frac = sparse.ptr_writes() as f64 / sparse.mallocs().max(1) as f64;
        assert!(dense_frac > sparse_frac, "{dense_frac} vs {sparse_frac}");
    }

    #[test]
    fn events_are_time_ordered() {
        let t = gen("xalancbmk", 1.0 / 512.0);
        let mut last = 0;
        for e in &t.events {
            assert!(e.at_us >= last);
            last = e.at_us;
        }
    }

    #[test]
    fn event_budget_is_respected() {
        let t = TraceGenerator::new(profiles::by_name("omnetpp").unwrap(), 1.0 / 64.0, 3)
            .with_max_events(10_000)
            .generate();
        assert!(t.events.len() <= 10_000);
    }

    #[test]
    fn frees_reference_live_objects_only() {
        let t = gen("dealII", 1.0 / 512.0);
        let mut live = std::collections::HashSet::new();
        for e in &t.events {
            match e.op {
                TraceOp::Malloc { id, .. } => {
                    assert!(live.insert(id), "duplicate id {id}");
                }
                TraceOp::Free { id } => {
                    assert!(live.remove(&id), "free of dead id {id}");
                }
                TraceOp::WritePtr { from, to, .. } => {
                    assert!(live.contains(&from), "write into dead object");
                    assert!(live.contains(&to), "pointer to dead object");
                }
            }
        }
    }
}
