//! Regenerating Table 2 from live runs.

use serde::Serialize;

use crate::{profiles, CherivokeUnderTest, Trace, TraceGenerator};
use tagmem::SegmentKind;

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Paper's "Pages with pointers" (fraction).
    pub paper_page_density: f64,
    /// Measured fraction of heap pages holding pointers after the run.
    pub measured_page_density: f64,
    /// Paper's free rate (MiB/s).
    pub paper_free_rate: f64,
    /// Measured free rate over the trace (MiB/s).
    pub measured_free_rate: f64,
    /// Paper's frees (thousands/s).
    pub paper_frees_k: f64,
    /// Measured frees (thousands/s).
    pub measured_frees_k: f64,
}

/// Runs every Table 2 benchmark at `scale` and measures the realised
/// statistics, pairing them with the paper's values.
///
/// # Panics
///
/// Panics if a trace fails to replay (a harness bug, not a data condition).
pub fn measure_table2(scale: f64, seed: u64) -> Vec<Table2Row> {
    profiles::all()
        .iter()
        .map(|p| {
            let trace = TraceGenerator::new(*p, scale, seed).generate();
            let mut sut = CherivokeUnderTest::paper_default(&trace)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            crate::run_trace(&mut sut, &trace).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            Table2Row {
                name: p.name.to_string(),
                paper_page_density: p.pointer_page_density,
                measured_page_density: measured_density(&trace, &sut),
                paper_free_rate: p.free_rate_mib_s,
                measured_free_rate: trace.freed_bytes() as f64
                    / trace.duration_s
                    / (1024.0 * 1024.0),
                paper_frees_k: p.frees_per_sec / 1000.0,
                measured_frees_k: trace.frees() as f64 / trace.duration_s / 1000.0,
            }
        })
        .collect()
}

/// Ground-truth page pointer density over the *occupied* portion of the
/// heap (pages above the high-water mark never held data and are excluded,
/// as the paper measures real application images).
fn measured_density(trace: &Trace, sut: &CherivokeUnderTest) -> f64 {
    let heap = sut
        .heap()
        .space()
        .segment(SegmentKind::Heap)
        .expect("heap segment")
        .mem();
    let used = sut
        .heap()
        .stats()
        .alloc
        .peak_footprint_bytes
        .min(heap.len());
    let used_pages = (used.max(1)).div_ceil(tagmem::PAGE_SIZE);
    let mut with_ptrs = 0u64;
    for page_idx in 0..used_pages {
        let page = heap.base() + page_idx * tagmem::PAGE_SIZE;
        let end = (page + tagmem::PAGE_SIZE).min(heap.end());
        let any = (page..end)
            .step_by(tagmem::GRANULE_SIZE as usize)
            .any(|a| heap.tag_at(a));
        if any {
            with_ptrs += 1;
        }
    }
    let _ = trace;
    with_ptrs as f64 / used_pages as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_cover_all_benchmarks() {
        let rows = measure_table2(1.0 / 2048.0, 3);
        assert_eq!(rows.len(), 17);
        for r in &rows {
            assert!(r.measured_free_rate >= 0.0, "{}", r.name);
            assert!((0.0..=1.0).contains(&r.measured_page_density), "{}", r.name);
        }
    }

    #[test]
    fn measured_rates_track_paper_for_steady_churners() {
        let rows = measure_table2(1.0 / 2048.0, 3);
        for r in rows {
            if r.paper_free_rate >= 20.0 && r.paper_frees_k >= 10.0 {
                let ratio = r.measured_free_rate / r.paper_free_rate;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "{}: measured {:.1} vs paper {:.1}",
                    r.name,
                    r.measured_free_rate,
                    r.paper_free_rate
                );
            }
        }
    }

    #[test]
    fn pointerless_benchmarks_measure_near_zero_density() {
        let rows = measure_table2(1.0 / 2048.0, 3);
        let bzip2 = rows.iter().find(|r| r.name == "bzip2").unwrap();
        assert!(bzip2.measured_page_density < 0.05);
        let dense = rows.iter().find(|r| r.name == "omnetpp").unwrap();
        assert!(dense.measured_page_density > 0.5);
    }
}
