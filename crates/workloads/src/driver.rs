//! The experiment driver: replays traces against systems under test.

use std::collections::HashMap;

use crate::{Trace, TraceOp};

/// Virtual seconds of mechanism time, broken down as in Figure 6.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MechanismBreakdown {
    /// Quarantine-buffer management: free-path changes, drain-time internal
    /// frees, cache effects of delayed reuse — minus the batching benefit
    /// (this term can be negative, as in fig. 6's sub-1.0 bars).
    pub quarantine: f64,
    /// Shadow-map maintenance (painting and clearing).
    pub shadow: f64,
    /// Memory sweeping.
    pub sweep: f64,
    /// Any comparator-specific mechanism cost (pointer registries, page
    /// remapping, GC marking, …).
    pub other: f64,
}

impl MechanismBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.quarantine + self.shadow + self.sweep + self.other
    }
}

/// A system under test, driven by [`run_trace`].
///
/// Implementations execute the allocation workload *for real* (a live
/// allocator over simulated memory) and account their mechanism costs in
/// virtual seconds, using measured quantities (bytes swept, chunks painted,
/// registry entries walked, …) times calibrated unit costs — the same
/// methodology the paper uses to combine live runs with offline sweep
/// timings (§5.3).
pub trait WorkloadHeap {
    /// Allocates object `id` with `size` bytes.
    ///
    /// # Errors
    ///
    /// Implementation-specific (e.g. out of simulated memory).
    fn malloc(&mut self, id: u64, size: u64) -> Result<(), String>;

    /// Frees object `id`.
    ///
    /// # Errors
    ///
    /// Implementation-specific (e.g. unknown id).
    fn free(&mut self, id: u64) -> Result<(), String>;

    /// Stores a pointer to `to` into object `from` at `slot`.
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn write_ptr(&mut self, from: u64, slot: u64, to: u64) -> Result<(), String>;

    /// Called once after the last event (final collections, drains, …).
    fn finish(&mut self) {}

    /// Mechanism time consumed so far, in virtual seconds.
    fn mechanism(&self) -> MechanismBreakdown;

    /// Peak memory footprint in bytes (live + detained + metadata).
    fn peak_footprint(&self) -> u64;

    /// Peak *live* bytes — the baseline a plain allocator would use
    /// (normalised memory = footprint / live).
    fn peak_live(&self) -> u64;
}

/// Result of replaying one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Virtual application seconds the trace represents.
    pub app_seconds: f64,
    /// The fig. 6 breakdown.
    pub breakdown: MechanismBreakdown,
    /// Execution time normalised to the unprotected baseline (fig. 5a):
    /// `1 + mechanism / app_seconds`.
    pub normalized_time: f64,
    /// Memory normalised to peak live bytes (fig. 5b).
    pub normalized_memory: f64,
    /// Events successfully replayed.
    pub events: u64,
}

/// Why a trace replay failed: which operation the heap rejected, at which
/// event index, and the heap's own diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// `malloc` of object `id` failed (e.g. out of simulated memory).
    Malloc {
        /// Index of the failing event in [`Trace::events`].
        event: usize,
        /// The object id being allocated.
        id: u64,
        /// The requested size in bytes.
        size: u64,
        /// The heap's diagnostic.
        message: String,
    },
    /// `free` of object `id` failed (e.g. unknown or already-freed id).
    Free {
        /// Index of the failing event in [`Trace::events`].
        event: usize,
        /// The object id being freed.
        id: u64,
        /// The heap's diagnostic.
        message: String,
    },
    /// `write_ptr` failed (e.g. a write into a dead object).
    WritePtr {
        /// Index of the failing event in [`Trace::events`].
        event: usize,
        /// The object being written into.
        from: u64,
        /// The pointer slot within `from`.
        slot: u64,
        /// The object being pointed to.
        to: u64,
        /// The heap's diagnostic.
        message: String,
    },
}

impl ReplayError {
    /// Index of the failing event in [`Trace::events`].
    pub fn event(&self) -> usize {
        match *self {
            ReplayError::Malloc { event, .. }
            | ReplayError::Free { event, .. }
            | ReplayError::WritePtr { event, .. } => event,
        }
    }

    /// The heap implementation's own diagnostic.
    pub fn message(&self) -> &str {
        match self {
            ReplayError::Malloc { message, .. }
            | ReplayError::Free { message, .. }
            | ReplayError::WritePtr { message, .. } => message,
        }
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Malloc {
                event,
                id,
                size,
                message,
            } => write!(f, "event {event}: malloc(id={id}, size={size}): {message}"),
            ReplayError::Free { event, id, message } => {
                write!(f, "event {event}: free(id={id}): {message}")
            }
            ReplayError::WritePtr {
                event,
                from,
                slot,
                to,
                message,
            } => write!(
                f,
                "event {event}: write_ptr(from={from}, slot={slot}, to={to}): {message}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays `trace` against `heap`, producing the normalised overheads.
///
/// # Errors
///
/// Stops at the first operation the heap rejects, returning a
/// [`ReplayError`] carrying the event index and the failing operation.
pub fn run_trace<H: WorkloadHeap>(heap: &mut H, trace: &Trace) -> Result<RunReport, ReplayError> {
    let mut sizes: HashMap<u64, u64> = HashMap::new();
    let mut events = 0u64;
    for (i, e) in trace.events.iter().enumerate() {
        let r = match e.op {
            TraceOp::Malloc { id, size } => {
                sizes.insert(id, size);
                heap.malloc(id, size)
                    .map_err(|message| ReplayError::Malloc {
                        event: i,
                        id,
                        size,
                        message,
                    })
            }
            TraceOp::Free { id } => heap.free(id).map_err(|message| ReplayError::Free {
                event: i,
                id,
                message,
            }),
            TraceOp::WritePtr { from, slot, to } => {
                heap.write_ptr(from, slot, to)
                    .map_err(|message| ReplayError::WritePtr {
                        event: i,
                        from,
                        slot,
                        to,
                        message,
                    })
            }
        };
        r?;
        events += 1;
    }
    heap.finish();

    let app_seconds = trace.duration_s.max(1e-9);
    let breakdown = heap.mechanism();
    let peak_live = heap.peak_live().max(1);
    Ok(RunReport {
        app_seconds,
        breakdown,
        normalized_time: (1.0 + breakdown.total() / app_seconds).max(0.0),
        normalized_memory: heap.peak_footprint() as f64 / peak_live as f64,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profiles, TraceGenerator};

    /// A do-nothing heap for driver plumbing tests.
    #[derive(Default)]
    struct NullHeap {
        live: HashMap<u64, u64>,
        peak: u64,
        cur: u64,
    }

    impl WorkloadHeap for NullHeap {
        fn malloc(&mut self, id: u64, size: u64) -> Result<(), String> {
            self.live.insert(id, size);
            self.cur += size;
            self.peak = self.peak.max(self.cur);
            Ok(())
        }
        fn free(&mut self, id: u64) -> Result<(), String> {
            let size = self.live.remove(&id).ok_or("free of unknown id")?;
            self.cur -= size;
            Ok(())
        }
        fn write_ptr(&mut self, from: u64, _slot: u64, _to: u64) -> Result<(), String> {
            self.live
                .contains_key(&from)
                .then_some(())
                .ok_or("write into dead object".into())
        }
        fn mechanism(&self) -> MechanismBreakdown {
            MechanismBreakdown::default()
        }
        fn peak_footprint(&self) -> u64 {
            self.peak
        }
        fn peak_live(&self) -> u64 {
            self.peak
        }
    }

    #[test]
    fn null_heap_replays_all_traces() {
        for p in profiles::all() {
            let trace = TraceGenerator::new(p, 1.0 / 1024.0, 9).generate();
            let mut h = NullHeap::default();
            let report = run_trace(&mut h, &trace).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(report.events as usize, trace.events.len());
            assert!((report.normalized_time - 1.0).abs() < 1e-12, "{}", p.name);
            assert!((report.normalized_memory - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn replay_errors_carry_event_and_op_context() {
        struct FailingHeap;
        impl WorkloadHeap for FailingHeap {
            fn malloc(&mut self, _id: u64, _size: u64) -> Result<(), String> {
                Ok(())
            }
            fn free(&mut self, _id: u64) -> Result<(), String> {
                Err("quarantine full".into())
            }
            fn write_ptr(&mut self, _from: u64, _slot: u64, _to: u64) -> Result<(), String> {
                Ok(())
            }
            fn mechanism(&self) -> MechanismBreakdown {
                MechanismBreakdown::default()
            }
            fn peak_footprint(&self) -> u64 {
                0
            }
            fn peak_live(&self) -> u64 {
                0
            }
        }
        let p = profiles::all()[0];
        let trace = TraceGenerator::new(p, 1.0 / 1024.0, 9).generate();
        let err = run_trace(&mut FailingHeap, &trace).unwrap_err();
        assert!(matches!(err, ReplayError::Free { .. }));
        assert_eq!(err.message(), "quarantine full");
        assert!(
            matches!(trace.events[err.event()].op, crate::TraceOp::Free { id }
                if matches!(err, ReplayError::Free { id: eid, .. } if eid == id)),
            "error's event index points at the failing Free"
        );
        let rendered = err.to_string();
        assert!(rendered.contains("free(id="));
        assert!(rendered.contains("quarantine full"));
    }

    #[test]
    fn breakdown_total_sums() {
        let b = MechanismBreakdown {
            quarantine: 0.1,
            shadow: 0.2,
            sweep: 0.3,
            other: 0.4,
        };
        assert!((b.total() - 1.0).abs() < 1e-12);
    }
}
