//! Crash-consistent write-ahead journal for CHERIvoke revocation epochs.
//!
//! A revocation epoch is a multi-step state machine (seal quarantine bins
//! → paint the shadow map → sweep → drain → commit). A process that dies
//! mid-epoch can leave tagged capabilities pointing into granules the
//! allocator later reuses — exactly the temporal-safety violation
//! CHERIvoke exists to prevent. This crate records each transition as an
//! append-only, checksummed record so recovery
//! ([`cherivoke::CherivokeHeap::recover`]) can deterministically classify
//! the interrupted epoch and either roll it forward (sweeps are
//! idempotent) or re-open a partially sealed quarantine.
//!
//! # On-disk format (version 1)
//!
//! The file is mmap-friendly: a fixed 24-byte header followed by
//! little-endian, length-prefixed frames. The header follows the
//! magic/version/backward-compat-buffer convention used by the repo's
//! other binary formats:
//!
//! ```text
//! offset 0   magic      b"CVJ"
//! offset 3   version    1
//! offset 4   alignment  4 zero bytes (reserved, keeps frames 8-aligned)
//! offset 8   buffer     16 zero bytes (reserved for future header fields)
//! ```
//!
//! Each frame is `[u32 len][u8 kind][payload][u32 checksum]` where `len`
//! counts the kind byte plus the payload, and the checksum is FNV-1a/32
//! over the kind byte plus the payload. The reader is tolerant: a torn
//! or corrupt tail (short write at crash time) terminates the scan and is
//! reported via [`ReadOutcome::torn_tail`] rather than an error — only a
//! bad header or unsupported version is fatal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Journal file magic: the first three header bytes.
pub const MAGIC: [u8; 3] = *b"CVJ";

/// Current journal format version.
pub const VERSION: u8 = 1;

/// Fixed header length in bytes (magic + version + alignment + buffer).
pub const HEADER_LEN: usize = 24;

/// Largest frame the reader will accept; anything longer is treated as a
/// corrupt tail. Bounds allocation when scanning damaged files.
const MAX_FRAME_LEN: u32 = 1 << 24;

const KIND_EPOCH_OPEN: u8 = 1;
const KIND_BINS_SEALED: u8 = 2;
const KIND_SHADOW_PAINTED: u8 = 3;
const KIND_CHUNK_SWEPT: u8 = 4;
const KIND_EPOCH_COMMITTED: u8 = 5;

/// One epoch state-machine transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A revocation epoch opened. `backend` is the backend discriminant
    /// (informational; recovery re-derives behavior from the heap's own
    /// policy), `mask` the quarantine-bin selection, and `full` marks a
    /// full-heap cycle (`revoke_now`) whose roll-forward drains *all*
    /// quarantine rather than just the sealed portion.
    EpochOpen {
        /// Monotonic epoch sequence number.
        epoch: u64,
        /// Backend discriminant at the time the epoch opened.
        backend: u8,
        /// Quarantine-bin selection mask.
        mask: u64,
        /// Whether this is a full-heap (`revoke_now`-style) cycle.
        full: bool,
    },
    /// The quarantine bins selected by `mask` were sealed; `ranges` is
    /// the exact set of address ranges moved into the sealed list.
    BinsSealed {
        /// Epoch this sealing belongs to.
        epoch: u64,
        /// Sealed `(start, len)` ranges, in seal order.
        ranges: Vec<(u64, u64)>,
    },
    /// The shadow map finished painting the sealed ranges.
    ShadowPainted {
        /// Epoch whose shadow paint completed.
        epoch: u64,
    },
    /// One sweep slice completed. Advisory: recovery re-sweeps the whole
    /// heap (sweeps are idempotent), but these records bound how much
    /// work was lost and feed telemetry.
    ChunkSwept {
        /// Epoch the slice belonged to.
        epoch: u64,
        /// Slice start address.
        start: u64,
        /// Slice length in bytes.
        len: u64,
    },
    /// The epoch drained its sealed quarantine and cleared the shadow
    /// map; the heap is back in a steady state.
    EpochCommitted {
        /// Epoch that committed.
        epoch: u64,
    },
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::EpochOpen { .. } => KIND_EPOCH_OPEN,
            Record::BinsSealed { .. } => KIND_BINS_SEALED,
            Record::ShadowPainted { .. } => KIND_SHADOW_PAINTED,
            Record::ChunkSwept { .. } => KIND_CHUNK_SWEPT,
            Record::EpochCommitted { .. } => KIND_EPOCH_COMMITTED,
        }
    }

    fn encode_payload(&self, out: &mut BytesMut) {
        match self {
            Record::EpochOpen {
                epoch,
                backend,
                mask,
                full,
            } => {
                out.put_u64_le(*epoch);
                out.put_u8(*backend);
                out.put_u64_le(*mask);
                out.put_u8(u8::from(*full));
            }
            Record::BinsSealed { epoch, ranges } => {
                out.put_u64_le(*epoch);
                out.put_u32_le(ranges.len() as u32);
                for (start, len) in ranges {
                    out.put_u64_le(*start);
                    out.put_u64_le(*len);
                }
            }
            Record::ShadowPainted { epoch } | Record::EpochCommitted { epoch } => {
                out.put_u64_le(*epoch);
            }
            Record::ChunkSwept { epoch, start, len } => {
                out.put_u64_le(*epoch);
                out.put_u64_le(*start);
                out.put_u64_le(*len);
            }
        }
    }

    /// Decodes a payload; `None` on any structural mismatch (treated as
    /// a corrupt record by the reader).
    fn decode(kind: u8, payload: &[u8]) -> Option<Record> {
        let mut buf = Bytes::from(payload.to_vec());
        let rec = match kind {
            KIND_EPOCH_OPEN => {
                if buf.remaining() != 18 {
                    return None;
                }
                Record::EpochOpen {
                    epoch: buf.get_u64_le(),
                    backend: buf.get_u8(),
                    mask: buf.get_u64_le(),
                    full: buf.get_u8() != 0,
                }
            }
            KIND_BINS_SEALED => {
                if buf.remaining() < 12 {
                    return None;
                }
                let epoch = buf.get_u64_le();
                let count = buf.get_u32_le() as usize;
                if buf.remaining() != count.checked_mul(16)? {
                    return None;
                }
                let mut ranges = Vec::with_capacity(count);
                for _ in 0..count {
                    ranges.push((buf.get_u64_le(), buf.get_u64_le()));
                }
                Record::BinsSealed { epoch, ranges }
            }
            KIND_SHADOW_PAINTED => {
                if buf.remaining() != 8 {
                    return None;
                }
                Record::ShadowPainted {
                    epoch: buf.get_u64_le(),
                }
            }
            KIND_CHUNK_SWEPT => {
                if buf.remaining() != 24 {
                    return None;
                }
                Record::ChunkSwept {
                    epoch: buf.get_u64_le(),
                    start: buf.get_u64_le(),
                    len: buf.get_u64_le(),
                }
            }
            KIND_EPOCH_COMMITTED => {
                if buf.remaining() != 8 {
                    return None;
                }
                Record::EpochCommitted {
                    epoch: buf.get_u64_le(),
                }
            }
            _ => return None,
        };
        Some(rec)
    }
}

/// FNV-1a/32 over `bytes` — cheap, dependency-free frame checksum.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn encode_header(out: &mut BytesMut) {
    out.put_slice(&MAGIC);
    out.put_u8(VERSION);
    out.put_slice(&[0u8; 4]); // alignment
    out.put_slice(&[0u8; 16]); // backward-compat buffer
}

/// Encodes one record as a standalone frame.
fn encode_frame(rec: &Record) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u8(rec.kind());
    rec.encode_payload(&mut body);
    let body = body.freeze();
    let mut frame = BytesMut::with_capacity(body.len() + 8);
    frame.put_u32_le(body.len() as u32);
    frame.put_slice(&body);
    frame.put_u32_le(fnv1a32(&body));
    frame.freeze().to_vec()
}

enum Sink {
    File(File),
    Memory(Vec<u8>),
}

/// An append-only journal writer.
///
/// Appends are **buffered**: [`Journal::append`] and
/// [`Journal::append_batch`] encode into an internal buffer and cost no
/// syscall; [`Journal::flush`] writes the pending frames in one
/// `write(2)`. Durability is therefore the *caller's* schedule — the
/// heap flushes before any armed crash point can fire (the write-ahead
/// contract recovery relies on) and at epoch commit, which prices the
/// whole journal at about one syscall per revocation epoch on the
/// service hot path. A crash without an armed crash point leaves no
/// heap image to recover from, so pending frames lost with it classify
/// exactly like a torn tail. Dropping a journal best-effort flushes.
pub struct Journal {
    sink: Sink,
    path: Option<PathBuf>,
    /// Encoded frames not yet written to a file sink.
    pending: Vec<u8>,
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field(
                "backing",
                &match self.sink {
                    Sink::File(_) => "file",
                    Sink::Memory(_) => "memory",
                },
            )
            .finish()
    }
}

impl Journal {
    /// Creates (truncating) a journal file at `path` and writes the
    /// header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = BytesMut::new();
        encode_header(&mut header);
        file.write_all(&header.freeze())?;
        file.flush()?;
        Ok(Journal {
            sink: Sink::File(file),
            path: Some(path.to_path_buf()),
            pending: Vec::new(),
        })
    }

    /// An in-memory journal (tests and the in-process crash probes);
    /// retrieve the encoded bytes with [`Journal::into_bytes`].
    pub fn in_memory() -> Journal {
        let mut header = BytesMut::new();
        encode_header(&mut header);
        Journal {
            sink: Sink::Memory(header.freeze().to_vec()),
            path: None,
            pending: Vec::new(),
        }
    }

    /// The file path backing this journal, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Appends one record to the buffer (memory sinks absorb it
    /// immediately). Call [`Journal::flush`] at a durability point.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        let frame = encode_frame(rec);
        match &mut self.sink {
            Sink::File(_) => self.pending.extend_from_slice(&frame),
            Sink::Memory(buf) => buf.extend_from_slice(&frame),
        }
        Ok(())
    }

    /// Appends a batch of records; exactly equivalent to appending each
    /// in order (the per-slice `ChunkSwept` burst uses it).
    pub fn append_batch(&mut self, recs: &[Record]) -> io::Result<()> {
        for rec in recs {
            self.append(rec)?;
        }
        Ok(())
    }

    /// Writes every pending frame to the backing file in one
    /// `write(2)`. No-op for memory sinks and empty buffers. This is
    /// the durability point: a frame is guaranteed to survive `abort()`
    /// only once a flush after its append has returned. A flush torn
    /// mid-write by a crash is classified exactly like any torn tail:
    /// whole frames survive, the partial frame is dropped.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Sink::File(file) = &mut self.sink {
            file.write_all(&self.pending)?;
            file.flush()?;
        }
        self.pending.clear();
        Ok(())
    }

    /// Bytes appended but not yet flushed to the sink. Callers batching
    /// flushes (one `write(2)` per few KiB rather than per epoch) poll
    /// this to decide when the buffer is worth a syscall.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Consumes an in-memory journal, returning its encoded bytes
    /// (header included). For file-backed journals flushes pending
    /// frames and returns the bytes written so far by re-reading the
    /// file.
    pub fn into_bytes(mut self) -> Vec<u8> {
        let _ = self.flush();
        match std::mem::replace(&mut self.sink, Sink::Memory(Vec::new())) {
            Sink::Memory(buf) => buf,
            Sink::File(_) => {
                let path = self.path.clone().expect("file sink always has a path");
                std::fs::read(&path).unwrap_or_default()
            }
        }
    }
}

/// Why a journal could not be opened at all. Torn or corrupt *records*
/// are not errors (see [`ReadOutcome::torn_tail`]); only an unusable
/// header is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file is shorter than the fixed header.
    TruncatedHeader,
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// The header version is newer than this reader understands.
    UnsupportedVersion(u8),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::TruncatedHeader => write!(f, "journal shorter than header"),
            JournalError::BadMagic => write!(f, "journal magic mismatch"),
            JournalError::UnsupportedVersion(v) => {
                write!(f, "journal version {v} newer than supported {VERSION}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// The result of scanning a journal: every intact record in order, plus
/// whether the scan stopped early at a torn or corrupt tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Records that passed framing and checksum validation, in append
    /// order.
    pub records: Vec<Record>,
    /// `true` if trailing bytes existed that did not form a valid frame
    /// — the expected signature of a crash mid-`append`.
    pub torn_tail: bool,
}

/// Scans journal `bytes` (header included). Never panics on garbage:
/// structural damage past the header terminates the scan via
/// [`ReadOutcome::torn_tail`].
pub fn read_bytes(bytes: &[u8]) -> Result<ReadOutcome, JournalError> {
    if bytes.len() < HEADER_LEN {
        return Err(JournalError::TruncatedHeader);
    }
    if bytes[..3] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = bytes[3];
    if version > VERSION {
        return Err(JournalError::UnsupportedVersion(version));
    }
    let mut outcome = ReadOutcome::default();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            outcome.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            outcome.torn_tail = true;
            break;
        }
        let len = len as usize;
        if rest.len() < 4 + len + 4 {
            outcome.torn_tail = true;
            break;
        }
        let body = &rest[4..4 + len];
        let stored = u32::from_le_bytes(rest[4 + len..4 + len + 4].try_into().expect("4 bytes"));
        if fnv1a32(body) != stored {
            outcome.torn_tail = true;
            break;
        }
        match Record::decode(body[0], &body[1..]) {
            Some(rec) => outcome.records.push(rec),
            None => {
                outcome.torn_tail = true;
                break;
            }
        }
        pos += 4 + len + 4;
    }
    Ok(outcome)
}

/// Reads and scans the journal file at `path`.
pub fn read_path(path: impl AsRef<Path>) -> io::Result<Result<ReadOutcome, JournalError>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(read_bytes(&bytes))
}

/// What the journal tail says about the epoch in flight when the
/// process died. Drives the recovery decision table (DESIGN.md §20).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailState {
    /// No epoch was in flight: either no records at all or the last
    /// epoch committed. Nothing to do.
    Clean,
    /// An epoch opened but no complete `BinsSealed` record exists (the
    /// seal itself may have been interrupted, or its record torn).
    /// Recovery re-opens the partially sealed quarantine — safe because
    /// sealed memory stays quarantined either way.
    SealInterrupted {
        /// The interrupted epoch.
        epoch: u64,
    },
    /// Bins were durably sealed but the epoch never committed. Recovery
    /// rolls forward: re-paint the recorded ranges, re-sweep the whole
    /// heap (idempotent), then drain.
    SweepInterrupted {
        /// The interrupted epoch.
        epoch: u64,
        /// Backend discriminant recorded at epoch open.
        backend: u8,
        /// Quarantine-bin mask recorded at epoch open.
        mask: u64,
        /// Whether this was a full-heap (`revoke_now`) cycle.
        full: bool,
        /// The sealed ranges to re-paint.
        ranges: Vec<(u64, u64)>,
        /// Whether the shadow paint had completed.
        painted: bool,
        /// Sweep slices recorded as complete (advisory).
        swept: Vec<(u64, u64)>,
    },
}

/// Classifies a record stream into the recovery decision table.
pub fn classify(records: &[Record]) -> TailState {
    struct Open {
        epoch: u64,
        backend: u8,
        mask: u64,
        full: bool,
        ranges: Option<Vec<(u64, u64)>>,
        painted: bool,
        swept: Vec<(u64, u64)>,
    }
    let mut open: Option<Open> = None;
    for rec in records {
        match rec {
            Record::EpochOpen {
                epoch,
                backend,
                mask,
                full,
            } => {
                open = Some(Open {
                    epoch: *epoch,
                    backend: *backend,
                    mask: *mask,
                    full: *full,
                    ranges: None,
                    painted: false,
                    swept: Vec::new(),
                });
            }
            Record::BinsSealed { epoch, ranges } => {
                if let Some(o) = open.as_mut() {
                    if o.epoch == *epoch {
                        o.ranges = Some(ranges.clone());
                    }
                }
            }
            Record::ShadowPainted { epoch } => {
                if let Some(o) = open.as_mut() {
                    if o.epoch == *epoch {
                        o.painted = true;
                    }
                }
            }
            Record::ChunkSwept { epoch, start, len } => {
                if let Some(o) = open.as_mut() {
                    if o.epoch == *epoch {
                        o.swept.push((*start, *len));
                    }
                }
            }
            Record::EpochCommitted { epoch } => {
                if open.as_ref().is_some_and(|o| o.epoch == *epoch) {
                    open = None;
                }
            }
        }
    }
    match open {
        None => TailState::Clean,
        Some(o) => match o.ranges {
            None => TailState::SealInterrupted { epoch: o.epoch },
            Some(ranges) => TailState::SweepInterrupted {
                epoch: o.epoch,
                backend: o.backend,
                mask: o.mask,
                full: o.full,
                ranges,
                painted: o.painted,
                swept: o.swept,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::EpochOpen {
                epoch: 7,
                backend: 1,
                mask: 0b101,
                full: false,
            },
            Record::BinsSealed {
                epoch: 7,
                ranges: vec![(0x1000, 0x200), (0x4000, 0x80)],
            },
            Record::ShadowPainted { epoch: 7 },
            Record::ChunkSwept {
                epoch: 7,
                start: 0,
                len: 4096,
            },
            Record::EpochCommitted { epoch: 7 },
        ]
    }

    #[test]
    fn append_batch_is_byte_identical_to_sequential_appends() {
        let records = sample_records();
        let mut batched = Journal::in_memory();
        batched.append_batch(&records).expect("batch append");
        assert_eq!(batched.into_bytes(), encode_all(&records));
    }

    #[test]
    fn append_batch_to_a_file_reads_back_whole() {
        let path = std::env::temp_dir().join(format!("cvj-batch-{}.cvj", std::process::id()));
        let records = sample_records();
        let mut j = Journal::create(&path).expect("create");
        j.append_batch(&records).expect("batch append");
        drop(j);
        let outcome = read_path(&path)
            .expect("readable file")
            .expect("valid journal");
        assert_eq!(outcome.records, records);
        assert!(!outcome.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    fn encode_all(records: &[Record]) -> Vec<u8> {
        let mut j = Journal::in_memory();
        for r in records {
            j.append(r).expect("in-memory append");
        }
        j.into_bytes()
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let outcome = read_bytes(&bytes).expect("valid header");
        assert!(!outcome.torn_tail);
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join("cvj-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("roundtrip-{}.cvj", std::process::id()));
        let records = sample_records();
        {
            let mut j = Journal::create(&path).expect("create");
            for r in &records {
                j.append(r).expect("append");
            }
        }
        let outcome = read_path(&path).expect("io").expect("header");
        assert!(!outcome.torn_tail);
        assert_eq!(outcome.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let records = sample_records();
        let full = encode_all(&records);
        // Byte offsets at which a cut lands exactly between frames: a
        // truncation there is indistinguishable from a shorter journal.
        let boundaries: Vec<usize> = (0..records.len())
            .map(|n| encode_all(&records[..n]).len())
            .collect();
        for cut in HEADER_LEN..full.len() {
            let outcome = read_bytes(&full[..cut]).expect("valid header");
            let on_boundary = boundaries.contains(&cut);
            assert_eq!(
                outcome.torn_tail, !on_boundary,
                "cut at {cut}: torn_tail mis-reported"
            );
            // The intact prefix always parses.
            let parsed = outcome.records.len();
            assert_eq!(outcome.records, records[..parsed]);
        }
    }

    #[test]
    fn corruption_never_panics() {
        let full = encode_all(&sample_records());
        for i in 0..full.len() {
            for bit in 0..8 {
                let mut bytes = full.clone();
                bytes[i] ^= 1 << bit;
                // Must not panic; header damage errors, body damage
                // terminates the scan.
                let _ = read_bytes(&bytes);
            }
        }
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(read_bytes(&[]), Err(JournalError::TruncatedHeader));
        let mut bytes = encode_all(&[]);
        bytes[0] = b'X';
        assert_eq!(read_bytes(&bytes), Err(JournalError::BadMagic));
        let mut bytes = encode_all(&[]);
        bytes[3] = VERSION + 1;
        assert_eq!(
            read_bytes(&bytes),
            Err(JournalError::UnsupportedVersion(VERSION + 1))
        );
    }

    #[test]
    fn classify_clean_when_empty_or_committed() {
        assert_eq!(classify(&[]), TailState::Clean);
        assert_eq!(classify(&sample_records()), TailState::Clean);
    }

    #[test]
    fn classify_seal_interrupted_without_sealed_record() {
        let records = vec![Record::EpochOpen {
            epoch: 3,
            backend: 0,
            mask: 1,
            full: false,
        }];
        assert_eq!(classify(&records), TailState::SealInterrupted { epoch: 3 });
    }

    #[test]
    fn classify_sweep_interrupted_after_seal() {
        let records = vec![
            Record::EpochOpen {
                epoch: 4,
                backend: 2,
                mask: 0xff,
                full: true,
            },
            Record::BinsSealed {
                epoch: 4,
                ranges: vec![(0x100, 0x40)],
            },
            Record::ShadowPainted { epoch: 4 },
            Record::ChunkSwept {
                epoch: 4,
                start: 0,
                len: 64,
            },
        ];
        match classify(&records) {
            TailState::SweepInterrupted {
                epoch,
                backend,
                mask,
                full,
                ranges,
                painted,
                swept,
            } => {
                assert_eq!(epoch, 4);
                assert_eq!(backend, 2);
                assert_eq!(mask, 0xff);
                assert!(full);
                assert_eq!(ranges, vec![(0x100, 0x40)]);
                assert!(painted);
                assert_eq!(swept, vec![(0, 64)]);
            }
            other => panic!("expected SweepInterrupted, got {other:?}"),
        }
    }

    #[test]
    fn classify_torn_sealed_record_falls_back_to_seal_interrupted() {
        // A torn BinsSealed frame means the reader only sees EpochOpen:
        // the safe classification is SealInterrupted (re-open bins).
        let mut j = Journal::in_memory();
        j.append(&Record::EpochOpen {
            epoch: 9,
            backend: 0,
            mask: 1,
            full: false,
        })
        .unwrap();
        let open_only_len = j.into_bytes().len();

        let mut j = Journal::in_memory();
        j.append(&Record::EpochOpen {
            epoch: 9,
            backend: 0,
            mask: 1,
            full: false,
        })
        .unwrap();
        j.append(&Record::BinsSealed {
            epoch: 9,
            ranges: vec![(0x1000, 0x100)],
        })
        .unwrap();
        let bytes = j.into_bytes();
        let torn = &bytes[..open_only_len + 5]; // tear inside the sealed frame
        let outcome = read_bytes(torn).expect("header ok");
        assert!(outcome.torn_tail);
        assert_eq!(
            classify(&outcome.records),
            TailState::SealInterrupted { epoch: 9 }
        );
    }
}
