//! Property-based tests for the capability model's core invariants:
//! compression round-trips, monotonicity, and revocation permanence.

use cheri::{CapError, CapWord, Capability, CompressedBounds, Perms};
use proptest::prelude::*;

/// Arbitrary (base, len) pairs spanning tiny to huge objects.
fn bounds_strategy() -> impl Strategy<Value = (u64, u64)> {
    (
        0u64..=(1 << 48),
        prop_oneof![0u64..=4096, 4096u64..=(1 << 20), (1u64 << 20)..=(1 << 34),],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode_rounding always grants a superset region that round-trips
    /// through decode at every probe address inside it.
    #[test]
    fn encode_decode_roundtrip((base, len) in bounds_strategy()) {
        let (cb, abase, atop) = CompressedBounds::encode_rounding(base, len);
        prop_assert!(abase <= base);
        prop_assert!(atop >= base as u128 + len as u128);
        let (db, dt) = cb.decode(abase);
        prop_assert_eq!(db, abase);
        prop_assert_eq!(dt, atop);
    }

    /// Every in-bounds address decodes to identical bounds (the sweep can
    /// attribute any interior pointer to its allocation).
    #[test]
    fn interior_pointers_decode_identically(
        (base, len) in bounds_strategy(),
        frac in 0.0f64..1.0,
    ) {
        prop_assume!(len > 0);
        let (cb, abase, atop) = CompressedBounds::encode_rounding(base, len);
        let span = (atop - abase as u128) as u64;
        let probe = abase + (frac * span as f64) as u64;
        let probe = probe.min((atop - 1) as u64);
        let (pb, pt) = cb.decode(probe);
        prop_assert_eq!(pb, abase);
        prop_assert_eq!(pt, atop);
    }

    /// The granted region's padding is bounded: an unaligned base can force
    /// the encoder one exponent above the length's nominal alignment, so
    /// the waste at each end is below twice the representable alignment.
    #[test]
    fn rounding_waste_is_bounded((base, len) in bounds_strategy()) {
        let (_, abase, atop) = CompressedBounds::encode_rounding(base, len);
        let align = CompressedBounds::representable_alignment(len) as u128;
        prop_assert!(u128::from(base - abase) < 2 * align);
        prop_assert!(atop - (base as u128 + len as u128) < 2 * align);
    }

    /// representable_length is idempotent and satisfies its contract.
    #[test]
    fn representable_length_contract(len in 0u64..=(1 << 50)) {
        let rl = CompressedBounds::representable_length(len);
        prop_assert!(rl >= len);
        prop_assert_eq!(CompressedBounds::representable_length(rl), rl);
        // An allocation padded to rl at alignment encodes exactly.
        let align = CompressedBounds::representable_alignment(len);
        prop_assert!(CompressedBounds::encode_exact(align, rl).is_ok()
            || CompressedBounds::encode_exact(0, rl).is_ok());
    }

    /// Derivation can never enlarge the authorised region.
    #[test]
    fn set_bounds_is_monotonic(
        (base, len) in bounds_strategy(),
        sub_off in 0u64..=4096,
        sub_len in 0u64..=4096,
    ) {
        let parent = Capability::root().set_bounds(base, len).unwrap();
        let pbase = parent.base();
        let ptop = parent.top();
        let want_base = pbase.saturating_add(sub_off);
        match parent.set_bounds(want_base, sub_len) {
            Ok(child) => {
                prop_assert!(child.base() >= pbase);
                prop_assert!(child.top() <= ptop);
                prop_assert!(child.perms().is_subset_of(parent.perms()));
            }
            Err(CapError::MonotonicityViolation) => {
                // Must only happen when the (rounded) request truly overflows
                // the parent.
                let (_, ab, at) = CompressedBounds::encode_rounding(want_base, sub_len);
                prop_assert!(ab < pbase || at > ptop);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// CapWord encode/decode preserves every observable field.
    #[test]
    fn capword_roundtrip((base, len) in bounds_strategy(), addr_off in 0u64..=512, perm_bits in 0u16..=0x7fff) {
        let cap = Capability::root()
            .set_bounds(base, len).unwrap()
            .with_perms(Perms::from_bits(perm_bits)).unwrap();
        let cap = match cap.incremented(addr_off as i64) {
            Ok(c) => c,
            Err(_) => cap,
        };
        let back = CapWord::encode(&cap).decode(true);
        prop_assert_eq!(back.address(), cap.address());
        prop_assert_eq!(back.base(), cap.base());
        prop_assert_eq!(back.top(), cap.top());
        prop_assert_eq!(back.perms(), cap.perms());
    }

    /// A cleared capability stays dead under every further derivation.
    #[test]
    fn revocation_is_permanent((base, len) in bounds_strategy()) {
        let cap = Capability::root().set_bounds(base, len).unwrap();
        let dead = cap.cleared();
        prop_assert_eq!(dead.set_bounds(base, 1), Err(CapError::TagCleared));
        prop_assert_eq!(dead.with_perms(Perms::LOAD), Err(CapError::TagCleared));
        prop_assert_eq!(
            dead.check_access(dead.address(), 1, Perms::NONE),
            Err(CapError::TagCleared)
        );
        // Round-tripping through memory without the tag keeps it dead.
        let back = CapWord::encode(&dead).decode(false);
        prop_assert!(!back.tag());
    }

    /// Arbitrary 128-bit data never decodes to a tagged capability and never
    /// panics — the sweep must be able to inspect any heap word.
    #[test]
    fn arbitrary_data_is_inert(bits in any::<u128>()) {
        let c = CapWord::from_bits(bits).decode(false);
        prop_assert!(!c.tag());
        let _ = c.base();
        let _ = c.top();
        let _ = c.length();
    }

    /// Address wandering: if with_address succeeds, bounds are unchanged; if
    /// it fails, the hardware-style variant clears the tag.
    #[test]
    fn wandering_preserves_bounds_or_kills(
        (base, len) in bounds_strategy(),
        delta in -(1i64 << 40)..(1i64 << 40),
    ) {
        let cap = Capability::root().set_bounds(base, len).unwrap();
        let target = cap.address().wrapping_add(delta as u64);
        match cap.with_address(target) {
            Ok(moved) => {
                prop_assert_eq!(moved.base(), cap.base());
                prop_assert_eq!(moved.top(), cap.top());
                prop_assert!(moved.tag());
            }
            Err(CapError::UnrepresentableAddress { .. }) => {
                let killed = cap.with_address_clearing(target);
                prop_assert!(!killed.tag());
                prop_assert_eq!(killed.address(), target);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}
