//! In-memory 128-bit capability representation.
//!
//! A capability occupies 16 bytes of memory (figure 2 of the paper): the low
//! 64 bits are the address, the high 64 bits pack permissions, object type
//! and the compressed bounds. The **tag bit is not stored in these 128
//! bits** — it lives in the tagged-memory subsystem's out-of-band tag
//! storage, which is what makes capabilities unforgeable: writing these 16
//! bytes as data produces an untagged word that conveys no authority.
//!
//! Bit layout of the metadata half (bits 64..128 of the word):
//!
//! ```text
//!  127        113 112        98 97     92 91      78 77      64
//! +--------------+-------------+---------+----------+----------+
//! |   perms(15)  |  otype(15)  |  E(6)   |  B(14)   |  T(14)   |
//! +--------------+-------------+---------+----------+----------+
//! ```
//!
//! One modelling note: the in-memory object type is 15 bits; the reserved
//! "unsealed" encoding is zero so that a zeroed word (what revocation
//! leaves behind) decodes to an unsealed null capability, as in real CHERI.

use core::fmt;

use crate::{CapError, Capability, CompressedBounds, OType, Perms};

const OTYPE_MEM_MASK: u16 = 0x7fff;
const OTYPE_MEM_UNSEALED: u16 = 0;

/// A raw 16-byte capability word as stored in memory (tag kept out of band).
///
/// # Examples
///
/// ```
/// use cheri::{Capability, CapWord};
///
/// # fn main() -> Result<(), cheri::CapError> {
/// let cap = Capability::root_rw(0x4000, 0x1000).set_bounds_exact(0x4010, 64)?;
/// let word = CapWord::encode(&cap);
/// let back = word.decode(true);
/// assert_eq!(back.base(), cap.base());
/// assert_eq!(back.top(), cap.top());
/// assert_eq!(back.perms(), cap.perms());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapWord(u128);

impl CapWord {
    /// The all-zero word (what revocation leaves behind when it also zeroes,
    /// and what `NULL` encodes to).
    pub const ZERO: CapWord = CapWord(0);

    /// Encodes a capability's 128 stored bits (the tag is *not* encoded; the
    /// caller stores it out of band).
    pub fn encode(cap: &Capability) -> CapWord {
        let (e, b, t) = cap.compressed_bounds().raw();
        let ot = if cap.otype().is_unsealed() {
            OTYPE_MEM_UNSEALED
        } else {
            cap.otype().raw() & OTYPE_MEM_MASK
        };
        let meta: u64 = (u64::from(cap.perms().bits() & 0x7fff) << 49)
            | (u64::from(ot) << 34)
            | (u64::from(e & 0x3f) << 28)
            | (u64::from(b & 0x3fff) << 14)
            | u64::from(t & 0x3fff);
        CapWord(((meta as u128) << 64) | cap.address() as u128)
    }

    /// Decodes the 128 stored bits back into a register capability, attaching
    /// the out-of-band `tag`.
    ///
    /// Any bit pattern decodes to *something* (the sweep decodes raw heap
    /// words); only patterns paired with a genuine tag convey authority.
    pub fn decode(self, tag: bool) -> Capability {
        let addr = self.0 as u64;
        let meta = (self.0 >> 64) as u64;
        let t = (meta & 0x3fff) as u16;
        let b = ((meta >> 14) & 0x3fff) as u16;
        let e = ((meta >> 28) & 0x3f) as u8;
        let ot_raw = ((meta >> 34) & 0x7fff) as u16;
        let perms = Perms::from_bits(((meta >> 49) & 0x7fff) as u16);
        let otype = if ot_raw == OTYPE_MEM_UNSEALED {
            OType::UNSEALED
        } else {
            OType::from_raw(ot_raw)
        };
        Capability::from_parts(tag, addr, CompressedBounds::from_raw(e, b, t), perms, otype)
    }

    /// Fast path for the revocation sweep: decode only the **base** of the
    /// capability in this word, without materialising the full register form
    /// (paper §3.3's inner loop looks up only the base in the shadow map).
    #[inline]
    pub fn base(self) -> u64 {
        let addr = self.0 as u64;
        let meta = (self.0 >> 64) as u64;
        let t = (meta & 0x3fff) as u16;
        let b = ((meta >> 14) & 0x3fff) as u16;
        let e = ((meta >> 28) & 0x3f) as u8;
        CompressedBounds::from_raw(e, b, t).decode_base(addr)
    }

    /// [`CapWord::base`] computed directly from the two 64-bit halves of the
    /// stored word, without assembling a `u128` first, via the partial
    /// (base-only, 64-bit) bounds decode. The word-at-a-time sweep kernel
    /// reads capability words as two 8-byte loads (the shape a 64-bit
    /// machine's inner loop actually takes), so this skips both the
    /// widen/narrow round trip and the unused `top` reconstruction on its
    /// hottest path.
    #[inline]
    pub fn base_from_halves(lo: u64, hi: u64) -> u64 {
        let t = (hi & 0x3fff) as u16;
        let b = ((hi >> 14) & 0x3fff) as u16;
        let e = ((hi >> 28) & 0x3f) as u8;
        CompressedBounds::from_raw(e, b, t).decode_base_partial(lo)
    }

    /// Four [`CapWord::base_from_halves`] decodes in one call, batched the
    /// way a 256-bit vector lane holds them (lane `i` of `lo`/`hi` is the
    /// low/high half of candidate word `i`). SIMD sweep kernels use this as
    /// the scalar anchor their lane-parallel decode must match bit-for-bit,
    /// and as the batch shape the compiler can keep in flight when vector
    /// units are unavailable.
    #[inline]
    pub fn bases_from_halves_x4(lo: [u64; 4], hi: [u64; 4]) -> [u64; 4] {
        [
            CapWord::base_from_halves(lo[0], hi[0]),
            CapWord::base_from_halves(lo[1], hi[1]),
            CapWord::base_from_halves(lo[2], hi[2]),
            CapWord::base_from_halves(lo[3], hi[3]),
        ]
    }

    /// The raw 128-bit value.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Builds a word from its raw 128-bit value.
    #[inline]
    pub const fn from_bits(bits: u128) -> CapWord {
        CapWord(bits)
    }

    /// Serialises to 16 little-endian bytes (the memory image format used by
    /// the tagged-memory subsystem and core dumps).
    #[inline]
    pub fn to_le_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Reads a word from 16 little-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CapError::Misaligned`] if `bytes` is not exactly 16 bytes
    /// long (callers slice from aligned memory, so length doubles as the
    /// alignment witness here).
    pub fn try_from_le_bytes(bytes: &[u8]) -> Result<CapWord, CapError> {
        let arr: [u8; 16] = bytes.try_into().map_err(|_| CapError::Misaligned {
            addr: bytes.len() as u64,
        })?;
        Ok(CapWord(u128::from_le_bytes(arr)))
    }
}

impl From<[u8; 16]> for CapWord {
    fn from(bytes: [u8; 16]) -> Self {
        CapWord(u128::from_le_bytes(bytes))
    }
}

impl From<CapWord> for [u8; 16] {
    fn from(w: CapWord) -> Self {
        w.to_le_bytes()
    }
}

impl fmt::Debug for CapWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CapWord({:#034x})", self.0)
    }
}

impl fmt::LowerHex for CapWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_caps() -> Vec<Capability> {
        let root = Capability::root();
        vec![
            Capability::NULL,
            root,
            root.set_bounds_exact(0x4000, 64).unwrap(),
            root.set_bounds(0xdead_0000, 1 << 21).unwrap(),
            root.with_perms(Perms::LOAD | Perms::LOAD_CAP).unwrap(),
            root.set_bounds_exact(0x4000, 64)
                .unwrap()
                .incremented(32)
                .unwrap(),
        ]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for cap in sample_caps() {
            let w = CapWord::encode(&cap);
            let back = w.decode(cap.tag());
            assert_eq!(back.tag(), cap.tag());
            assert_eq!(back.address(), cap.address());
            assert_eq!(back.base(), cap.base());
            assert_eq!(back.top(), cap.top());
            assert_eq!(back.perms(), cap.perms());
            assert_eq!(back.otype(), cap.otype());
        }
    }

    #[test]
    fn fast_base_matches_full_decode() {
        for cap in sample_caps() {
            let w = CapWord::encode(&cap);
            assert_eq!(w.base(), w.decode(true).base());
            let lo = w.bits() as u64;
            let hi = (w.bits() >> 64) as u64;
            assert_eq!(CapWord::base_from_halves(lo, hi), w.base());
        }
    }

    #[test]
    fn base_from_halves_matches_on_raw_patterns() {
        // The sweep feeds raw (possibly non-capability) memory through the
        // halves path, so it must agree with the u128 path on anything.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..10_000 {
            let (lo, hi) = (next(), next());
            let w = CapWord::from_bits((u128::from(hi) << 64) | u128::from(lo));
            assert_eq!(CapWord::base_from_halves(lo, hi), w.base());
        }
    }

    #[test]
    fn batched_bases_match_single_decodes() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..2_500 {
            let lo = [next(), next(), next(), next()];
            let hi = [next(), next(), next(), next()];
            let batch = CapWord::bases_from_halves_x4(lo, hi);
            for i in 0..4 {
                assert_eq!(batch[i], CapWord::base_from_halves(lo[i], hi[i]));
            }
        }
    }

    #[test]
    fn null_encodes_to_zero() {
        assert_eq!(
            CapWord::encode(&Capability::NULL).bits() & ((1 << 64) - 1),
            0
        );
        // Decoding the zero word gives a dead, empty capability.
        let z = CapWord::ZERO.decode(false);
        assert!(!z.tag());
        assert_eq!(z.address(), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let cap = Capability::root()
            .set_bounds_exact(0x1234_5670, 128)
            .unwrap();
        let w = CapWord::encode(&cap);
        let bytes = w.to_le_bytes();
        assert_eq!(CapWord::try_from_le_bytes(&bytes).unwrap(), w);
        assert_eq!(CapWord::from(bytes), w);
        let back: [u8; 16] = w.into();
        assert_eq!(back, bytes);
    }

    #[test]
    fn short_byte_slices_are_rejected() {
        assert!(CapWord::try_from_le_bytes(&[0u8; 8]).is_err());
        assert!(CapWord::try_from_le_bytes(&[0u8; 17]).is_err());
    }

    #[test]
    fn data_bit_patterns_decode_without_panicking() {
        for pattern in [0u128, u128::MAX, 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10] {
            let w = CapWord::from_bits(pattern);
            let c = w.decode(false);
            let _ = c.base();
            let _ = c.top();
            assert!(!c.tag());
        }
    }

    #[test]
    fn sealed_cap_roundtrips() {
        let sealer = Capability::root()
            .set_bounds_exact(9, 1)
            .unwrap()
            .with_perms(Perms::SEAL)
            .unwrap();
        let cap = Capability::root()
            .set_bounds_exact(0x8000, 32)
            .unwrap()
            .sealed_with(&sealer)
            .unwrap();
        let back = CapWord::encode(&cap).decode(true);
        assert!(back.is_sealed());
        assert_eq!(back.otype(), cap.otype());
    }
}
