//! Error type for capability operations.

use core::fmt;

/// The ways a capability operation can fail.
///
/// Each variant corresponds to a hardware exception class in a real CHERI
/// implementation; the simulator surfaces them as recoverable errors so
/// experiments can count and classify faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CapError {
    /// The capability's tag is clear — it is plain data and authorises
    /// nothing. Revoked capabilities dereference to this error forever.
    TagCleared,
    /// The capability is sealed and must be unsealed before use.
    Sealed,
    /// The access fell outside the capability's `[base, top)` bounds.
    BoundsViolation {
        /// First byte of the attempted access.
        addr: u64,
        /// Length of the attempted access in bytes.
        len: u64,
    },
    /// The capability lacks a permission required by the operation.
    PermissionDenied,
    /// Requested bounds cannot be represented exactly in the compressed
    /// encoding (and exact representation was demanded).
    Unrepresentable {
        /// Requested base.
        base: u64,
        /// Requested length.
        len: u64,
    },
    /// A derivation attempted to *grow* bounds or add permissions, violating
    /// capability monotonicity.
    MonotonicityViolation,
    /// The new address left the representable region around the bounds, so
    /// the capability can no longer round-trip through its compressed form.
    UnrepresentableAddress {
        /// The offending address.
        addr: u64,
    },
    /// An in-memory capability access was not 16-byte aligned.
    Misaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// Arithmetic on the address overflowed the 64-bit address space.
    AddressOverflow,
    /// The object types did not match during unseal/invoke.
    OTypeMismatch,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::TagCleared => write!(f, "capability tag is cleared"),
            CapError::Sealed => write!(f, "capability is sealed"),
            CapError::BoundsViolation { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#x} violates bounds")
            }
            CapError::PermissionDenied => write!(f, "capability lacks required permission"),
            CapError::Unrepresentable { base, len } => {
                write!(
                    f,
                    "bounds base={base:#x} len={len:#x} are not exactly representable"
                )
            }
            CapError::MonotonicityViolation => {
                write!(
                    f,
                    "derivation would increase rights (monotonicity violation)"
                )
            }
            CapError::UnrepresentableAddress { addr } => {
                write!(f, "address {addr:#x} leaves the representable region")
            }
            CapError::Misaligned { addr } => {
                write!(
                    f,
                    "capability memory access at {addr:#x} is not 16-byte aligned"
                )
            }
            CapError::AddressOverflow => write!(f, "address arithmetic overflowed"),
            CapError::OTypeMismatch => write!(f, "object type mismatch"),
        }
    }
}

impl std::error::Error for CapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples = [
            CapError::TagCleared,
            CapError::Sealed,
            CapError::BoundsViolation { addr: 0x40, len: 8 },
            CapError::PermissionDenied,
            CapError::Unrepresentable { base: 1, len: 2 },
            CapError::MonotonicityViolation,
            CapError::UnrepresentableAddress { addr: 3 },
            CapError::Misaligned { addr: 5 },
            CapError::AddressOverflow,
            CapError::OTypeMismatch,
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CapError>();
    }
}
