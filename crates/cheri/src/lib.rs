//! Software model of CHERI capabilities, as used by CHERIvoke.
//!
//! This crate implements a faithful-in-behaviour model of 128-bit CHERI
//! capabilities (the CHERI-128 / "CHERI Concentrate" format referenced by the
//! paper, figure 2): an unforgeable, bounded reference consisting of
//!
//! * a 64-bit **address** (the pointer value the program manipulates),
//! * compressed **bounds** (base and top recovered relative to the address
//!   via a shared exponent),
//! * a **permission** set,
//! * an optional **seal** (object type), and
//! * an out-of-band 1-bit **tag** distinguishing capabilities from data.
//!
//! Two properties matter for temporal safety and are enforced throughout:
//!
//! 1. **Monotonicity** — no operation can grow bounds or add permissions
//!    (paper §2.2). [`Capability::set_bounds`] only shrinks;
//!    [`Capability::with_perms`] only intersects.
//! 2. **Precise identification** — a capability's [`Capability::base`] always
//!    lies within its original allocation, even when the address wanders out
//!    of bounds (paper footnote 2), so a revocation sweep can attribute every
//!    reference to exactly one allocation.
//!
//! # Example
//!
//! ```
//! use cheri::{Capability, Perms};
//!
//! # fn main() -> Result<(), cheri::CapError> {
//! // The allocator derives a bounded capability from its heap-spanning root.
//! let root = Capability::root_rw(0x1000_0000, 0x1000_0000);
//! let obj = root.set_bounds_exact(0x1000_0040, 64)?;
//! assert_eq!(obj.base(), 0x1000_0040);
//! assert_eq!(obj.length(), 64);
//!
//! // Bounds are monotonic: attempting to widen them fails.
//! assert!(obj.set_bounds_exact(0x1000_0000, 4096).is_err());
//!
//! // Revocation clears the tag; the reference is dead forever.
//! let dangling = obj.cleared();
//! assert!(!dangling.tag());
//! assert!(dangling.check_access(0x1000_0040, 8, Perms::LOAD).is_err());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capability;
mod capword;
pub mod color;
mod compress;
mod error;
mod otype;
mod perms;

pub use capability::Capability;
pub use capword::CapWord;
pub use color::{
    color_mask_of_range, color_of, poison_bit, poison_mask_of_range, COLOR_BITS,
    COLOR_REGION_BYTES, NUM_COLORS, POISON_REGION_BYTES,
};
pub use compress::{CompressedBounds, MANTISSA_WIDTH, MAX_EXPONENT};
pub use error::CapError;
pub use otype::OType;
pub use perms::Perms;

/// The capability granule: bounds and shadow-map bookkeeping operate on
/// 16-byte units (paper §3.2 chooses 16 bytes to match dlmalloc's default
/// alignment).
pub const GRANULE: u64 = 16;

/// Size in bytes of an in-memory capability (CHERI-128).
pub const CAP_SIZE: u64 = 16;

/// Rounds `x` up to the next multiple of [`GRANULE`].
///
/// # Examples
///
/// ```
/// assert_eq!(cheri::granule_round_up(1), 16);
/// assert_eq!(cheri::granule_round_up(16), 16);
/// assert_eq!(cheri::granule_round_up(17), 32);
/// assert_eq!(cheri::granule_round_up(0), 0);
/// ```
#[inline]
pub const fn granule_round_up(x: u64) -> u64 {
    (x + GRANULE - 1) & !(GRANULE - 1)
}

/// Rounds `x` down to a multiple of [`GRANULE`].
///
/// # Examples
///
/// ```
/// assert_eq!(cheri::granule_round_down(31), 16);
/// assert_eq!(cheri::granule_round_down(32), 32);
/// ```
#[inline]
pub const fn granule_round_down(x: u64) -> u64 {
    x & !(GRANULE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_rounding_is_idempotent() {
        for x in [0u64, 1, 15, 16, 17, 31, 32, 1000, u64::MAX - 64] {
            let up = granule_round_up(x);
            assert_eq!(granule_round_up(up), up);
            let down = granule_round_down(x);
            assert_eq!(granule_round_down(down), down);
            assert!(down <= x);
            assert!(up >= x || x > u64::MAX - GRANULE);
        }
    }
}
