//! Compressed capability bounds (CHERI Concentrate-style).
//!
//! CHERI-128 does not store full 64-bit base and top; it stores two
//! [`MANTISSA_WIDTH`]-bit windows (`B`, `T`) plus a shared exponent `E`, and
//! reconstructs the full bounds *relative to the capability's address* (paper
//! figure 2; Woodruff et al., "CHERI Concentrate"). Consequences modelled
//! here, all of which the CHERIvoke allocator must respect:
//!
//! * Bounds of large objects must be aligned to `2^E` — precision degrades
//!   with object size, so allocators pad requests to *representable* lengths
//!   ([`CompressedBounds::representable_length`]).
//! * An address may wander out of bounds but only within a bounded
//!   *representable region* around the object; beyond that the capability
//!   can no longer be encoded and hardware clears its tag.
//! * The reconstructed **base always lies within the original allocation**,
//!   which is the property CHERIvoke's shadow-map lookup relies on.
//!
//! The model uses the standard CC reconstruction with corrections derived
//! from the representable limit `R = B - 2^(MW-2)`. One documented
//! simplification: we store the full `MW`-bit `T` field rather than deriving
//! its top bits from `B` (we have spare metadata bits in software), which
//! changes no observable behaviour of the encoding: lengths up to
//! `2^(E + MW - 2)` are representable at alignment `2^E`, exactly as in
//! CHERI Concentrate.

use crate::CapError;

/// Width in bits of the `B` and `T` bounds mantissas.
pub const MANTISSA_WIDTH: u32 = 14;

/// Largest legal exponent. At `E = MAX_EXPONENT` the representable window
/// spans the full 64-bit address space.
pub const MAX_EXPONENT: u32 = 64 - (MANTISSA_WIDTH - 2);

const MW: u32 = MANTISSA_WIDTH;
const MASK: u64 = (1 << MW) - 1;
/// Largest mantissa length: lengths (>> E) must not exceed this.
const MAX_LEN_MANT: u64 = 1 << (MW - 2);

/// Compressed bounds: exponent plus `B`/`T` mantissa windows.
///
/// Together with a 64-bit address this reconstructs full bounds; see
/// [`CompressedBounds::decode`].
///
/// # Examples
///
/// ```
/// use cheri::CompressedBounds;
///
/// let (cb, base, top) = CompressedBounds::encode_rounding(0x4000, 100);
/// assert_eq!(base, 0x4000);
/// assert_eq!(top, 0x4000 + 100); // small lengths are exact
/// let (b2, t2) = cb.decode(0x4000);
/// assert_eq!((b2, t2), (base, top as u128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompressedBounds {
    e: u8,
    b: u16,
    t: u16,
}

impl CompressedBounds {
    /// Bounds covering the entire 64-bit address space (the power-on root).
    pub const FULL: CompressedBounds = CompressedBounds {
        e: MAX_EXPONENT as u8,
        b: 0,
        t: (MAX_LEN_MANT) as u16,
    };

    /// Empty bounds at address zero.
    pub const EMPTY: CompressedBounds = CompressedBounds { e: 0, b: 0, t: 0 };

    /// Reassembles compressed bounds from raw fields (used when decoding an
    /// in-memory capability word). Fields are masked to their legal widths.
    #[inline]
    pub fn from_raw(e: u8, b: u16, t: u16) -> CompressedBounds {
        CompressedBounds {
            e: e.min(MAX_EXPONENT as u8),
            b: (b as u64 & MASK) as u16,
            t: (t as u64 & MASK) as u16,
        }
    }

    /// Raw `(E, B, T)` fields, for serialising into a capability word.
    #[inline]
    pub const fn raw(self) -> (u8, u16, u16) {
        (self.e, self.b, self.t)
    }

    /// Encodes `base..base+len` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CapError::Unrepresentable`] if the bounds require rounding
    /// (base/top not aligned to the necessary `2^E`, or the length mantissa
    /// would overflow).
    pub fn encode_exact(base: u64, len: u64) -> Result<CompressedBounds, CapError> {
        let (cb, b, t) = Self::encode_rounding(base, len);
        if b == base && t == base as u128 + len as u128 {
            Ok(cb)
        } else {
            Err(CapError::Unrepresentable { base, len })
        }
    }

    /// Encodes the smallest representable bounds containing `base..base+len`,
    /// returning the encoding and the actual `(base, top)` granted.
    ///
    /// This is what a bounds-setting allocator uses: the granted region may
    /// be slightly larger than requested for big objects, so the allocator
    /// must pad the allocation itself to avoid overlap (see
    /// [`CompressedBounds::representable_length`]).
    pub fn encode_rounding(base: u64, len: u64) -> (CompressedBounds, u64, u128) {
        // Top is clamped to the end of the address space: a capability cannot
        // authorise beyond 2^64, and this keeps the exponent within range.
        let top = (base as u128 + len as u128).min(1u128 << 64);
        let mut e: u32 = 0;
        loop {
            let align = 1u128 << e;
            let abase = (base as u128) & !(align - 1);
            let atop = (top + align - 1) & !(align - 1);
            let alen = atop - abase;
            if alen >> e <= MAX_LEN_MANT as u128 {
                let b = ((abase >> e) as u64 & MASK) as u16;
                let t = ((atop >> e) as u64 & MASK) as u16;
                let cb = CompressedBounds { e: e as u8, b, t };
                return (cb, abase as u64, atop);
            }
            e += 1;
            debug_assert!(e <= MAX_EXPONENT);
        }
    }

    /// Reconstructs `(base, top)` from these bounds at address `addr`.
    ///
    /// Works for *any* bit pattern (the revocation sweep decodes raw memory
    /// words); for patterns that never came from [`CompressedBounds::encode_rounding`] the
    /// result is merely some pair with `base` computed modulo 2^64.
    #[inline]
    pub fn decode(self, addr: u64) -> (u64, u128) {
        let e = self.e as u32;
        let b = self.b as u64;
        let t = self.t as u64;
        let a_mid = (addr >> e) & MASK;
        let a_hi = (addr as u128) >> (e + MW);
        // Representable limit: one quarter-window below B.
        let r = b.wrapping_sub(MAX_LEN_MANT) & MASK;
        let hi = |x: u64| u128::from(x < r);
        let hib = hi(b);
        let hit = hi(t);
        let hia = hi(a_mid);
        // Corrections are in {-1, 0, +1}; compute in wrapping u128 arithmetic
        // and truncate the base to 64 bits (top may legitimately be 2^64).
        let cb = a_hi.wrapping_add(hib).wrapping_sub(hia);
        let ct = a_hi.wrapping_add(hit).wrapping_sub(hia);
        let base = (cb << (e + MW)).wrapping_add((b as u128) << e) as u64;
        let top = (ct << (e + MW)).wrapping_add((t as u128) << e) & ((1u128 << 65) - 1);
        (base, top)
    }

    /// The *base only* — what the revocation sweep uses to index the
    /// shadow map (paper §3.2: "a lookup in the shadow map using the base of
    /// each capability"). Runs the full reconstruction and discards the top;
    /// the word-at-a-time sweep kernel uses
    /// [`CompressedBounds::decode_base_partial`] instead.
    #[inline]
    pub fn decode_base(self, addr: u64) -> u64 {
        self.decode(addr).0
    }

    /// A **partial decode** of the base: skips the top reconstruction
    /// entirely and stays in 64-bit arithmetic — the fast path of the
    /// word-at-a-time sweep kernel, which only needs the base to probe the
    /// shadow map.
    ///
    /// The result is bit-identical to [`CompressedBounds::decode_base`] for
    /// every bit pattern: the full decode's base is its u128 value truncated
    /// to 64 bits, which depends only on the low `64 - (E + MW)` bits of the
    /// corrected upper address, so the u128 widening that `top` needs is
    /// unnecessary here. `partial_decode_matches_full_decode_on_arbitrary_patterns`
    /// pins the equivalence.
    #[inline]
    pub fn decode_base_partial(self, addr: u64) -> u64 {
        let e = self.e as u32;
        let b = self.b as u64;
        // E is capped at MAX_EXPONENT = 52, so `shift` can reach 66: the
        // whole corrected-upper term then falls outside the low 64 bits.
        let shift = e + MW;
        let a_mid = (addr >> e) & MASK;
        let a_hi = if shift >= 64 { 0 } else { addr >> shift };
        let r = b.wrapping_sub(MAX_LEN_MANT) & MASK;
        let cb = a_hi
            .wrapping_add(u64::from(b < r))
            .wrapping_sub(u64::from(a_mid < r));
        let hi = if shift >= 64 { 0 } else { cb << shift };
        hi.wrapping_add(b << e)
    }

    /// `true` if decoding at `addr` yields the same bounds as decoding at
    /// `probe` — i.e. `addr` lies in the representable region.
    #[inline]
    pub fn addr_is_representable(self, canonical: u64, addr: u64) -> bool {
        self.decode(canonical) == self.decode(addr)
    }

    /// The exponent of these bounds.
    #[inline]
    pub const fn exponent(self) -> u32 {
        self.e as u32
    }

    /// Smallest representable length that is `>= len` (the CRRL operation in
    /// the CHERI ISA): what an allocator should pad a request to so the
    /// granted bounds match the allocation exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// // Small lengths are always exact.
    /// assert_eq!(cheri::CompressedBounds::representable_length(100), 100);
    /// // Huge lengths round up to the encoding granularity.
    /// let l = cheri::CompressedBounds::representable_length((1 << 20) + 1);
    /// assert!(l >= (1 << 20) + 1);
    /// assert_eq!(l % cheri::CompressedBounds::representable_alignment((1 << 20) + 1), 0);
    /// ```
    pub fn representable_length(len: u64) -> u64 {
        let align = Self::representable_alignment(len);
        len.checked_add(align - 1)
            .map(|x| x & !(align - 1))
            .unwrap_or(!(align - 1))
    }

    /// Alignment (in bytes, a power of two) that both base and length must
    /// satisfy for `len` to be exactly representable (the CRAM operation,
    /// returned as the alignment rather than a mask).
    pub fn representable_alignment(len: u64) -> u64 {
        let mut e = 0u32;
        while (len + ((1 << e) - 1)) >> e > MAX_LEN_MANT {
            e += 1;
        }
        1 << e
    }
}

impl Default for CompressedBounds {
    fn default() -> Self {
        CompressedBounds::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: u64, len: u64) {
        let (cb, abase, atop) = CompressedBounds::encode_rounding(base, len);
        assert!(
            abase <= base,
            "granted base {abase:#x} above requested {base:#x}"
        );
        assert!(atop >= base as u128 + len as u128);
        let (db, dt) = cb.decode(abase);
        assert_eq!(db, abase, "base mismatch for base={base:#x} len={len:#x}");
        assert_eq!(dt, atop, "top mismatch for base={base:#x} len={len:#x}");
        // Every in-bounds address decodes identically.
        let mut probes = vec![abase];
        if atop > abase as u128 {
            probes.push(abase + ((atop - abase as u128) / 2) as u64);
            probes.push((atop - 1) as u64);
        }
        for probe in probes {
            let (pb, pt) = cb.decode(probe);
            assert_eq!(
                (pb, pt),
                (abase, atop),
                "probe {probe:#x} decoded differently"
            );
        }
    }

    #[test]
    fn small_bounds_are_exact() {
        for base in [0u64, 16, 4080, 1 << 30, (1 << 40) + 16] {
            for len in [0u64, 1, 8, 16, 100, 4096] {
                let (_, abase, atop) = CompressedBounds::encode_rounding(base, len);
                assert_eq!(abase, base);
                assert_eq!(atop, base as u128 + len as u128);
                roundtrip(base, len);
            }
        }
    }

    #[test]
    fn large_bounds_round_and_roundtrip() {
        for base in [0u64, 1 << 20, (1 << 33) + 4096, 0xdead_0000] {
            for len in [4097u64, 1 << 16, (1 << 20) + 3, (1 << 33) + 12345] {
                roundtrip(base, len);
            }
        }
    }

    #[test]
    fn full_address_space_is_representable() {
        let (cb, abase, atop) = CompressedBounds::encode_rounding(0, u64::MAX);
        assert_eq!(abase, 0);
        assert!(atop >= u64::MAX as u128);
        let (db, dt) = cb.decode(0);
        assert_eq!(db, 0);
        assert_eq!(dt, atop);
    }

    #[test]
    fn root_constant_covers_everything() {
        let (b, t) = CompressedBounds::FULL.decode(0);
        assert_eq!(b, 0);
        assert_eq!(t, 1u128 << 64);
        // And at an arbitrary address too.
        let (b, t) = CompressedBounds::FULL.decode(0xffff_ffff_ffff_0000);
        assert_eq!(b, 0);
        assert_eq!(t, 1u128 << 64);
    }

    #[test]
    fn exact_encoding_rejects_unaligned_large_bounds() {
        // A large length at an odd base cannot be exact.
        assert!(CompressedBounds::encode_exact(3, 1 << 20).is_err());
        // But small objects anywhere are exact.
        assert!(CompressedBounds::encode_exact(3, 64).is_ok());
    }

    #[test]
    fn representable_length_properties() {
        for len in [0u64, 1, 4096, 4097, 1 << 20, (1 << 40) + 7] {
            let rl = CompressedBounds::representable_length(len);
            assert!(rl >= len);
            let align = CompressedBounds::representable_alignment(len);
            assert_eq!(rl % align, 0);
            // A granule-aligned base at that alignment encodes exactly.
            assert!(CompressedBounds::encode_exact(align * 4, rl).is_ok());
        }
    }

    #[test]
    fn out_of_bounds_wandering_within_representable_region() {
        // A 1 MiB object: E > 0, so there is slack around the bounds.
        let (cb, base, top) = CompressedBounds::encode_rounding(1 << 30, 1 << 20);
        let top = top as u64;
        // Just past the top: still representable (decodes to same bounds).
        assert!(cb.addr_is_representable(base, top));
        assert!(cb.addr_is_representable(base, top + 64));
        // A full window away: no longer representable.
        let window = 1u64 << (cb.exponent() + MANTISSA_WIDTH);
        assert!(!cb.addr_is_representable(base, base.wrapping_add(window * 2)));
    }

    #[test]
    fn base_stays_within_original_allocation_when_wandering() {
        // Paper footnote 2: wherever the address legally wanders, the decoded
        // base must remain the original base.
        let (cb, base, top) = CompressedBounds::encode_rounding(0x4000_0000, 123456);
        let top = top as u64;
        for addr in [base, base + 1, top - 1, top, top + 128] {
            if cb.addr_is_representable(base, addr) {
                assert_eq!(cb.decode_base(addr), base);
            }
        }
    }

    #[test]
    fn partial_decode_matches_full_decode_on_arbitrary_patterns() {
        // The sweep decodes raw memory words, so the u64-only base path
        // must agree with the u128 reconstruction on *any* bit pattern,
        // including exponents at and beyond the cap and mantissas that
        // wrap the correction window.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            // xorshift64*: deterministic, dependency-free.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..20_000 {
            let r = next();
            let cb = CompressedBounds::from_raw((r >> 48) as u8, (r >> 16) as u16, r as u16);
            let addr = next();
            assert_eq!(
                cb.decode_base_partial(addr),
                cb.decode(addr).0,
                "divergence at {cb:?} addr={addr:#x}"
            );
        }
        // Boundary exponents around the shift >= 64 branch.
        for e in [49u8, 50, 51, 52, 0xff] {
            for addr in [0u64, u64::MAX, 1 << 63, 0x1234_5678_9abc_def0] {
                let cb = CompressedBounds::from_raw(e, 0x3fff, 0);
                assert_eq!(cb.decode_base_partial(addr), cb.decode(addr).0);
            }
        }
    }

    #[test]
    fn from_raw_masks_fields() {
        let cb = CompressedBounds::from_raw(0xff, 0xffff, 0xffff);
        assert!(cb.exponent() <= MAX_EXPONENT);
        let (_, b, t) = cb.raw();
        assert!(u64::from(b) <= MASK);
        assert!(u64::from(t) <= MASK);
    }
}
