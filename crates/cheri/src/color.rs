//! Capability **colors** and coarse **poison regions** — the address-space
//! partitions the sweep-avoidance revocation backends key on.
//!
//! The 128-bit [`crate::CapWord`] has no spare meta bits (perms, otype and
//! the compressed bounds use all 64), so a color cannot be stored as an
//! extra field without breaking the paper's encoding. Instead the color is
//! *carved from the capability bits that are already there*: the low
//! [`COLOR_BITS`] of the base address's [`COLOR_REGION_BYTES`]-aligned
//! region index. Every capability to an allocation therefore agrees on its
//! color — including copies forged via [`crate::Capability::root_rw`] —
//! and the allocator controls a chunk's color purely by where it places
//! it, exactly as a color-aware CHERI allocator would.
//!
//! Two granularities serve the two backends:
//!
//! - **Colors** (PICASSO-style): [`NUM_COLORS`] recycling classes striped
//!   across the heap in [`COLOR_REGION_BYTES`] runs. Quarantine is
//!   partitioned by color; a sweep for a revoked color set only needs to
//!   visit memory whose stored capabilities can carry those colors.
//! - **Poison regions** (PoisonCap-style): a flat map of
//!   [`POISON_REGION_BYTES`] regions, summarised as one bit each in a
//!   64-bit mask (aliased modulo 64 for address spaces larger than
//!   64 regions — aliasing only ever *adds* sweeps, never skips one).

/// Bits of color carried by a capability's base address.
pub const COLOR_BITS: u32 = 3;

/// Number of distinct capability colors (`1 << COLOR_BITS`).
pub const NUM_COLORS: u8 = 1 << COLOR_BITS;

/// Bytes per color stripe. 64 KiB keeps whole allocations (and the
/// allocator's neighbour coalescing) inside one color for everything
/// smaller than a stripe, while cycling all [`NUM_COLORS`] colors every
/// 512 KiB of heap.
pub const COLOR_REGION_BYTES: u64 = 64 * 1024;

/// Bytes per coarse poison region (PoisonCap's outer granularity).
pub const POISON_REGION_BYTES: u64 = 1 << 20;

/// The color of the allocation at `base`: its 64 KiB stripe index, modulo
/// [`NUM_COLORS`].
#[inline]
pub fn color_of(base: u64) -> u8 {
    ((base / COLOR_REGION_BYTES) & u64::from(NUM_COLORS - 1)) as u8
}

/// Bit mask (bit `c` = color `c`) of every color overlapped by
/// `[start, start + len)`. An empty range has no colors.
pub fn color_mask_of_range(start: u64, len: u64) -> u8 {
    if len == 0 {
        return 0;
    }
    let first = start / COLOR_REGION_BYTES;
    let last = (start + len - 1) / COLOR_REGION_BYTES;
    if last - first >= u64::from(NUM_COLORS) - 1 {
        return u8::MAX;
    }
    let mut mask = 0u8;
    for stripe in first..=last {
        mask |= 1 << ((stripe & u64::from(NUM_COLORS - 1)) as u8);
    }
    mask
}

/// The poison-map bit for the address `addr` (its 1 MiB region index,
/// aliased modulo 64).
#[inline]
pub fn poison_bit(addr: u64) -> u64 {
    1u64 << ((addr / POISON_REGION_BYTES) % 64)
}

/// Bit mask of every poison region overlapped by `[start, start + len)`.
pub fn poison_mask_of_range(start: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = start / POISON_REGION_BYTES;
    let last = (start + len - 1) / POISON_REGION_BYTES;
    if last - first >= 63 {
        return u64::MAX;
    }
    let mut mask = 0u64;
    for region in first..=last {
        mask |= 1u64 << (region % 64);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_cycle_per_stripe() {
        assert_eq!(color_of(0), 0);
        assert_eq!(color_of(COLOR_REGION_BYTES - 1), 0);
        assert_eq!(color_of(COLOR_REGION_BYTES), 1);
        assert_eq!(color_of(7 * COLOR_REGION_BYTES), 7);
        assert_eq!(color_of(8 * COLOR_REGION_BYTES), 0);
        // Every address inside one stripe shares the stripe's color.
        let base = 0x1234 * COLOR_REGION_BYTES;
        for off in [0, 16, 4096, COLOR_REGION_BYTES - 16] {
            assert_eq!(color_of(base + off), color_of(base));
        }
    }

    #[test]
    fn range_masks_cover_exactly_the_overlapped_stripes() {
        assert_eq!(color_mask_of_range(0, 0), 0);
        assert_eq!(color_mask_of_range(0, 1), 1);
        assert_eq!(color_mask_of_range(0, COLOR_REGION_BYTES), 1);
        assert_eq!(color_mask_of_range(0, COLOR_REGION_BYTES + 1), 0b11);
        // A range spanning a stripe boundary carries both colors.
        assert_eq!(
            color_mask_of_range(COLOR_REGION_BYTES - 8, 16),
            0b11,
            "boundary-spanning chunk must contribute both colors"
        );
        // Eight stripes or more saturates.
        assert_eq!(color_mask_of_range(0, 8 * COLOR_REGION_BYTES), u8::MAX);
        assert_eq!(color_mask_of_range(0, 1 << 30), u8::MAX);
    }

    #[test]
    fn poison_masks_alias_modulo_64() {
        assert_eq!(poison_bit(0), 1);
        assert_eq!(poison_bit(POISON_REGION_BYTES), 2);
        assert_eq!(poison_bit(64 * POISON_REGION_BYTES), 1, "aliases back");
        assert_eq!(poison_mask_of_range(0, 0), 0);
        assert_eq!(poison_mask_of_range(0, POISON_REGION_BYTES), 1);
        assert_eq!(
            poison_mask_of_range(POISON_REGION_BYTES - 8, 16),
            0b11,
            "boundary-spanning chunk poisons both regions"
        );
        assert_eq!(poison_mask_of_range(0, 64 * POISON_REGION_BYTES), u64::MAX);
    }

    #[test]
    fn masks_are_sound_for_contained_addresses() {
        // Any address inside a range maps to a bit the range's mask set —
        // the property the backend filters rely on.
        let ranges = [(0x4_0000u64, 0x3_0000u64), (0xff_fff0, 0x20), (0, 16)];
        for (start, len) in ranges {
            let cmask = color_mask_of_range(start, len);
            let pmask = poison_mask_of_range(start, len);
            for addr in [start, start + len / 2, start + len - 1] {
                assert_ne!(cmask & (1 << color_of(addr)), 0, "{addr:#x} color");
                assert_ne!(pmask & poison_bit(addr), 0, "{addr:#x} poison");
            }
        }
    }
}
