//! Capability permission bits.

use core::fmt;
use core::ops::{BitAnd, BitOr, Not};

/// A set of capability permissions (the 15-bit `perms` field of figure 2,
/// modelled as a 16-bit mask).
///
/// Permissions are **monotonic**: derivations may only intersect them
/// ([`Perms::intersect`]); there is no architectural way to add a permission
/// to an existing capability.
///
/// # Examples
///
/// ```
/// use cheri::Perms;
///
/// let rw = Perms::LOAD | Perms::STORE | Perms::LOAD_CAP | Perms::STORE_CAP;
/// assert!(rw.contains(Perms::LOAD));
/// let ro = rw.intersect(Perms::LOAD | Perms::LOAD_CAP);
/// assert!(!ro.contains(Perms::STORE));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u16);

impl Perms {
    /// No permissions at all.
    pub const NONE: Perms = Perms(0);
    /// Capability is global (may be stored anywhere).
    pub const GLOBAL: Perms = Perms(1 << 0);
    /// Instruction fetch through this capability is permitted.
    pub const EXECUTE: Perms = Perms(1 << 1);
    /// Data loads are permitted.
    pub const LOAD: Perms = Perms(1 << 2);
    /// Data stores are permitted.
    pub const STORE: Perms = Perms(1 << 3);
    /// Loading *capabilities* (tagged words) is permitted.
    pub const LOAD_CAP: Perms = Perms(1 << 4);
    /// Storing *capabilities* (tagged words) is permitted. Pages whose
    /// mappings deny this never acquire CapDirty state.
    pub const STORE_CAP: Perms = Perms(1 << 5);
    /// Storing non-global ("local") capabilities is permitted.
    pub const STORE_LOCAL_CAP: Perms = Perms(1 << 6);
    /// This capability may seal others.
    pub const SEAL: Perms = Perms(1 << 7);
    /// This capability may be used with CInvoke.
    pub const INVOKE: Perms = Perms(1 << 8);
    /// This capability may unseal others.
    pub const UNSEAL: Perms = Perms(1 << 9);
    /// Access to system registers.
    pub const SYSTEM_REGS: Perms = Perms(1 << 10);
    /// Software-defined permission 0.
    pub const SW0: Perms = Perms(1 << 11);
    /// Software-defined permission 1.
    pub const SW1: Perms = Perms(1 << 12);
    /// Software-defined permission 2.
    pub const SW2: Perms = Perms(1 << 13);
    /// Software-defined permission 3.
    pub const SW3: Perms = Perms(1 << 14);

    /// Every permission bit set — the rights of the power-on root capability.
    pub const ALL: Perms = Perms(0x7fff);

    /// The usual data permissions handed to heap allocations: load/store of
    /// both data and capabilities, global.
    pub const RW_DATA: Perms = Perms(
        Perms::GLOBAL.0
            | Perms::LOAD.0
            | Perms::STORE.0
            | Perms::LOAD_CAP.0
            | Perms::STORE_CAP.0
            | Perms::STORE_LOCAL_CAP.0,
    );

    /// Creates a permission set from its raw bit representation; bits above
    /// bit 14 are masked off.
    #[inline]
    pub const fn from_bits(bits: u16) -> Perms {
        Perms(bits & Perms::ALL.0)
    }

    /// Returns the raw bit representation.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Returns `true` if every permission in `other` is present in `self`.
    #[inline]
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Monotonic intersection: the only way to transform a permission set.
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: Perms) -> Perms {
        Perms(self.0 & other.0)
    }

    /// Returns `true` if no permissions are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if `self` is a (non-strict) subset of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: Perms) -> bool {
        self.0 & other.0 == self.0
    }
}

impl BitOr for Perms {
    type Output = Perms;
    #[inline]
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    #[inline]
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl Not for Perms {
    type Output = Perms;
    #[inline]
    fn not(self) -> Perms {
        Perms(!self.0 & Perms::ALL.0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u16, &str); 15] = [
            (1 << 0, "GLOBAL"),
            (1 << 1, "EXECUTE"),
            (1 << 2, "LOAD"),
            (1 << 3, "STORE"),
            (1 << 4, "LOAD_CAP"),
            (1 << 5, "STORE_CAP"),
            (1 << 6, "STORE_LOCAL_CAP"),
            (1 << 7, "SEAL"),
            (1 << 8, "INVOKE"),
            (1 << 9, "UNSEAL"),
            (1 << 10, "SYSTEM_REGS"),
            (1 << 11, "SW0"),
            (1 << 12, "SW1"),
            (1 << 13, "SW2"),
            (1 << 14, "SW3"),
        ];
        if self.0 == 0 {
            return write!(f, "Perms(NONE)");
        }
        write!(f, "Perms(")?;
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Binary for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_is_monotonic() {
        let a = Perms::RW_DATA;
        let b = Perms::LOAD | Perms::EXECUTE;
        let i = a.intersect(b);
        assert!(i.is_subset_of(a));
        assert!(i.is_subset_of(b));
        assert_eq!(i, Perms::LOAD);
    }

    #[test]
    fn all_contains_everything() {
        assert!(Perms::ALL.contains(Perms::RW_DATA));
        assert!(Perms::ALL.contains(Perms::SEAL | Perms::UNSEAL));
        assert!(!Perms::NONE.contains(Perms::LOAD));
        assert!(Perms::NONE.is_empty());
    }

    #[test]
    fn from_bits_masks_reserved() {
        assert_eq!(Perms::from_bits(0xffff), Perms::ALL);
        assert_eq!(Perms::from_bits(0x8000), Perms::NONE);
    }

    #[test]
    fn not_stays_in_mask() {
        assert_eq!(!Perms::ALL, Perms::NONE);
        assert_eq!(!Perms::NONE, Perms::ALL);
        assert!(!(!Perms::LOAD).contains(Perms::LOAD));
    }

    #[test]
    fn debug_nonempty() {
        assert_eq!(format!("{:?}", Perms::NONE), "Perms(NONE)");
        assert!(format!("{:?}", Perms::LOAD | Perms::STORE).contains("LOAD|STORE"));
    }

    #[test]
    fn rw_data_lacks_execute() {
        assert!(!Perms::RW_DATA.contains(Perms::EXECUTE));
        assert!(Perms::RW_DATA.contains(Perms::STORE_CAP));
    }
}
