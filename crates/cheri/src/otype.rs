//! Object types for capability sealing.

use core::fmt;

/// A capability object type ("otype").
///
/// A *sealed* capability carries a non-reserved object type and is immutable
/// and non-dereferenceable until unsealed with an authorising capability of
/// the same type. CHERIvoke itself does not rely on sealing, but the model
/// includes it because allocator-internal references can be sealed to keep
/// them out of reach of the program, and the sweep must still be able to
/// inspect their bounds.
///
/// # Examples
///
/// ```
/// use cheri::OType;
///
/// assert!(OType::UNSEALED.is_unsealed());
/// let t = OType::new(7).unwrap();
/// assert_eq!(t.raw(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OType(u16);

impl OType {
    /// The reserved otype meaning "not sealed". Zero, so that the all-zero
    /// memory word (what revocation leaves behind) decodes to an unsealed
    /// null capability, as in real CHERI.
    pub const UNSEALED: OType = OType(0);

    /// Largest usable object type.
    pub const MAX: u16 = 0x7ffe;

    /// Creates an object type. Returns `None` if `raw` is the reserved
    /// unsealed encoding (zero) or exceeds the 15-bit in-memory field.
    #[inline]
    pub const fn new(raw: u16) -> Option<OType> {
        if raw == 0 || raw > OType::MAX {
            None
        } else {
            Some(OType(raw))
        }
    }

    /// Creates an object type from its raw encoding, accepting the reserved
    /// unsealed value.
    #[inline]
    pub const fn from_raw(raw: u16) -> OType {
        OType(raw)
    }

    /// Raw encoding of this object type.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// `true` if this is the reserved "not sealed" value.
    #[inline]
    pub const fn is_unsealed(self) -> bool {
        self.0 == 0
    }
}

impl Default for OType {
    fn default() -> Self {
        OType::UNSEALED
    }
}

impl fmt::Debug for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unsealed() {
            write!(f, "OType(UNSEALED)")
        } else {
            write!(f, "OType({})", self.0)
        }
    }
}

impl fmt::Display for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_value_is_rejected_by_new() {
        assert!(OType::new(0).is_none());
        assert!(OType::new(OType::MAX).is_some());
        assert!(OType::new(OType::MAX + 1).is_none());
    }

    #[test]
    fn default_is_unsealed() {
        assert!(OType::default().is_unsealed());
        assert_eq!(OType::default(), OType::UNSEALED);
    }

    #[test]
    fn debug_shows_unsealed() {
        assert_eq!(format!("{:?}", OType::UNSEALED), "OType(UNSEALED)");
        assert_eq!(format!("{:?}", OType::new(3).unwrap()), "OType(3)");
    }
}
