//! The [`Capability`] type and its monotonic derivation operations.

use core::fmt;

use crate::{CapError, CompressedBounds, OType, Perms};

/// A CHERI capability: a tagged, bounded, permissioned reference.
///
/// This is the architectural register-file view. The in-memory view is
/// [`crate::CapWord`] (128 bits) plus the out-of-band tag bit kept by the
/// tagged-memory subsystem.
///
/// All mutating operations are **monotonic**: they can shrink bounds,
/// drop permissions, or clear the tag — never the reverse. Construction of
/// new authority is only possible through the `root_*` constructors, which
/// model the omnipotent capabilities present at CPU power-on (paper
/// footnote 1).
///
/// # Examples
///
/// ```
/// use cheri::{Capability, Perms};
///
/// # fn main() -> Result<(), cheri::CapError> {
/// let heap = Capability::root_rw(0x1_0000, 0x10_0000);
/// let obj = heap.set_bounds_exact(0x1_0040, 32)?;
///
/// // Pointer arithmetic moves the address, not the bounds.
/// let p = obj.incremented(16)?;
/// assert_eq!(p.address(), 0x1_0050);
/// assert_eq!(p.base(), 0x1_0040);
///
/// // Access checks combine tag, seal, bounds and permissions.
/// assert!(p.check_access(p.address(), 16, Perms::LOAD).is_ok());
/// assert!(p.check_access(p.address(), 32, Perms::LOAD).is_err()); // overruns top
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    tag: bool,
    address: u64,
    bounds: CompressedBounds,
    perms: Perms,
    otype: OType,
}

impl Capability {
    /// The canonical untagged null capability: all-zero, conveys nothing.
    /// This is what a revoked memory location decodes to after its tag is
    /// cleared and what uninitialised capability registers hold.
    pub const NULL: Capability = Capability {
        tag: false,
        address: 0,
        bounds: CompressedBounds::EMPTY,
        perms: Perms::NONE,
        otype: OType::UNSEALED,
    };

    /// The omnipotent power-on root: full address space, all permissions.
    ///
    /// Everything else derives from this (or from the narrower roots below);
    /// the simulator hands it only to trusted components (kernel, allocator).
    pub fn root() -> Capability {
        Capability {
            tag: true,
            address: 0,
            bounds: CompressedBounds::FULL,
            perms: Perms::ALL,
            otype: OType::UNSEALED,
        }
    }

    /// A tagged read/write data root over `base..base+len` with
    /// [`Perms::RW_DATA`]. Bounds are rounded outward if `base`/`len` are not
    /// exactly representable; use [`Capability::set_bounds_exact`] on
    /// [`Capability::root`] when exactness matters.
    pub fn root_rw(base: u64, len: u64) -> Capability {
        let (bounds, abase, _) = CompressedBounds::encode_rounding(base, len);
        Capability {
            tag: true,
            address: abase,
            bounds,
            perms: Perms::RW_DATA,
            otype: OType::UNSEALED,
        }
    }

    // --- Observers -------------------------------------------------------

    /// The tag: `true` means this word is a genuine capability.
    #[inline]
    pub const fn tag(&self) -> bool {
        self.tag
    }

    /// The current address (the "pointer value").
    #[inline]
    pub const fn address(&self) -> u64 {
        self.address
    }

    /// The permission set.
    #[inline]
    pub const fn perms(&self) -> Perms {
        self.perms
    }

    /// The object type; [`OType::UNSEALED`] unless sealed.
    #[inline]
    pub const fn otype(&self) -> OType {
        self.otype
    }

    /// `true` if sealed (immutable and non-dereferenceable until unsealed).
    #[inline]
    pub fn is_sealed(&self) -> bool {
        !self.otype.is_unsealed()
    }

    /// The compressed bounds encoding.
    #[inline]
    pub const fn compressed_bounds(&self) -> CompressedBounds {
        self.bounds
    }

    /// Lower bound (inclusive). For heap capabilities issued by a
    /// bounds-setting allocator this always lies within the original
    /// allocation, which is what lets the revocation sweep attribute the
    /// capability to an allocation granule.
    #[inline]
    pub fn base(&self) -> u64 {
        self.bounds.decode_base(self.address)
    }

    /// The capability's **color** (see [`crate::color`]): derived from the
    /// base address's 64 KiB stripe, so every copy — however forged — of a
    /// capability to the same allocation carries the same color.
    #[inline]
    pub fn color(&self) -> u8 {
        crate::color::color_of(self.base())
    }

    /// Upper bound (exclusive); up to `2^64`, hence `u128`.
    #[inline]
    pub fn top(&self) -> u128 {
        self.bounds.decode(self.address).1
    }

    /// `top - base` in bytes. Saturates to zero for malformed (never-tagged)
    /// bit patterns whose decoded top lies below their base.
    #[inline]
    pub fn length(&self) -> u64 {
        let (b, t) = self.bounds.decode(self.address);
        t.saturating_sub(b as u128) as u64
    }

    /// Address relative to base (may be "negative" — wrapped — when the
    /// address has wandered below base).
    #[inline]
    pub fn offset(&self) -> u64 {
        self.address.wrapping_sub(self.base())
    }

    /// `true` if the address currently lies within `[base, top)`.
    #[inline]
    pub fn address_in_bounds(&self) -> bool {
        let (b, t) = self.bounds.decode(self.address);
        self.address >= b && (self.address as u128) < t
    }

    // --- Access checking ---------------------------------------------------

    /// Checks an access of `len` bytes at absolute address `addr` requiring
    /// permissions `need`.
    ///
    /// # Errors
    ///
    /// [`CapError::TagCleared`] for untagged capabilities,
    /// [`CapError::Sealed`] for sealed ones, [`CapError::PermissionDenied`]
    /// if `need` is not a subset of the permissions, and
    /// [`CapError::BoundsViolation`] if `[addr, addr+len)` is not contained
    /// in `[base, top)`.
    pub fn check_access(&self, addr: u64, len: u64, need: Perms) -> Result<(), CapError> {
        if !self.tag {
            return Err(CapError::TagCleared);
        }
        if self.is_sealed() {
            return Err(CapError::Sealed);
        }
        if !self.perms.contains(need) {
            return Err(CapError::PermissionDenied);
        }
        let (b, t) = self.bounds.decode(self.address);
        let end = addr as u128 + len as u128;
        if addr < b || end > t {
            return Err(CapError::BoundsViolation { addr, len });
        }
        Ok(())
    }

    // --- Monotonic derivations --------------------------------------------

    /// Returns a copy with the tag cleared. This is *revocation*: the result
    /// can never authorise anything again, and no operation restores its
    /// tag without a still-live authorising capability (see
    /// [`Capability::build_cap`] — rebuilding requires authority the holder
    /// of a revoked reference, by construction, no longer has).
    #[inline]
    #[must_use]
    pub fn cleared(&self) -> Capability {
        Capability {
            tag: false,
            ..*self
        }
    }

    /// Derives a capability with exactly `base..base+len` bounds (CSetBounds
    /// with exactness demanded).
    ///
    /// # Errors
    ///
    /// * [`CapError::TagCleared`] / [`CapError::Sealed`] on dead or sealed
    ///   sources.
    /// * [`CapError::MonotonicityViolation`] if the new bounds are not
    ///   contained within the current bounds.
    /// * [`CapError::Unrepresentable`] if the bounds cannot be encoded
    ///   exactly.
    pub fn set_bounds_exact(&self, base: u64, len: u64) -> Result<Capability, CapError> {
        self.guard_derive()?;
        let bounds = CompressedBounds::encode_exact(base, len)?;
        self.check_shrinks(base, base as u128 + len as u128)?;
        Ok(Capability {
            address: base,
            bounds,
            ..*self
        })
    }

    /// Derives a capability whose bounds are the smallest representable
    /// region containing `base..base+len` (CSetBounds). Returns the new
    /// capability; inspect [`Capability::base`]/[`Capability::length`] for
    /// the granted region.
    ///
    /// # Errors
    ///
    /// As [`Capability::set_bounds_exact`], except rounding is permitted —
    /// but the *rounded* region must still shrink the current bounds.
    pub fn set_bounds(&self, base: u64, len: u64) -> Result<Capability, CapError> {
        self.guard_derive()?;
        let (bounds, abase, atop) = CompressedBounds::encode_rounding(base, len);
        self.check_shrinks(abase, atop)?;
        Ok(Capability {
            address: base,
            bounds,
            ..*self
        })
    }

    /// Derives a capability with permissions intersected with `keep`
    /// (CAndPerm).
    ///
    /// # Errors
    ///
    /// Fails on untagged or sealed sources.
    pub fn with_perms(&self, keep: Perms) -> Result<Capability, CapError> {
        self.guard_derive()?;
        Ok(Capability {
            perms: self.perms.intersect(keep),
            ..*self
        })
    }

    /// Returns a copy with the address set to `addr` (CSetAddr).
    ///
    /// The address may leave the bounds (C allows one-past-the-end and
    /// transient out-of-bounds arithmetic) but must stay within the
    /// *representable region*; beyond it, hardware would be unable to
    /// re-encode the bounds.
    ///
    /// # Errors
    ///
    /// [`CapError::UnrepresentableAddress`] if `addr` is outside the
    /// representable region; [`CapError::Sealed`] on sealed sources. The
    /// source may be untagged (address updates on untagged words are legal
    /// data manipulation); the result keeps the clear tag.
    pub fn with_address(&self, addr: u64) -> Result<Capability, CapError> {
        if self.is_sealed() {
            return Err(CapError::Sealed);
        }
        if self.tag && !self.bounds.addr_is_representable(self.address, addr) {
            return Err(CapError::UnrepresentableAddress { addr });
        }
        Ok(Capability {
            address: addr,
            ..*self
        })
    }

    /// Pointer arithmetic: address + `delta` (CIncOffset).
    ///
    /// # Errors
    ///
    /// [`CapError::AddressOverflow`] on 64-bit wraparound, otherwise as
    /// [`Capability::with_address`].
    pub fn incremented(&self, delta: i64) -> Result<Capability, CapError> {
        let addr = if delta >= 0 {
            self.address
                .checked_add(delta as u64)
                .ok_or(CapError::AddressOverflow)?
        } else {
            self.address
                .checked_sub(delta.unsigned_abs())
                .ok_or(CapError::AddressOverflow)?
        };
        self.with_address(addr)
    }

    /// Like hardware CSetAddr semantics: never fails, but clears the tag if
    /// the new address is unrepresentable. Useful when modelling raw pointer
    /// arithmetic in C programs.
    #[must_use]
    pub fn with_address_clearing(&self, addr: u64) -> Capability {
        match self.with_address(addr) {
            Ok(c) => c,
            Err(_) => Capability {
                address: addr,
                tag: false,
                ..*self
            },
        }
    }

    /// Seals this capability with the object type of `auth` (CSeal).
    ///
    /// # Errors
    ///
    /// Requires `auth` to be tagged, unsealed, hold [`Perms::SEAL`], and have
    /// its address (the otype to grant) within its bounds.
    pub fn sealed_with(&self, auth: &Capability) -> Result<Capability, CapError> {
        self.guard_derive()?;
        auth.check_access(auth.address(), 1, Perms::SEAL)?;
        let ot = OType::new(auth.address() as u16).ok_or(CapError::OTypeMismatch)?;
        Ok(Capability { otype: ot, ..*self })
    }

    /// Unseals this capability using `auth` (CUnseal).
    ///
    /// # Errors
    ///
    /// Requires `auth` to hold [`Perms::UNSEAL`] and to address the same
    /// otype this capability is sealed with.
    pub fn unsealed_with(&self, auth: &Capability) -> Result<Capability, CapError> {
        if !self.tag {
            return Err(CapError::TagCleared);
        }
        if !self.is_sealed() {
            return Err(CapError::OTypeMismatch);
        }
        auth.check_access(auth.address(), 1, Perms::UNSEAL)?;
        if auth.address() as u16 != self.otype.raw() {
            return Err(CapError::OTypeMismatch);
        }
        Ok(Capability {
            otype: OType::UNSEALED,
            ..*self
        })
    }

    /// Rebuilds a tagged capability from an untagged bit pattern, using
    /// `self` as the authorising capability (the CBuildCap instruction).
    ///
    /// CBuildCap exists so software that legitimately holds authority (via
    /// `self`) can restore a capability whose tag was lost through
    /// byte-wise copies — e.g. `memcpy`-style runtime routines, or a
    /// revoker *re-deriving* references it previously filtered. It is NOT
    /// a forgery primitive: the result never exceeds the authorising
    /// capability, so monotonicity is preserved.
    ///
    /// # Errors
    ///
    /// * [`CapError::TagCleared`] / [`CapError::Sealed`] if `self` cannot
    ///   authorise (untagged or sealed).
    /// * [`CapError::MonotonicityViolation`] if `pattern`'s bounds are not
    ///   contained in `self`'s, its permissions are not a subset, or the
    ///   pattern decodes inconsistently (top below base).
    pub fn build_cap(&self, pattern: &Capability) -> Result<Capability, CapError> {
        self.guard_derive()?;
        let (pb, pt) = pattern.bounds.decode(pattern.address);
        if pt < pb as u128 {
            return Err(CapError::MonotonicityViolation);
        }
        self.check_shrinks(pb, pt)?;
        if !pattern.perms.is_subset_of(self.perms) {
            return Err(CapError::MonotonicityViolation);
        }
        Ok(Capability {
            tag: true,
            otype: OType::UNSEALED,
            ..*pattern
        })
    }

    // --- Internal ----------------------------------------------------------

    fn guard_derive(&self) -> Result<(), CapError> {
        if !self.tag {
            return Err(CapError::TagCleared);
        }
        if self.is_sealed() {
            return Err(CapError::Sealed);
        }
        Ok(())
    }

    fn check_shrinks(&self, new_base: u64, new_top: u128) -> Result<(), CapError> {
        let (b, t) = self.bounds.decode(self.address);
        if new_base < b || new_top > t {
            return Err(CapError::MonotonicityViolation);
        }
        Ok(())
    }

    /// Reassembles a capability from its parts. `pub(crate)` because forging
    /// is exactly what the architecture forbids; only the in-memory decoder
    /// ([`crate::CapWord`]) may use it.
    pub(crate) fn from_parts(
        tag: bool,
        address: u64,
        bounds: CompressedBounds,
        perms: Perms,
        otype: OType,
    ) -> Capability {
        Capability {
            tag,
            address,
            bounds,
            perms,
            otype,
        }
    }
}

impl Default for Capability {
    /// The null capability.
    fn default() -> Self {
        Capability::NULL
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (b, t) = self.bounds.decode(self.address);
        write!(
            f,
            "Capability {{ tag: {}, addr: {:#x}, bounds: [{:#x}, {:#x}), perms: {:?}{} }}",
            self.tag,
            self.address,
            b,
            t,
            self.perms,
            if self.is_sealed() { ", sealed" } else { "" }
        )
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CapWord;

    fn heap_cap() -> Capability {
        Capability::root_rw(0x10_0000, 0x10_0000)
    }

    #[test]
    fn null_is_dead() {
        let n = Capability::NULL;
        assert!(!n.tag());
        assert_eq!(n.check_access(0, 1, Perms::NONE), Err(CapError::TagCleared));
        assert_eq!(n.set_bounds(0, 0), Err(CapError::TagCleared));
    }

    #[test]
    fn root_covers_address_space() {
        let r = Capability::root();
        assert!(r.tag());
        assert_eq!(r.base(), 0);
        assert_eq!(r.top(), 1u128 << 64);
        assert!(r.check_access(u64::MAX, 1, Perms::ALL).is_ok());
    }

    #[test]
    fn set_bounds_shrinks_only() {
        let h = heap_cap();
        let o = h.set_bounds_exact(0x10_0040, 64).unwrap();
        assert_eq!(o.base(), 0x10_0040);
        assert_eq!(o.length(), 64);
        // Growing back is impossible.
        assert_eq!(
            o.set_bounds_exact(0x10_0000, 0x1000),
            Err(CapError::MonotonicityViolation)
        );
        assert_eq!(
            o.set_bounds(0x10_0040, 65),
            Err(CapError::MonotonicityViolation),
            "rounding must not smuggle in extra bytes"
        );
    }

    #[test]
    fn perms_shrink_only() {
        let h = heap_cap();
        let ro = h.with_perms(Perms::LOAD | Perms::LOAD_CAP).unwrap();
        assert!(ro.check_access(0x10_0000, 8, Perms::LOAD).is_ok());
        assert_eq!(
            ro.check_access(0x10_0000, 8, Perms::STORE),
            Err(CapError::PermissionDenied)
        );
        // Re-adding STORE just intersects away.
        let still_ro = ro.with_perms(Perms::RW_DATA).unwrap();
        assert!(!still_ro.perms().contains(Perms::STORE));
    }

    #[test]
    fn bounds_checks_are_exact() {
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        assert!(o.check_access(0x10_0040, 64, Perms::LOAD).is_ok());
        assert!(o.check_access(0x10_0040 + 63, 1, Perms::LOAD).is_ok());
        assert!(matches!(
            o.check_access(0x10_0040 + 63, 2, Perms::LOAD),
            Err(CapError::BoundsViolation { .. })
        ));
        assert!(matches!(
            o.check_access(0x10_003f, 1, Perms::LOAD),
            Err(CapError::BoundsViolation { .. })
        ));
    }

    #[test]
    fn wandering_pointer_keeps_base() {
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        // One past the end is representable and retains base.
        let p = o.incremented(64).unwrap();
        assert_eq!(p.base(), 0x10_0040);
        assert!(!p.address_in_bounds());
        // Dereference there still fails bounds.
        assert!(p.check_access(p.address(), 1, Perms::LOAD).is_err());
        // And coming back in bounds works again.
        let q = p.incremented(-32).unwrap();
        assert!(q.check_access(q.address(), 8, Perms::LOAD).is_ok());
    }

    #[test]
    fn unrepresentable_wander_clears_tag() {
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        // Small object (E=0): representable window is tight; going far away
        // must fail or clear.
        let far = 0x40_0000_0000u64;
        assert!(matches!(
            o.with_address(far),
            Err(CapError::UnrepresentableAddress { .. })
        ));
        let c = o.with_address_clearing(far);
        assert!(!c.tag());
        assert_eq!(c.address(), far);
    }

    #[test]
    fn cleared_is_permanent() {
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        let d = o.cleared();
        assert!(!d.tag());
        assert_eq!(d.set_bounds(0x10_0040, 16), Err(CapError::TagCleared));
        assert_eq!(d.with_perms(Perms::LOAD), Err(CapError::TagCleared));
        // Address math on untagged words is fine (they're just data)...
        let d2 = d.with_address(0).unwrap();
        // ...but never yields authority.
        assert_eq!(
            d2.check_access(0, 0, Perms::NONE),
            Err(CapError::TagCleared)
        );
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let sealer = Capability::root()
            .set_bounds_exact(42, 1)
            .unwrap()
            .with_perms(Perms::SEAL | Perms::UNSEAL)
            .unwrap();
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        let s = o.sealed_with(&sealer).unwrap();
        assert!(s.is_sealed());
        assert_eq!(
            s.check_access(0x10_0040, 8, Perms::LOAD),
            Err(CapError::Sealed)
        );
        assert_eq!(s.set_bounds(0x10_0040, 16), Err(CapError::Sealed));
        let u = s.unsealed_with(&sealer).unwrap();
        assert_eq!(u, o);
        // Wrong otype fails.
        let wrong = Capability::root()
            .set_bounds_exact(43, 1)
            .unwrap()
            .with_perms(Perms::UNSEAL)
            .unwrap();
        assert_eq!(s.unsealed_with(&wrong), Err(CapError::OTypeMismatch));
    }

    #[test]
    fn offset_reflects_wander() {
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        assert_eq!(o.offset(), 0);
        assert_eq!(o.incremented(10).unwrap().offset(), 10);
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Capability::default(), Capability::NULL);
    }

    #[test]
    fn debug_mentions_bounds() {
        let o = heap_cap().set_bounds_exact(0x10_0040, 64).unwrap();
        let s = format!("{o:?}");
        assert!(s.contains("0x100040"));
        assert!(s.contains("tag: true"));
    }

    #[test]
    fn build_cap_restores_lost_tags() {
        let auth = heap_cap();
        let obj = auth.set_bounds_exact(0x10_0040, 64).unwrap();
        // The tag is lost through a data copy…
        let pattern = obj.cleared();
        assert!(!pattern.tag());
        // …and restored under the heap authority.
        let rebuilt = auth.build_cap(&pattern).unwrap();
        assert!(rebuilt.tag());
        assert_eq!(rebuilt.base(), obj.base());
        assert_eq!(rebuilt.top(), obj.top());
        assert_eq!(rebuilt.perms(), obj.perms());
        assert!(rebuilt.check_access(0x10_0040, 8, Perms::LOAD).is_ok());
    }

    #[test]
    fn build_cap_cannot_amplify() {
        let auth = heap_cap(); // bounds [0x10_0000, 0x20_0000), RW_DATA
                               // Pattern with bounds outside the authority: rejected.
        let outside = Capability::root_rw(0x40_0000, 64).cleared();
        assert_eq!(
            auth.build_cap(&outside),
            Err(CapError::MonotonicityViolation)
        );
        // Pattern with extra permissions: rejected.
        let too_permissive = Capability::root()
            .set_bounds_exact(0x10_0040, 64)
            .unwrap()
            .cleared();
        assert_eq!(
            auth.build_cap(&too_permissive),
            Err(CapError::MonotonicityViolation)
        );
        // A dead authority builds nothing.
        assert_eq!(
            auth.cleared().build_cap(&auth.cleared()),
            Err(CapError::TagCleared)
        );
    }

    #[test]
    fn build_cap_rejects_inconsistent_patterns() {
        let auth = heap_cap();
        // A garbage word can decode with top < base; it must not build.
        let garbage = CapWord::from_bits((0x3000u128 << 92) | 0x10_0000).decode(false);
        if garbage.top() < garbage.base() as u128 {
            assert_eq!(
                auth.build_cap(&garbage),
                Err(CapError::MonotonicityViolation)
            );
        }
    }

    #[test]
    fn capability_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Capability>();
    }
}
