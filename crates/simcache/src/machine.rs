//! The [`Machine`]: a cycle budget over a memory hierarchy.

use crate::{AccessKind, MachineConfig, MemoryHierarchy, TrafficStats};

/// A simulated machine accumulating cycles across memory operations.
///
/// The revocation sweep model drives this with the same access stream the
/// real sweep kernel would issue; [`Machine::seconds`] then converts the
/// cycle total into wall-clock time on the configured system.
///
/// # Examples
///
/// ```
/// use simcache::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::cheri_fpga_like());
/// m.read(0x1000, 128);
/// m.charge(28); // e.g. the 28-instruction vectorised inner loop (§6.2)
/// assert!(m.seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct Machine {
    hierarchy: MemoryHierarchy,
    config: MachineConfig,
    cycles: u64,
}

impl Machine {
    /// Creates a machine with cold caches.
    pub fn new(config: MachineConfig) -> Machine {
        Machine {
            hierarchy: MemoryHierarchy::new(&config),
            config,
            cycles: 0,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Reads `len` bytes starting at `addr`, touching every covered line.
    pub fn read(&mut self, addr: u64, len: u64) {
        self.span_access(addr, len, AccessKind::Read);
    }

    /// Writes `len` bytes starting at `addr`.
    pub fn write(&mut self, addr: u64, len: u64) {
        self.span_access(addr, len, AccessKind::Write);
    }

    fn span_access(&mut self, addr: u64, len: u64, kind: AccessKind) {
        if len == 0 {
            return;
        }
        let line = self.config.l1.line_bytes;
        let mut a = addr & !(line - 1);
        let end = addr + len;
        while a < end {
            self.cycles += self.hierarchy.access(a, kind);
            a += line;
        }
    }

    /// Issues a `CLoadTags` for the line containing `addr`, charging its
    /// cost (paper §3.4.1).
    pub fn cloadtags(&mut self, addr: u64) {
        self.cycles += self.hierarchy.cloadtags(addr);
    }

    /// Charges `n` pure-compute cycles.
    pub fn charge(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Charges one mispredicted branch.
    pub fn branch_mispredict(&mut self) {
        self.cycles += self.hierarchy.branch_mispredict();
    }

    /// Total cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total simulated seconds so far.
    pub fn seconds(&self) -> f64 {
        self.config.cycles_to_seconds(self.cycles)
    }

    /// Boundary traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.hierarchy.traffic()
    }

    /// Direct access to the hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Flushes caches and zeroes cycles/traffic.
    pub fn reset(&mut self) {
        self.hierarchy.flush();
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_read_is_bandwidth_bound() {
        let cfg = MachineConfig::x86_like();
        let mut m = Machine::new(cfg.clone());
        let bytes = 1u64 << 20;
        m.read(0, bytes);
        // Achieved bandwidth must be below the DRAM peak but within 4x.
        let secs = m.seconds();
        let peak = cfg.dram.bytes_per_cycle * cfg.freq_hz;
        let achieved = bytes as f64 / secs;
        assert!(achieved <= peak);
        assert!(
            achieved > peak / 4.0,
            "achieved {achieved:.3e} vs peak {peak:.3e}"
        );
    }

    #[test]
    fn rereading_cached_data_is_fast() {
        let mut m = Machine::new(MachineConfig::x86_like());
        m.read(0, 4096);
        let cold = m.cycles();
        m.read(0, 4096);
        let warm = m.cycles() - cold;
        assert!(warm * 4 < cold);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut m = Machine::new(MachineConfig::x86_like());
        m.read(0x1000, 0);
        m.write(0x1000, 0);
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn reset_zeroes_state() {
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        m.read(0, 1 << 12);
        m.reset();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.traffic(), TrafficStats::default());
    }

    #[test]
    fn cloadtags_skipping_beats_reading_sparse_memory() {
        // The core claim of §3.4.1: for pointer-free memory, CLoadTags (tag
        // query only) is cheaper than reading the data.
        let cfg = MachineConfig::cheri_fpga_like();
        let span = 1u64 << 20;

        let mut with_read = Machine::new(cfg.clone());
        with_read.read(0, span);

        let mut with_tags = Machine::new(cfg);
        let mut addr = 0;
        while addr < span {
            with_tags.cloadtags(addr);
            addr += 128;
        }
        assert!(
            with_tags.cycles() < with_read.cycles() / 2,
            "CLoadTags {} vs read {}",
            with_tags.cycles(),
            with_read.cycles()
        );
    }
}
