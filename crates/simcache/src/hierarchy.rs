//! The cache hierarchy: L1 → L2 → optional LLC → DRAM.

use crate::{Cache, MachineConfig, TagCache};

/// Whether an access reads or writes (writes mark lines dirty and produce
/// write-back traffic on eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Byte counters at the boundaries the paper's Figure 10 cares about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes that crossed beyond the private L2 — "off-core" traffic
    /// (requests to the shared L3 and beyond, §6.5).
    pub offcore_bytes: u64,
    /// Bytes transferred to/from DRAM (line fills + write-backs).
    pub dram_bytes: u64,
    /// DRAM accesses (line granularity).
    pub dram_accesses: u64,
}

/// A complete data-side memory hierarchy with cycle accounting.
///
/// # Examples
///
/// ```
/// use simcache::{AccessKind, MachineConfig, MemoryHierarchy};
///
/// let mut h = MemoryHierarchy::new(&MachineConfig::x86_like());
/// let cold = h.access(0x1000, AccessKind::Read);
/// let warm = h.access(0x1000, AccessKind::Read);
/// assert!(warm < cold);
/// ```
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    llc: Option<Cache>,
    tag_cache: TagCache,
    config: MachineConfig,
    traffic: TrafficStats,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy for `config`.
    pub fn new(config: &MachineConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            llc: config.llc.map(Cache::new),
            tag_cache: TagCache::new(config),
            config: config.clone(),
            traffic: TrafficStats::default(),
        }
    }

    /// Performs one access, returning the cycles it cost.
    ///
    /// Cache hits are charged their level's full latency (a dependent load
    /// really waits that long). When an access goes all the way to DRAM the
    /// *entire* beyond-L1 latency chain is amortised over the core's
    /// memory-level parallelism — this is what lets an out-of-order core
    /// stream memory at DRAM bandwidth rather than at `1 / full-latency`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        let write = matches!(kind, AccessKind::Write);
        let line = self.config.l1.line_bytes;

        let l1 = self.l1.access(addr, write);
        if l1.hit {
            return self.config.l1_latency;
        }

        let l2 = self.l2.access(addr, write);
        if l2.hit {
            return self.config.l1_latency + self.config.l2_latency;
        }

        // Beyond L2: off-core.
        self.traffic.offcore_bytes += line;
        let mut miss_path = self.config.l2_latency;
        if let Some(llc) = &mut self.llc {
            let l3 = llc.access(addr, write);
            if l3.hit {
                return self.config.l1_latency + self.config.l2_latency + self.config.llc_latency;
            }
            miss_path += self.config.llc_latency;
            if l3.writeback {
                self.traffic.dram_bytes += line;
            }
        }

        // DRAM line fill: latency amortised over memory-level parallelism,
        // transfer time paid in full (bandwidth is not parallelisable).
        miss_path += self.config.dram.latency_cycles;
        let transfer = (line as f64 / self.config.dram.bytes_per_cycle).ceil() as u64;
        self.traffic.dram_bytes += line;
        self.traffic.dram_accesses += 1;
        self.config.l1_latency + miss_path / self.config.dram.mlp.max(1) + transfer
    }

    /// A `CLoadTags` query for the line containing `addr` (paper §3.4.1):
    /// answered by whichever data cache holds the line, else by the tag
    /// cache — *without* fetching the line's data from DRAM.
    ///
    /// Returns the cycles the query cost. The caller supplies/consults the
    /// actual tag bits from the tagged memory model; this only charges time.
    pub fn cloadtags(&mut self, addr: u64) -> u64 {
        // Snoop data caches (probe only — the response carries just tags and
        // is not cached, approximating the paper's streaming semantics).
        if self.l1.probe(addr) || self.l2.probe(addr) {
            return self.config.l1_latency + 1;
        }
        if let Some(llc) = &self.llc {
            if llc.probe(addr) {
                return self.config.llc_latency;
            }
        }
        // Miss everywhere: round trip to the tag controller / tag cache.
        let mut cycles = self.config.cloadtags_latency;
        if !self.tag_cache.access(addr) {
            // Tag-cache miss: fetch one line of the tag table from DRAM.
            let line = self.config.tag_cache.line_bytes;
            cycles += self.config.dram.line_fill_cycles(line);
            self.traffic.dram_bytes += line;
            self.traffic.dram_accesses += 1;
        }
        cycles
    }

    /// Charges a mispredicted branch.
    pub fn branch_mispredict(&self) -> u64 {
        self.config.branch_miss_penalty
    }

    /// Accumulated boundary traffic.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Per-level cache statistics `(l1, l2, llc, tag_cache)`.
    pub fn cache_stats(
        &self,
    ) -> (
        crate::CacheStats,
        crate::CacheStats,
        Option<crate::CacheStats>,
        crate::CacheStats,
    ) {
        (
            self.l1.stats(),
            self.l2.stats(),
            self.llc.as_ref().map(|c| c.stats()),
            self.tag_cache.stats(),
        )
    }

    /// Flushes all caches and zeroes counters (between experiment runs).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        if let Some(llc) = &mut self.llc {
            llc.flush();
        }
        self.tag_cache.flush();
        self.traffic = TrafficStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn cold_miss_costs_dram_latency() {
        let cfg = MachineConfig::x86_like();
        let mut h = MemoryHierarchy::new(&cfg);
        let cycles = h.access(0x1000, AccessKind::Read);
        assert!(cycles >= cfg.dram.line_fill_cycles(64));
        assert_eq!(h.traffic().dram_accesses, 1);
        assert_eq!(h.traffic().offcore_bytes, 64);
    }

    #[test]
    fn warm_hit_is_l1_latency() {
        let cfg = MachineConfig::x86_like();
        let mut h = MemoryHierarchy::new(&cfg);
        h.access(0x1000, AccessKind::Read);
        assert_eq!(h.access(0x1000, AccessKind::Read), cfg.l1_latency);
        // No extra off-core traffic for the hit.
        assert_eq!(h.traffic().offcore_bytes, 64);
    }

    #[test]
    fn fpga_has_no_llc_level() {
        let cfg = MachineConfig::cheri_fpga_like();
        let mut h = MemoryHierarchy::new(&cfg);
        let cycles = h.access(0x2000, AccessKind::Read);
        // L1 + L2 + DRAM only.
        assert!(cycles >= cfg.l1_latency + cfg.l2_latency + cfg.dram.latency_cycles);
    }

    #[test]
    fn cloadtags_cheap_when_line_resident() {
        let cfg = MachineConfig::cheri_fpga_like();
        let mut h = MemoryHierarchy::new(&cfg);
        h.access(0x3000, AccessKind::Read);
        let resident = h.cloadtags(0x3000);
        let absent = h.cloadtags(0x30_0000);
        assert!(resident < absent);
    }

    #[test]
    fn cloadtags_never_fetches_data_lines() {
        let cfg = MachineConfig::cheri_fpga_like();
        let mut h = MemoryHierarchy::new(&cfg);
        let before = h.traffic().dram_bytes;
        // First query misses the tag cache: fetches only a tag-table line.
        h.cloadtags(0x10_0000);
        let after_first = h.traffic().dram_bytes;
        assert_eq!(after_first - before, cfg.tag_cache.line_bytes);
        // Second query to a nearby line hits the tag cache: free of DRAM.
        h.cloadtags(0x10_0080);
        assert_eq!(h.traffic().dram_bytes, after_first);
    }

    #[test]
    fn flush_resets_everything() {
        let mut h = MemoryHierarchy::new(&MachineConfig::x86_like());
        h.access(0x1000, AccessKind::Write);
        h.flush();
        assert_eq!(h.traffic(), TrafficStats::default());
        let (l1, ..) = h.cache_stats();
        assert_eq!(l1.accesses(), 0);
    }

    #[test]
    fn writeback_traffic_counted() {
        // Tiny direct-mapped-ish config to force evictions quickly.
        let mut cfg = MachineConfig::x86_like();
        cfg.l1 = crate::CacheConfig {
            size_bytes: 128,
            ways: 1,
            line_bytes: 64,
        };
        cfg.l2 = crate::CacheConfig {
            size_bytes: 256,
            ways: 1,
            line_bytes: 64,
        };
        cfg.llc = Some(crate::CacheConfig {
            size_bytes: 512,
            ways: 1,
            line_bytes: 64,
        });
        let mut h = MemoryHierarchy::new(&cfg);
        // Write lines mapping to the same LLC set until one dirty line is
        // evicted to DRAM.
        for i in 0..64u64 {
            h.access(i * 512, AccessKind::Write);
        }
        assert!(h.traffic().dram_bytes > 64 * 64);
    }
}
