//! A set-associative, write-back, LRU cache model.

use core::fmt;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// capacity not divisible by `ways * line_bytes`, or zero anywhere).
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0 && self.size_bytes > 0);
        let per_way = self.size_bytes / u64::from(self.ways);
        assert_eq!(per_way % self.line_bytes, 0, "inconsistent cache geometry");
        let sets = per_way / self.line_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (zero when idle).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

#[derive(Clone)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch, for LRU.
    stamp: u64,
}

/// A set-associative LRU cache.
///
/// This is a *presence* model: it tracks which lines are resident, not their
/// contents (data lives in the simulated `tagmem`-style memory). Timing is
/// charged by the surrounding [`crate::MemoryHierarchy`].
///
/// # Examples
///
/// ```
/// use simcache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// assert!(!c.access(0x40, false).hit); // cold miss
/// assert!(c.access(0x40, false).hit);  // now resident
/// ```
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    stats: CacheStats,
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was resident.
    pub hit: bool,
    /// A dirty victim was evicted to make room (write-back traffic).
    pub writeback: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets() as usize;
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways as usize); sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and resets statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index_of(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Touches the line containing `addr`; `write` marks it dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.config.ways as usize;
        let (set_idx, tag) = self.index_of(addr);
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.stamp = clock;
            way.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: false,
            };
        }

        self.stats.misses += 1;
        let mut writeback = false;
        if set.len() < ways {
            set.push(Way {
                tag,
                valid: true,
                dirty: write,
                stamp: clock,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|w| w.stamp)
                .expect("non-empty set");
            if victim.dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
            *victim = Way {
                tag,
                valid: true,
                dirty: write,
                stamp: clock,
            };
        }
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// `true` if the line containing `addr` is resident (no LRU update, no
    /// stats — a pure probe, used by `CLoadTags` snooping).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_of(addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cache {{ {}B/{}-way/{}B lines, stats: {:?} }}",
            self.config.size_bytes, self.config.ways, self.config.line_bytes, self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_is_computed() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 64,
        })
        .config()
        .sets();
    }

    #[test]
    fn hits_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).hit);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(0x3f, false).hit); // same line
        assert!(!c.access(0x40, false).hit); // next line, other set
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 lines: addresses with line index even (64B lines, 2 sets).
        c.access(0x000, false); // set 0, tag 0
        c.access(0x080, false); // set 0, tag 1
        c.access(0x000, false); // refresh tag 0
        c.access(0x100, false); // set 0, tag 2 -> evicts tag 1
        assert!(c.access(0x000, false).hit);
        assert!(!c.access(0x080, false).hit);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        let out = c.access(0x100, false); // evicts LRU = 0x000 (dirty)
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut c = tiny();
        c.access(0x0, false);
        let s = c.stats();
        assert!(c.probe(0x20));
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), s);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x0, true);
        c.flush();
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn miss_ratio_sane() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
