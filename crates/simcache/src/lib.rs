//! Cycle-approximate model of a memory hierarchy with CHERI tag storage.
//!
//! The paper evaluates its hardware assists (PTE CapDirty and `CLoadTags`)
//! on a CHERI FPGA prototype whose performance is dominated by the memory
//! hierarchy: caches, DRAM bandwidth, and the **tag cache** that backs
//! hierarchical tag storage (paper §2.2, §3.4, table 1). This crate models
//! exactly enough of that system to reproduce Figure 8(b) and the traffic
//! accounting of Figure 10:
//!
//! * [`Cache`] — a set-associative, LRU, write-back cache.
//! * [`MemoryHierarchy`] — L1 → L2 → (optional) LLC → DRAM, with per-level
//!   latencies, DRAM bandwidth, and **off-core traffic** counters (bytes
//!   crossing beyond the private L2, the quantity Figure 10 reports).
//! * [`TagCache`] — the dedicated cache in front of the hierarchical tag
//!   table; `CLoadTags` queries land here when they miss the data caches.
//! * [`Machine`] — ties the above together behind read/write/`cloadtags`
//!   operations and a cycle budget; [`MachineConfig`] provides the paper's
//!   two systems as presets ([`MachineConfig::x86_like`],
//!   [`MachineConfig::cheri_fpga_like`]).
//!
//! # Example
//!
//! ```
//! use simcache::{Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::cheri_fpga_like());
//! m.read(0x1000, 8);          // cold miss: walks to DRAM
//! let cold = m.cycles();
//! m.read(0x1008, 8);          // same line: L1 hit
//! assert!(m.cycles() - cold < cold);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;
mod machine;
mod tagcache;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::{DramConfig, MachineConfig};
pub use hierarchy::{AccessKind, MemoryHierarchy, TrafficStats};
pub use machine::Machine;
pub use tagcache::TagCache;
