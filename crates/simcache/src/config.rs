//! Machine configurations, including the paper's two evaluation systems.

use crate::CacheConfig;

/// DRAM timing/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Cycles of latency for the first beat of a line fill.
    pub latency_cycles: u64,
    /// Sustained bandwidth in bytes per core cycle (line transfer cost is
    /// `line_bytes / bytes_per_cycle` on top of the latency).
    pub bytes_per_cycle: f64,
    /// Memory-level parallelism: outstanding misses an out-of-order core
    /// overlaps, amortising the fill latency across concurrent requests.
    /// 1 for a simple in-order core.
    pub mlp: u64,
}

impl DramConfig {
    /// Effective cycles charged for one line fill of `line_bytes`, with the
    /// latency amortised over the core's memory-level parallelism.
    pub fn line_fill_cycles(&self, line_bytes: u64) -> u64 {
        self.latency_cycles / self.mlp.max(1)
            + (line_bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

/// Full machine description for the [`crate::Machine`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name (appears in experiment output).
    pub name: &'static str,
    /// Core clock frequency in Hz (converts cycles to seconds).
    pub freq_hz: f64,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Optional shared last-level cache.
    pub llc: Option<CacheConfig>,
    /// LLC hit latency in cycles.
    pub llc_latency: u64,
    /// Tag-cache geometry (covers the hierarchical tag table).
    pub tag_cache: CacheConfig,
    /// Round-trip cost of a `CLoadTags` query that is answered by the tag
    /// cache (paper §6.3 reports ~10 cycles on the FPGA).
    pub cloadtags_latency: u64,
    /// Penalty for a mispredicted branch (the sweep's data-dependent
    /// branches, paper §3.3).
    pub branch_miss_penalty: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl MachineConfig {
    /// The paper's x86-64 evaluation machine (table 1): Core i7-7820HK,
    /// 2.9 GHz, 8 MiB LLC, DDR4-2400 (≈19.2 GB/s per-channel read
    /// bandwidth; §6.2 measures 19,405 MiB/s full read bandwidth).
    pub fn x86_like() -> MachineConfig {
        MachineConfig {
            name: "x86-64 (i7-7820HK-like)",
            freq_hz: 2.9e9,
            l1: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l1_latency: 4,
            l2: CacheConfig {
                size_bytes: 256 << 10,
                ways: 4,
                line_bytes: 64,
            },
            l2_latency: 12,
            llc: Some(CacheConfig {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: 64,
            }),
            llc_latency: 42,
            // x86 has no architectural tags; present for uniformity but the
            // x86 experiments never issue CLoadTags.
            tag_cache: CacheConfig {
                size_bytes: 32 << 10,
                ways: 4,
                line_bytes: 64,
            },
            cloadtags_latency: 10,
            branch_miss_penalty: 16,
            dram: DramConfig {
                latency_cycles: 200,
                // 19405 MiB/s at 2.9 GHz ≈ 7.0 bytes/cycle.
                bytes_per_cycle: 19_405.0 * 1024.0 * 1024.0 / 2.9e9,
                // Deep out-of-order core: ~12 outstanding line fills.
                mlp: 12,
            },
        }
    }

    /// The paper's CHERI FPGA prototype (table 1): Stratix IV at 100 MHz,
    /// single in-order core, 256 KiB LLC (modelled as the L2), 1 GiB DDR2,
    /// 128-byte lines, with the tag cache of Joannou et al.
    pub fn cheri_fpga_like() -> MachineConfig {
        MachineConfig {
            name: "CHERI FPGA (Stratix IV-like)",
            freq_hz: 100e6,
            l1: CacheConfig {
                size_bytes: 16 << 10,
                ways: 2,
                line_bytes: 128,
            },
            l1_latency: 1,
            l2: CacheConfig {
                size_bytes: 256 << 10,
                ways: 4,
                line_bytes: 128,
            },
            l2_latency: 8,
            llc: None,
            llc_latency: 0,
            tag_cache: CacheConfig {
                size_bytes: 32 << 10,
                ways: 4,
                line_bytes: 128,
            },
            // ~10-cycle round trip to reach the tag cache (paper §6.3).
            cloadtags_latency: 10,
            branch_miss_penalty: 6,
            dram: DramConfig {
                latency_cycles: 30,
                // DDR2 on the FPGA: ~800 MiB/s at 100 MHz ≈ 8.4 bytes/cycle.
                bytes_per_cycle: 8.4,
                // Single-issue in-order scalar pipeline: no overlap.
                mlp: 1,
            },
        }
    }

    /// Converts a cycle count to seconds on this machine.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_consistent_geometry() {
        for cfg in [MachineConfig::x86_like(), MachineConfig::cheri_fpga_like()] {
            assert!(cfg.l1.sets() > 0);
            assert!(cfg.l2.sets() > 0);
            if let Some(llc) = cfg.llc {
                assert!(llc.sets() > 0);
            }
            assert!(cfg.tag_cache.sets() > 0);
            assert!(cfg.dram.bytes_per_cycle > 0.0);
        }
    }

    #[test]
    fn x86_is_much_faster_than_fpga() {
        let x86 = MachineConfig::x86_like();
        let fpga = MachineConfig::cheri_fpga_like();
        assert!(x86.freq_hz / fpga.freq_hz > 20.0);
        // Same cycle count takes longer on the FPGA.
        assert!(fpga.cycles_to_seconds(1000) > x86.cycles_to_seconds(1000));
    }

    #[test]
    fn cycles_to_seconds_scales_linearly() {
        let cfg = MachineConfig::cheri_fpga_like();
        assert!((cfg.cycles_to_seconds(100e6 as u64) - 1.0).abs() < 1e-9);
    }
}
