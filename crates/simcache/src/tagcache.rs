//! The tag cache in front of the hierarchical tag table.
//!
//! CHERI prototypes keep capability tags in a hierarchical table in ordinary
//! DRAM, fronted by a dedicated **tag cache** (Joannou et al., cited in
//! paper §2.2). Because one tag bit covers 16 bytes of data, one tag-cache
//! line covers `8 * line_bytes * 16` bytes of data — so the tag cache
//! achieves very high hit rates during linear sweeps, which is what makes
//! `CLoadTags` profitable.

use crate::{Cache, CacheStats, MachineConfig};

/// Data bytes covered by a single tag *bit*.
const BYTES_PER_TAG_BIT: u64 = 16;

/// The dedicated cache over the tag table.
///
/// # Examples
///
/// ```
/// use simcache::{MachineConfig, TagCache};
///
/// let mut tc = TagCache::new(&MachineConfig::cheri_fpga_like());
/// assert!(!tc.access(0x0));          // cold
/// assert!(tc.access(0x1000));        // same tag-table line (high coverage)
/// ```
#[derive(Debug)]
pub struct TagCache {
    cache: Cache,
}

impl TagCache {
    /// Creates the tag cache described by `config.tag_cache`.
    pub fn new(config: &MachineConfig) -> TagCache {
        TagCache {
            cache: Cache::new(config.tag_cache),
        }
    }

    /// Maps a *data* address to its tag-table address. Each data byte needs
    /// 1/128 of a byte of tag storage (1 bit per 16 bytes).
    #[inline]
    pub fn tag_table_addr(data_addr: u64) -> u64 {
        data_addr / (BYTES_PER_TAG_BIT * 8)
    }

    /// Data bytes covered by one tag-cache line.
    pub fn coverage_per_line(&self) -> u64 {
        self.cache.config().line_bytes * BYTES_PER_TAG_BIT * 8
    }

    /// Accesses the tag-table entry for `data_addr`; returns `true` on hit.
    pub fn access(&mut self, data_addr: u64) -> bool {
        self.cache
            .access(Self::tag_table_addr(data_addr), false)
            .hit
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Invalidates contents and counters.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_large() {
        let tc = TagCache::new(&MachineConfig::cheri_fpga_like());
        // 128-byte tag line covers 16 KiB of data.
        assert_eq!(tc.coverage_per_line(), 128 * 128);
    }

    #[test]
    fn linear_sweep_hits_almost_always() {
        let mut tc = TagCache::new(&MachineConfig::cheri_fpga_like());
        let mut hits = 0u64;
        let mut total = 0u64;
        // Sweep 1 MiB of data at line granularity.
        let mut addr = 0u64;
        while addr < 1 << 20 {
            if tc.access(addr) {
                hits += 1;
            }
            total += 1;
            addr += 128;
        }
        let hit_rate = hits as f64 / total as f64;
        assert!(
            hit_rate > 0.98,
            "expected near-perfect hit rate, got {hit_rate}"
        );
    }

    #[test]
    fn tag_table_addr_is_1_128th() {
        assert_eq!(TagCache::tag_table_addr(0), 0);
        assert_eq!(TagCache::tag_table_addr(128), 1);
        assert_eq!(TagCache::tag_table_addr(1 << 20), 1 << 13);
    }

    #[test]
    fn flush_clears_stats() {
        let mut tc = TagCache::new(&MachineConfig::cheri_fpga_like());
        tc.access(0);
        tc.flush();
        assert_eq!(tc.stats().accesses(), 0);
        assert!(!tc.access(0));
    }
}
