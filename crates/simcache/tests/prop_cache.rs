//! Property tests for the cache model: inclusion-free correctness
//! properties that hold for any access stream.

use proptest::prelude::*;
use simcache::{AccessKind, Cache, CacheConfig, Machine, MachineConfig, MemoryHierarchy};

fn addresses() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..(1 << 16), any::<bool>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hits + misses always equals accesses; re-accessing the most recent
    /// line always hits; capacity is never exceeded.
    #[test]
    fn cache_accounting_is_consistent(stream in addresses()) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 });
        for &(addr, write) in &stream {
            c.access(addr, write);
            // Immediate re-access of the same line is always a hit (LRU
            // never evicts the most recently used line of its set).
            let again = c.access(addr, false);
            prop_assert!(again.hit, "MRU line evicted at {addr:#x}");
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), stream.len() as u64 * 2);
        prop_assert!(s.hits >= stream.len() as u64, "every second access hits");
        prop_assert!(s.miss_ratio() <= 0.5);
    }

    /// A cache twice the size never misses more than the smaller one on
    /// the same stream (LRU is a stack algorithm — no Belady anomaly).
    #[test]
    fn bigger_lru_cache_never_misses_more(stream in addresses()) {
        let mut small = Cache::new(CacheConfig { size_bytes: 1024, ways: 16, line_bytes: 64 });
        let mut big = Cache::new(CacheConfig { size_bytes: 2048, ways: 32, line_bytes: 64 });
        for &(addr, write) in &stream {
            small.access(addr, write);
            big.access(addr, write);
        }
        prop_assert!(
            big.stats().misses <= small.stats().misses,
            "Belady anomaly: {} > {}",
            big.stats().misses,
            small.stats().misses
        );
    }

    /// Hierarchy cycle costs are bounded: every access costs at least the
    /// L1 latency and at most the full miss path, and cycles accumulate
    /// monotonically.
    #[test]
    fn hierarchy_costs_are_bounded(stream in addresses()) {
        let cfg = MachineConfig::x86_like();
        let worst = cfg.l1_latency
            + (cfg.l2_latency + cfg.llc_latency + cfg.dram.latency_cycles)
            + (64.0 / cfg.dram.bytes_per_cycle).ceil() as u64;
        let mut h = MemoryHierarchy::new(&cfg);
        for &(addr, write) in &stream {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let cycles = h.access(addr, kind);
            prop_assert!(cycles >= cfg.l1_latency);
            prop_assert!(cycles <= worst, "{cycles} > {worst}");
        }
    }

    /// DRAM traffic only grows, and off-core traffic is at least the DRAM
    /// fill traffic minus write-backs (every DRAM fill passed the L2
    /// boundary).
    #[test]
    fn traffic_monotonicity(stream in addresses()) {
        let mut m = Machine::new(MachineConfig::x86_like());
        let mut last_dram = 0;
        for &(addr, write) in &stream {
            if write {
                m.write(addr, 8);
            } else {
                m.read(addr, 8);
            }
            let t = m.traffic();
            prop_assert!(t.dram_bytes >= last_dram);
            last_dram = t.dram_bytes;
        }
        let t = m.traffic();
        prop_assert!(t.offcore_bytes >= t.dram_accesses * 64 - t.dram_bytes.min(t.offcore_bytes));
    }

    /// The machine's seconds are exactly cycles / frequency.
    #[test]
    fn seconds_track_cycles(stream in addresses()) {
        let cfg = MachineConfig::cheri_fpga_like();
        let mut m = Machine::new(cfg.clone());
        for &(addr, _) in &stream {
            m.read(addr, 8);
        }
        prop_assert!((m.seconds() - m.cycles() as f64 / cfg.freq_hz).abs() < 1e-12);
    }
}
