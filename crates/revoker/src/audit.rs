//! Full-heap safety audit: an exhaustive sweep that *counts* instead of
//! revoking, proving the temporal-safety invariant over a memory image.
//!
//! The invariant audited here is the one CHERIvoke's whole pipeline
//! exists to maintain: **no tagged capability points into a granule the
//! allocator may hand out again** (free or wilderness memory). Dangling
//! capabilities into *quarantined* memory are explicitly legal — the
//! paper's §3.7 window between free and sweep — so the caller paints the
//! audit shadow with exactly the reusable set, not the quarantine.
//!
//! The audit reuses the [`ParallelSweepEngine`] as its checking kernel:
//! the image is swept (unfiltered, so nothing is skipped) against the
//! audit shadow, and every capability the sweep would have revoked is a
//! violation. Because the sweep mutates tags, it runs over a [`CoreDump`]
//! *clone* of the heap, never the live segments. A separate tag walk
//! enumerates the offending addresses for diagnostics — the engine sweep
//! and the walk must agree, and the report carries both counts so a
//! divergence (a kernel bug) is itself detectable.

use crate::engine::{DumpSource, NoFilter, ParallelSweepEngine};
use crate::shadow::ShadowMap;
use tagmem::{CoreDump, RegisterFile};

/// One audit violation: a tagged capability at `at` whose base points
/// into the painted (reusable) set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditViolation {
    /// Address of the granule holding the offending capability.
    pub at: u64,
    /// The capability's base — the reusable granule it still reaches.
    pub pointee: u64,
}

/// The result of a full-heap audit sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Bytes the audit kernel walked.
    pub bytes_scanned: u64,
    /// Tagged words the audit kernel inspected.
    pub caps_inspected: u64,
    /// Granules painted into the audit shadow (the reusable set).
    pub granules_painted: u64,
    /// Capabilities found pointing into the painted set (the engine
    /// sweep's revocation count — zero on a safe heap).
    pub violations: u64,
    /// Register-file capabilities pointing into the painted set.
    pub reg_violations: u64,
    /// The offending `(at, pointee)` pairs from the diagnostic tag walk.
    /// `offenders.len() == violations` unless the sweep kernel and the
    /// walk disagree (which is itself a bug worth surfacing).
    pub offenders: Vec<AuditViolation>,
}

impl AuditReport {
    /// `true` when the audited image upholds the invariant.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.reg_violations == 0 && self.offenders.is_empty()
    }
}

/// Audits a captured memory image against `shadow`, which the caller has
/// painted with every granule the allocator considers reusable (free +
/// wilderness; *not* the quarantine — see the module docs). `regs` is
/// audited by value-walk (registers are roots too). The dump is consumed
/// mutably because the checking sweep clears the violating tags it finds
/// — callers pass a clone of the live image.
pub fn audit_dump(
    engine: &ParallelSweepEngine,
    dump: &mut CoreDump,
    regs: &RegisterFile,
    shadow: &ShadowMap,
) -> AuditReport {
    let mut report = AuditReport {
        granules_painted: shadow.painted_bytes() / tagmem::GRANULE_SIZE,
        ..AuditReport::default()
    };
    // Diagnostic walk first: the engine sweep below clears the very tags
    // that identify the offenders.
    for img in dump.segments() {
        for addr in img.mem.tagged_addrs() {
            let cap = img.mem.read_cap(addr).expect("tagged granule is mapped");
            if cap.tag() && shadow.is_painted(cap.base()) {
                report.offenders.push(AuditViolation {
                    at: addr,
                    pointee: cap.base(),
                });
            }
        }
    }
    let stats = engine.sweep(DumpSource::new(dump.segments_mut()), NoFilter, shadow);
    report.bytes_scanned = stats.bytes_swept;
    report.caps_inspected = stats.caps_inspected;
    report.violations = stats.caps_revoked;
    for cap in regs.iter() {
        if cap.tag() && shadow.is_painted(cap.base()) {
            report.reg_violations += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Kernel;
    use cheri::Capability;
    use tagmem::{AddressSpace, SegmentKind};

    const HEAP: u64 = 0x1000_0000;

    fn space_with_cap(pointee: u64) -> AddressSpace {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 20)
            .build();
        let cap = Capability::root_rw(pointee, 64);
        space.store_cap(HEAP + 0x2000, &cap).unwrap();
        space
    }

    #[test]
    fn clean_image_audits_clean() {
        let space = space_with_cap(HEAP + 0x100);
        let mut dump = CoreDump::capture(&space);
        let shadow = ShadowMap::new(HEAP, 1 << 20); // nothing reusable
        let engine = ParallelSweepEngine::new(Kernel::Simple, 1);
        let report = audit_dump(&engine, &mut dump, space.registers(), &shadow);
        assert!(report.clean());
        assert_eq!(report.caps_inspected, 1);
        assert!(report.bytes_scanned >= 1 << 20);
    }

    #[test]
    fn cap_into_painted_set_is_a_violation() {
        let space = space_with_cap(HEAP + 0x100);
        let mut dump = CoreDump::capture(&space);
        let mut shadow = ShadowMap::new(HEAP, 1 << 20);
        shadow.paint(HEAP + 0x100, 64);
        let engine = ParallelSweepEngine::new(Kernel::Simple, 1);
        let report = audit_dump(&engine, &mut dump, space.registers(), &shadow);
        assert!(!report.clean());
        assert_eq!(report.violations, 1);
        assert_eq!(report.offenders.len(), 1);
        assert_eq!(report.offenders[0].at, HEAP + 0x2000);
        assert_eq!(report.offenders[0].pointee, HEAP + 0x100);
    }

    #[test]
    fn register_roots_are_audited() {
        let mut space = space_with_cap(HEAP + 0x100);
        space
            .registers_mut()
            .set(2, Capability::root_rw(HEAP + 0x400, 32));
        let mut dump = CoreDump::capture(&space);
        let mut shadow = ShadowMap::new(HEAP, 1 << 20);
        shadow.paint(HEAP + 0x400, 32);
        let engine = ParallelSweepEngine::new(Kernel::Simple, 1);
        let report = audit_dump(&engine, &mut dump, space.registers(), &shadow);
        assert_eq!(report.reg_violations, 1);
        assert_eq!(report.violations, 0, "memory itself is clean");
        assert!(!report.clean());
    }

    #[test]
    fn audit_never_mutates_the_dump_owner() {
        // The sweep clears tags in the dump clone; the source space keeps
        // its capability.
        let space = space_with_cap(HEAP + 0x100);
        let mut dump = CoreDump::capture(&space);
        let mut shadow = ShadowMap::new(HEAP, 1 << 20);
        shadow.paint(HEAP + 0x100, 64);
        let engine = ParallelSweepEngine::new(Kernel::Simple, 1);
        audit_dump(&engine, &mut dump, space.registers(), &shadow);
        assert!(space.load_cap(HEAP + 0x2000).unwrap().tag());
    }
}
