//! Sweep-engine telemetry: per-sweep metrics/events and a [`SweepCost`]
//! implementation that feeds the engine's cost hooks into histograms.

use std::time::Duration;

use telemetry::{Counter, EventKind, LogHistogram, Registry};

use crate::engine::SweepCost;
use crate::SweepStats;

/// Metric handles a sweep engine reports into. Default-constructed (or
/// registered against a disabled [`Registry`]) telemetry is a no-op, so
/// the engine carries it unconditionally.
#[derive(Debug, Clone, Default)]
pub struct SweepTelemetry {
    sweeps: Counter,
    bytes: Counter,
    caps_inspected: Counter,
    caps_revoked: Counter,
    retries: Counter,
    sweep_ns: LogHistogram,
    sweep_bytes: LogHistogram,
    registry: Registry,
}

impl SweepTelemetry {
    /// Telemetry reporting into `registry` under the `cvk_sweep_*`
    /// metric names, with one [`EventKind::Sweep`] event per sweep.
    pub fn register(registry: &Registry) -> SweepTelemetry {
        SweepTelemetry {
            sweeps: registry.counter("cvk_sweeps_total"),
            bytes: registry.counter("cvk_sweep_bytes_total"),
            caps_inspected: registry.counter("cvk_sweep_caps_inspected_total"),
            caps_revoked: registry.counter("cvk_sweep_caps_revoked_total"),
            retries: registry.counter("cvk_sweep_retries_total"),
            sweep_ns: registry.histogram("cvk_sweep_duration_ns"),
            sweep_bytes: registry.histogram("cvk_sweep_bytes"),
            registry: registry.clone(),
        }
    }

    /// Whether any backing registry records.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Records one completed sweep. `kernel` is the executing kernel's
    /// stable name (see [`crate::Kernel::name`]).
    pub fn observe(
        &self,
        stats: &SweepStats,
        elapsed: Duration,
        workers: usize,
        kernel: &'static str,
    ) {
        if !self.is_enabled() {
            return;
        }
        let duration_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.sweeps.inc();
        self.bytes.add(stats.bytes_swept);
        self.caps_inspected.add(stats.caps_inspected);
        self.caps_revoked.add(stats.caps_revoked);
        self.sweep_ns.record(duration_ns);
        self.sweep_bytes.record(stats.bytes_swept);
        self.registry.event(EventKind::Sweep {
            bytes_swept: stats.bytes_swept,
            caps_inspected: stats.caps_inspected,
            caps_revoked: stats.caps_revoked,
            duration_ns,
            workers,
            kernel,
        });
    }

    /// Records a sweep that recovered from `chunks` panicking chunks by
    /// retrying them on the reference kernel. `kernel` is the kernel
    /// whose chunks panicked.
    pub fn observe_retries(&self, chunks: u64, kernel: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.retries.add(chunks);
        self.registry
            .event(EventKind::SweepRetried { chunks, kernel });
    }
}

/// A [`SweepCost`] implementation that counts the engine's memory-access
/// hooks into registry metrics — the §6.3 access mix (chunk reads,
/// `CLoadTags` queries, shadow lookups, revocation stores, mispredicts)
/// observable on a live run. Chunk sizes feed a histogram, exposing the
/// filter-induced chunking distribution.
#[derive(Debug, Clone, Default)]
pub struct TelemetryCost {
    chunk_reads: Counter,
    chunk_bytes: Counter,
    cloadtags: Counter,
    shadow_lookups: Counter,
    revoke_stores: Counter,
    branch_mispredicts: Counter,
    chunk_size: LogHistogram,
}

impl TelemetryCost {
    /// A cost observer reporting into `registry` under the
    /// `cvk_sweep_access_*` metric names.
    pub fn register(registry: &Registry) -> TelemetryCost {
        TelemetryCost {
            chunk_reads: registry.counter("cvk_sweep_access_chunk_reads_total"),
            chunk_bytes: registry.counter("cvk_sweep_access_chunk_bytes_total"),
            cloadtags: registry.counter("cvk_sweep_access_cloadtags_total"),
            shadow_lookups: registry.counter("cvk_sweep_access_shadow_lookups_total"),
            revoke_stores: registry.counter("cvk_sweep_access_revoke_stores_total"),
            branch_mispredicts: registry.counter("cvk_sweep_access_branch_mispredicts_total"),
            chunk_size: registry.histogram("cvk_sweep_access_chunk_bytes"),
        }
    }
}

impl SweepCost for TelemetryCost {
    fn chunk_read(&mut self, _addr: u64, len: u64) {
        self.chunk_reads.inc();
        self.chunk_bytes.add(len);
        self.chunk_size.record(len);
    }

    fn cloadtags(&mut self, _addr: u64) {
        self.cloadtags.inc();
    }

    fn shadow_lookup(&mut self, _cap_base: u64) {
        self.shadow_lookups.inc();
    }

    fn revoke_store(&mut self, _addr: u64) {
        self.revoke_stores.inc();
    }

    fn branch_mispredict(&mut self) {
        self.branch_mispredicts.inc();
    }
}

/// Cost models compose as tuples: every hook fans out to both halves, so
/// a timed sweep can charge its machine model *and* stream the same
/// access mix into telemetry in one walk.
impl<A: SweepCost, B: SweepCost> SweepCost for (A, B) {
    const IS_FREE: bool = A::IS_FREE && B::IS_FREE;

    fn chunk_read(&mut self, addr: u64, len: u64) {
        self.0.chunk_read(addr, len);
        self.1.chunk_read(addr, len);
    }

    fn cloadtags(&mut self, addr: u64) {
        self.0.cloadtags(addr);
        self.1.cloadtags(addr);
    }

    fn shadow_lookup(&mut self, cap_base: u64) {
        self.0.shadow_lookup(cap_base);
        self.1.shadow_lookup(cap_base);
    }

    fn revoke_store(&mut self, addr: u64) {
        self.0.revoke_store(addr);
        self.1.revoke_store(addr);
    }

    fn branch_mispredict(&mut self) {
        self.0.branch_mispredict();
        self.1.branch_mispredict();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CLoadTagsLines, SegmentSource, SweepEngine};
    use crate::{Kernel, ShadowMap};
    use cheri::Capability;
    use tagmem::TaggedMemory;

    const BASE: u64 = 0x2000_0000;

    #[test]
    fn telemetry_cost_counts_the_access_mix() {
        let mut mem = TaggedMemory::new(BASE, 1 << 14);
        mem.write_cap(BASE + 0x100, &Capability::root_rw(BASE + 0x40, 64))
            .unwrap();
        let mut shadow = ShadowMap::new(BASE, 1 << 14);
        shadow.paint(BASE + 0x40, 64);

        let registry = Registry::new(8);
        let mut cost = TelemetryCost::register(&registry);
        let stats = SweepEngine::new(Kernel::Wide).sweep_costed(
            SegmentSource::new(&mut mem),
            CLoadTagsLines::new(),
            &shadow,
            &mut cost,
        );
        assert_eq!(stats.caps_revoked, 1);

        let snap = registry.snapshot();
        assert!(snap.counters["cvk_sweep_access_cloadtags_total"] > 0);
        assert_eq!(snap.counters["cvk_sweep_access_shadow_lookups_total"], 1);
        assert_eq!(snap.counters["cvk_sweep_access_revoke_stores_total"], 1);
        assert!(snap.histograms["cvk_sweep_access_chunk_bytes"].count() > 0);
    }

    #[test]
    fn tuple_cost_fans_out_to_both_halves() {
        let registry = Registry::new(8);
        let mut cost = (
            TelemetryCost::register(&registry),
            TelemetryCost::register(&registry),
        );
        cost.chunk_read(BASE, 128);
        cost.branch_mispredict();
        let snap = registry.snapshot();
        // Both halves share the registry cells, so each hook counts twice.
        assert_eq!(snap.counters["cvk_sweep_access_chunk_reads_total"], 2);
        assert_eq!(
            snap.counters["cvk_sweep_access_branch_mispredicts_total"],
            2
        );
    }

    #[test]
    fn disabled_telemetry_observes_nothing() {
        let t = SweepTelemetry::default();
        assert!(!t.is_enabled());
        t.observe(&SweepStats::default(), Duration::from_micros(5), 2, "wide");
        // And a registered one records.
        let registry = Registry::new(8);
        let t = SweepTelemetry::register(&registry);
        let stats = SweepStats {
            bytes_swept: 4096,
            caps_inspected: 10,
            caps_revoked: 2,
            ..Default::default()
        };
        t.observe(&stats, Duration::from_micros(5), 2, Kernel::Fast.name());
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cvk_sweeps_total"], 1);
        assert_eq!(snap.counters["cvk_sweep_bytes_total"], 4096);
        let events = registry.recent_events(4);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            EventKind::Sweep {
                caps_revoked: 2,
                workers: 2,
                kernel: "fast",
                ..
            }
        ));
    }

    #[test]
    fn cost_freeness_composes() {
        use crate::engine::NoCost;
        assert!(<NoCost as SweepCost>::IS_FREE);
        assert!(<(NoCost, NoCost) as SweepCost>::IS_FREE);
        assert!(!<TelemetryCost as SweepCost>::IS_FREE);
        assert!(!<(NoCost, TelemetryCost) as SweepCost>::IS_FREE);
    }
}
