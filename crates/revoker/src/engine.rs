//! The unified sweep engine: roots × filters × kernels (§3.3–§3.5).
//!
//! Revocation sweeping decomposes into three orthogonal choices:
//!
//! * **What to walk** — a [`CapSource`]: an [`AddressSpace`]'s sweepable
//!   segments plus the register file ([`SpaceSource`]), one segment
//!   ([`SegmentSource`]), a sub-range of one ([`RangeSource`]), the
//!   register file alone ([`RegisterSource`]), a core dump's images
//!   ([`DumpSource`]), or a conservatively preprocessed x86 image
//!   ([`crate::conservative::ImageSource`]).
//! * **What to skip** — a [`GranuleFilter`]: nothing ([`NoFilter`]), PTE
//!   CapDirty-clean pages ([`CapDirtyPages`], [`DirtyPageList`]; §3.4.2),
//!   or capability-free cache lines ([`CLoadTagsLines`], [`IdealLines`];
//!   §3.4.1). Filters compose as tuples: `(pages, lines)` applies both.
//! * **How to revoke** — a [`RevokeKernel`]: the Figure 7 optimisation
//!   tiers wrapped by [`Kernel`], or the conservative-image kernels in
//!   [`crate::conservative`].
//!
//! [`SweepEngine`] composes the three, owning chunked visitation and
//! [`SweepStats`] accumulation. Because the *same* walk drives both the
//! functional sweep and the cycle-accounted one (via [`SweepCost`] hooks,
//! implemented over [`simcache::Machine`] in [`crate::timed`]), the timed
//! and untimed paths share one visitation order by construction.
//! [`ParallelSweepEngine`] runs the identical plan across scoped worker
//! threads (§3.5: sweeping is embarrassingly parallel) with per-worker
//! stats merged deterministically.

use faultinject::{FaultInjector, FaultPoint, InjectedFault};
use tagmem::{
    AddressSpace, PageTable, RegisterFile, Segment, SegmentImage, TaggedMemory, GRANULE_SIZE,
    LINE_SIZE, PAGE_SIZE,
};

use crate::sweep::run_kernel;
use crate::{Kernel, ShadowMap, SweepStats};

/// Hooks charging the memory-system cost of a sweep's accesses.
///
/// The sequential [`SweepEngine`] invokes these in exactly the order the
/// sweep touches memory, so a cost model (e.g. [`crate::timed`]'s machine
/// replay) observes the same access stream the functional sweep performs.
/// Every method defaults to a no-op; [`NoCost`] is the free implementation
/// used by untimed sweeps.
pub trait SweepCost {
    /// Whether this cost model observes nothing (every hook is a no-op).
    /// Kernels may take accounting-free shortcuts — e.g. the fast kernel's
    /// empty-shadow bulk fall-through — only when this is `true`, so that
    /// cost-charging sweeps always see the full access stream. Composite
    /// models must AND their parts; anything that records state must leave
    /// this `false` (the conservative default).
    const IS_FREE: bool = false;

    /// A data read of `len` bytes at `addr` (one chunk the engine visits).
    fn chunk_read(&mut self, addr: u64, len: u64) {
        let _ = (addr, len);
    }
    /// A `CLoadTags` tag query for the line at `addr` (§3.4.1).
    fn cloadtags(&mut self, addr: u64) {
        let _ = addr;
    }
    /// A shadow-map lookup for a capability with base `cap_base` (§3.2).
    fn shadow_lookup(&mut self, cap_base: u64) {
        let _ = cap_base;
    }
    /// The revocation store zeroing the granule at `addr` (§3.3).
    fn revoke_store(&mut self, addr: u64) {
        let _ = addr;
    }
    /// A data-dependent branch misprediction in the inner loop (§6.3).
    fn branch_mispredict(&mut self) {}
}

/// The free cost model: untimed sweeps charge nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCost;

impl SweepCost for NoCost {
    const IS_FREE: bool = true;
}

/// Memory a filter can query for tag presence without reading data.
pub trait TagProbe {
    /// Whether the cache line containing `line` holds any tagged granule
    /// (the `CLoadTags` primitive, §3.4.1). Conservative: returns `true`
    /// when the line cannot be queried.
    fn probe_line(&self, line: u64) -> bool;
}

impl TagProbe for TaggedMemory {
    fn probe_line(&self, line: u64) -> bool {
        self.load_tags(line).map(|mask| mask != 0).unwrap_or(true)
    }
}

/// A root set to sweep: one or more contiguous memory regions, plus
/// optionally the capability register file (§3.3's roots).
pub trait CapSource {
    /// The memory type backing each region.
    type Mem: TagProbe;

    /// Calls `f(mem, start, len)` for each region, in a fixed order.
    fn for_each_region(&mut self, f: impl FnMut(&mut Self::Mem, u64, u64));

    /// The register file to sweep after the regions, if this source has
    /// one.
    fn registers(&mut self) -> Option<&mut RegisterFile> {
        None
    }
}

/// The full §3.3 root set of an [`AddressSpace`]: every sweepable segment
/// and the register file.
pub struct SpaceSource<'a> {
    segments: &'a mut [Segment],
    regs: &'a mut RegisterFile,
}

impl<'a> SpaceSource<'a> {
    /// Splits `space` into a sweep source and its page table (so a
    /// [`CapDirtyPages`] filter can borrow the table while the source
    /// borrows the segments).
    pub fn split(space: &'a mut AddressSpace) -> (SpaceSource<'a>, &'a mut PageTable) {
        let (segments, regs, page_table) = space.sweep_parts_mut();
        (SpaceSource { segments, regs }, page_table)
    }
}

impl CapSource for SpaceSource<'_> {
    type Mem = TaggedMemory;

    fn for_each_region(&mut self, mut f: impl FnMut(&mut TaggedMemory, u64, u64)) {
        for seg in self.segments.iter_mut().filter(|s| s.kind().sweepable()) {
            let mem = seg.mem_mut();
            let (base, len) = (mem.base(), mem.len());
            f(mem, base, len);
        }
    }

    fn registers(&mut self) -> Option<&mut RegisterFile> {
        Some(self.regs)
    }
}

/// One whole segment, no registers.
pub struct SegmentSource<'a>(&'a mut TaggedMemory);

impl<'a> SegmentSource<'a> {
    /// A source walking all of `mem`.
    pub fn new(mem: &'a mut TaggedMemory) -> SegmentSource<'a> {
        SegmentSource(mem)
    }
}

impl CapSource for SegmentSource<'_> {
    type Mem = TaggedMemory;

    fn for_each_region(&mut self, mut f: impl FnMut(&mut TaggedMemory, u64, u64)) {
        let (base, len) = (self.0.base(), self.0.len());
        f(self.0, base, len);
    }
}

/// A granule-aligned sub-range of one segment (incremental sweep slices,
/// §3.5).
pub struct RangeSource<'a> {
    mem: &'a mut TaggedMemory,
    start: u64,
    len: u64,
}

impl<'a> RangeSource<'a> {
    /// A source walking `[start, start + len)` of `mem`.
    pub fn new(mem: &'a mut TaggedMemory, start: u64, len: u64) -> RangeSource<'a> {
        RangeSource { mem, start, len }
    }
}

impl CapSource for RangeSource<'_> {
    type Mem = TaggedMemory;

    fn for_each_region(&mut self, mut f: impl FnMut(&mut TaggedMemory, u64, u64)) {
        let (start, len) = (self.start, self.len);
        f(self.mem, start, len);
    }
}

/// The capability register file alone (swept at the end of an incremental
/// revocation epoch).
pub struct RegisterSource<'a>(&'a mut RegisterFile);

impl<'a> RegisterSource<'a> {
    /// A source sweeping only `regs`.
    pub fn new(regs: &'a mut RegisterFile) -> RegisterSource<'a> {
        RegisterSource(regs)
    }
}

impl CapSource for RegisterSource<'_> {
    type Mem = TaggedMemory;

    fn for_each_region(&mut self, _f: impl FnMut(&mut TaggedMemory, u64, u64)) {}

    fn registers(&mut self) -> Option<&mut RegisterFile> {
        Some(self.0)
    }
}

/// The segment images of a captured core dump (the §5.3 offline pipeline).
pub struct DumpSource<'a>(&'a mut [SegmentImage]);

impl<'a> DumpSource<'a> {
    /// A source walking each image in `segments`.
    pub fn new(segments: &'a mut [SegmentImage]) -> DumpSource<'a> {
        DumpSource(segments)
    }
}

impl CapSource for DumpSource<'_> {
    type Mem = TaggedMemory;

    fn for_each_region(&mut self, mut f: impl FnMut(&mut TaggedMemory, u64, u64)) {
        for img in self.0.iter_mut() {
            let (base, len) = (img.mem.base(), img.mem.len());
            f(&mut img.mem, base, len);
        }
    }
}

/// How finely a [`GranuleFilter`] partitions the walk. Ordered: composing
/// filters walks at the finest granularity either requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FilterGranularity {
    /// One chunk per region (no skip opportunities).
    Region,
    /// One chunk per page ([`PAGE_SIZE`] frames; §3.4.2).
    Page,
    /// One chunk per cache line ([`LINE_SIZE`]; §3.4.1).
    Line,
}

/// A work-skipping predicate over the walk (the paper's hardware assists,
/// §3.4). Filters are stateful; the engine consults them in ascending
/// address order.
pub trait GranuleFilter<M: TagProbe> {
    /// The chunking this filter needs. Defaults to whole regions.
    fn granularity(&self) -> FilterGranularity {
        FilterGranularity::Region
    }

    /// Whether the page frame at `page` must be visited. Charged via
    /// `cost`; called once per frame, ascending. Defaults to visiting.
    fn visit_page<C: SweepCost>(&mut self, page: u64, mem: &M, cost: &mut C) -> bool {
        let _ = (page, mem, cost);
        true
    }

    /// Whether the line at `line` (within a visited page) must be swept.
    /// Defaults to sweeping.
    fn visit_line<C: SweepCost>(&mut self, line: u64, mem: &M, cost: &mut C) -> bool {
        let _ = (line, mem, cost);
        true
    }

    /// Feedback after a visited page has been fully swept: `caps_found` is
    /// the number of capabilities inspected on it (0 ⇒ CapDirty false
    /// positive, §3.4.2).
    fn page_swept(&mut self, page: u64, caps_found: u64) {
        let _ = (page, caps_found);
    }
}

/// No filtering: sweep every byte of every region.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFilter;

impl<M: TagProbe> GranuleFilter<M> for NoFilter {}

/// PTE CapDirty page skipping over a live [`PageTable`] (§3.4.2): clean
/// pages are skipped, and visited pages found capability-free are
/// re-cleaned (clearing false positives).
pub struct CapDirtyPages<'a>(&'a mut PageTable);

impl<'a> CapDirtyPages<'a> {
    /// A filter over `table`'s CapDirty bits.
    pub fn new(table: &'a mut PageTable) -> CapDirtyPages<'a> {
        CapDirtyPages(table)
    }
}

impl<M: TagProbe> GranuleFilter<M> for CapDirtyPages<'_> {
    fn granularity(&self) -> FilterGranularity {
        FilterGranularity::Page
    }

    fn visit_page<C: SweepCost>(&mut self, page: u64, _mem: &M, _cost: &mut C) -> bool {
        self.0.is_cap_dirty(page)
    }

    fn page_swept(&mut self, page: u64, caps_found: u64) {
        if caps_found == 0 {
            // False positive: the page held no capabilities.
            self.0.clear_cap_dirty(page);
        }
    }
}

/// Page skipping from a precomputed sorted dirty-page array (the §5.3
/// offline form, as handed over by the OS with a core dump).
pub struct DirtyPageList<'a>(&'a [u64]);

impl<'a> DirtyPageList<'a> {
    /// A filter over `pages`, a sorted list of page-aligned addresses.
    pub fn new(pages: &'a [u64]) -> DirtyPageList<'a> {
        DirtyPageList(pages)
    }
}

impl<M: TagProbe> GranuleFilter<M> for DirtyPageList<'_> {
    fn granularity(&self) -> FilterGranularity {
        FilterGranularity::Page
    }

    fn visit_page<C: SweepCost>(&mut self, page: u64, _mem: &M, _cost: &mut C) -> bool {
        self.0.binary_search(&(page & !(PAGE_SIZE - 1))).is_ok()
    }
}

/// `CLoadTags` line skipping (§3.4.1): each line pays a tag query, and the
/// skip decision is a data-dependent branch mispredicted whenever it flips
/// (§6.3) — which is why this filter can *lose* at high line density.
#[derive(Debug, Clone, Copy, Default)]
pub struct CLoadTagsLines {
    prev_skipped: bool,
}

impl CLoadTagsLines {
    /// A fresh filter (predictor state reset).
    pub fn new() -> CLoadTagsLines {
        CLoadTagsLines::default()
    }
}

impl<M: TagProbe> GranuleFilter<M> for CLoadTagsLines {
    fn granularity(&self) -> FilterGranularity {
        FilterGranularity::Line
    }

    fn visit_page<C: SweepCost>(&mut self, _page: u64, _mem: &M, _cost: &mut C) -> bool {
        self.prev_skipped = false;
        true
    }

    fn visit_line<C: SweepCost>(&mut self, line: u64, mem: &M, cost: &mut C) -> bool {
        cost.cloadtags(line);
        let skip = !mem.probe_line(line);
        if skip != self.prev_skipped {
            cost.branch_mispredict();
        }
        self.prev_skipped = skip;
        !skip
    }
}

/// Oracle line skipping: reads exactly the lines containing capabilities
/// with zero query overhead (Fig. 8b's dotted lower bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealLines;

impl<M: TagProbe> GranuleFilter<M> for IdealLines {
    fn granularity(&self) -> FilterGranularity {
        FilterGranularity::Line
    }

    fn visit_line<C: SweepCost>(&mut self, line: u64, mem: &M, _cost: &mut C) -> bool {
        mem.probe_line(line)
    }
}

/// Forces line-granular chunking without skipping anything: a timed full
/// sweep reads line by line, like the hardware it models.
#[derive(Debug, Clone, Copy, Default)]
pub struct EveryLine;

impl<M: TagProbe> GranuleFilter<M> for EveryLine {
    fn granularity(&self) -> FilterGranularity {
        FilterGranularity::Line
    }
}

impl<M: TagProbe, A: GranuleFilter<M>, B: GranuleFilter<M>> GranuleFilter<M> for (A, B) {
    fn granularity(&self) -> FilterGranularity {
        self.0.granularity().max(self.1.granularity())
    }

    fn visit_page<C: SweepCost>(&mut self, page: u64, mem: &M, cost: &mut C) -> bool {
        self.0.visit_page(page, mem, cost) && self.1.visit_page(page, mem, cost)
    }

    fn visit_line<C: SweepCost>(&mut self, line: u64, mem: &M, cost: &mut C) -> bool {
        self.0.visit_line(line, mem, cost) && self.1.visit_line(line, mem, cost)
    }

    fn page_swept(&mut self, page: u64, caps_found: u64) {
        self.0.page_swept(page, caps_found);
        self.1.page_swept(page, caps_found);
    }
}

/// A revocation inner loop over one contiguous window of a source's
/// memory (§3.3). Implementations add `caps_inspected` / `caps_revoked`
/// (and, via `cost`, per-capability charges) to `stats`; the engine
/// accounts `bytes_swept` and the chunk read itself.
pub trait RevokeKernel<M> {
    /// Sweeps `[start, start + len)` of `mem` against `shadow`.
    fn sweep_window<C: SweepCost>(
        &self,
        mem: &mut M,
        start: u64,
        len: u64,
        shadow: &ShadowMap,
        cost: &mut C,
        stats: &mut SweepStats,
    );
}

impl RevokeKernel<TaggedMemory> for Kernel {
    fn sweep_window<C: SweepCost>(
        &self,
        mem: &mut TaggedMemory,
        start: u64,
        len: u64,
        shadow: &ShadowMap,
        cost: &mut C,
        stats: &mut SweepStats,
    ) {
        assert!(mem.contains(start, len), "sweep range outside segment");
        assert_eq!(start % GRANULE_SIZE, 0, "unaligned sweep start");
        assert_eq!(len % GRANULE_SIZE, 0, "unaligned sweep length");
        let base = mem.base();
        let g0 = ((start - base) / GRANULE_SIZE) as usize;
        let g1 = g0 + (len / GRANULE_SIZE) as usize;
        let (data, tags) = mem.as_parts_mut();
        run_kernel(*self, data, tags, g0, g1, shadow, base, cost, stats);
    }
}

/// Yields the page frames overlapping `[start, start + len)` as
/// `(frame, clamped_start, clamped_end)` triples, ascending. `frame` is
/// the [`PAGE_SIZE`]-aligned key used by page tables and dirty lists.
pub fn page_spans(start: u64, len: u64) -> impl Iterator<Item = (u64, u64, u64)> {
    let end = start + len;
    let mut page = start & !(PAGE_SIZE - 1);
    core::iter::from_fn(move || {
        if page >= end {
            return None;
        }
        let frame = page;
        let span = (frame.max(start), (frame + PAGE_SIZE).min(end));
        page += PAGE_SIZE;
        Some((frame, span.0, span.1))
    })
}

/// Yields `(line_start, line_len)` chunks of at most [`LINE_SIZE`] bytes
/// covering `[start, start + len)`, ascending — the visitation order the
/// engine (and [`cheriisa`-style assembled sweeps][crate::timed]) use for
/// line-granular walks.
pub fn line_spans(start: u64, len: u64) -> impl Iterator<Item = (u64, u64)> {
    let end = start + len;
    let mut line = start;
    core::iter::from_fn(move || {
        if line >= end {
            return None;
        }
        let chunk = (line, (end - line).min(LINE_SIZE));
        line += chunk.1;
        Some(chunk)
    })
}

/// Reusable working memory for sweep walks and plans.
///
/// Each engine walk needs a handful of growable buffers: the visited-page
/// feedback list and — for the parallel engine — the planned chunk list,
/// per-chunk granule windows, worker group boundaries and per-worker
/// capability-count buffers. A `SweepScratch` owns all of them, so a
/// caller that threads the *same* scratch through every sweep (see
/// [`SweepEngine::sweep_scratched`],
/// [`ParallelSweepEngine::sweep_scratched`]) pays each allocation once:
/// the buffers grow to their high-water mark during warm-up and are then
/// reused, leaving steady-state sweeps with **zero heap allocations** in
/// the walk and inner loop. The scratch-free entry points build a fresh
/// scratch per sweep, preserving the old behaviour.
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// `(frame, caps_found)` pairs from the page walk of one region.
    pages: Vec<(u64, u64)>,
    /// Planned `(start, len)` chunk list (parallel engine).
    chunks: Vec<(u64, u64)>,
    /// Granule windows per planned chunk.
    windows: Vec<(usize, usize)>,
    /// Per-chunk `caps_inspected` counts, in plan order.
    caps_per_chunk: Vec<u64>,
    /// Per-chunk scheduling weights (bytes + decode work), in plan order.
    weights: Vec<u64>,
    /// Worker group boundaries as chunk-index ranges.
    groups: Vec<(usize, usize)>,
    /// Per-worker capability-count buffers (never shrunk, so a worker
    /// pool's buffers persist across sweeps).
    worker_caps: Vec<Vec<u64>>,
}

impl SweepScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> SweepScratch {
        SweepScratch::default()
    }
}

/// Walks one region under `filter`, calling `emit(mem, start, len, cost,
/// stats)` for each chunk that must be swept; `emit` returns the number of
/// capabilities it inspected. The visited pages are collected into
/// `pages` (cleared first) as `(frame, caps_found)` pairs — the engine
/// feeds these to [`GranuleFilter::page_swept`] after execution (page
/// feedback only affects *future* sweeps, so deferring it preserves
/// semantics). Taking the buffer from the caller lets a reused
/// [`SweepScratch`] make this walk allocation-free after warm-up.
#[allow(clippy::too_many_arguments)] // walk ABI: region + hooks + scratch
fn walk_region<M, F, C>(
    mem: &mut M,
    start: u64,
    len: u64,
    filter: &mut F,
    cost: &mut C,
    stats: &mut SweepStats,
    pages: &mut Vec<(u64, u64)>,
    mut emit: impl FnMut(&mut M, u64, u64, &mut C, &mut SweepStats) -> u64,
) where
    M: TagProbe,
    F: GranuleFilter<M>,
    C: SweepCost,
{
    pages.clear();
    match filter.granularity() {
        FilterGranularity::Region => {
            emit(mem, start, len, cost, stats);
        }
        granularity => {
            for (frame, page_start, page_end) in page_spans(start, len) {
                if !filter.visit_page(frame, mem, cost) {
                    stats.pages_skipped = stats.pages_skipped.saturating_add(1);
                    continue;
                }
                let mut caps = 0u64;
                if granularity == FilterGranularity::Page {
                    caps += emit(mem, page_start, page_end - page_start, cost, stats);
                } else {
                    for (line, line_len) in line_spans(page_start, page_end - page_start) {
                        if filter.visit_line(line, mem, cost) {
                            caps += emit(mem, line, line_len, cost, stats);
                        } else {
                            stats.lines_skipped = stats.lines_skipped.saturating_add(1);
                        }
                    }
                }
                pages.push((frame, caps));
            }
        }
    }
}

/// Sweeps the capability register file against `shadow` (§3.3's register
/// roots). Shared by every engine and by [`crate::Sweeper`].
pub fn sweep_register_file(regs: &mut RegisterFile, shadow: &ShadowMap) -> SweepStats {
    let mut stats = SweepStats::default();
    for cap in regs.iter_mut() {
        if cap.tag() {
            stats.caps_inspected += 1;
            if shadow.is_painted(cap.base()) {
                *cap = cap.cleared();
                stats.caps_revoked += 1;
                stats.regs_revoked += 1;
            }
        }
    }
    stats
}

/// The sequential sweep engine: one `source × filter × kernel`
/// composition, executed chunk by chunk in ascending address order with
/// optional cost accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepEngine<K> {
    kernel: K,
}

impl<K> SweepEngine<K> {
    /// An engine revoking with `kernel`.
    pub fn new(kernel: K) -> SweepEngine<K> {
        SweepEngine { kernel }
    }

    /// The configured kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Sweeps `source` under `filter` without cost accounting.
    pub fn sweep<S, F>(&self, source: S, filter: F, shadow: &ShadowMap) -> SweepStats
    where
        S: CapSource,
        F: GranuleFilter<S::Mem>,
        K: RevokeKernel<S::Mem>,
    {
        self.sweep_costed(source, filter, shadow, &mut NoCost)
    }

    /// Sweeps `source` under `filter`, charging every access to `cost` in
    /// visitation order.
    pub fn sweep_costed<S, F, C>(
        &self,
        source: S,
        filter: F,
        shadow: &ShadowMap,
        cost: &mut C,
    ) -> SweepStats
    where
        S: CapSource,
        F: GranuleFilter<S::Mem>,
        C: SweepCost,
        K: RevokeKernel<S::Mem>,
    {
        self.sweep_costed_scratched(source, filter, shadow, cost, &mut SweepScratch::new())
    }

    /// [`SweepEngine::sweep`] reusing `scratch`'s buffers: after the first
    /// (warm-up) sweep grows them, subsequent sweeps with the same scratch
    /// allocate nothing.
    pub fn sweep_scratched<S, F>(
        &self,
        source: S,
        filter: F,
        shadow: &ShadowMap,
        scratch: &mut SweepScratch,
    ) -> SweepStats
    where
        S: CapSource,
        F: GranuleFilter<S::Mem>,
        K: RevokeKernel<S::Mem>,
    {
        self.sweep_costed_scratched(source, filter, shadow, &mut NoCost, scratch)
    }

    /// [`SweepEngine::sweep_costed`] reusing `scratch`'s buffers.
    pub fn sweep_costed_scratched<S, F, C>(
        &self,
        mut source: S,
        mut filter: F,
        shadow: &ShadowMap,
        cost: &mut C,
        scratch: &mut SweepScratch,
    ) -> SweepStats
    where
        S: CapSource,
        F: GranuleFilter<S::Mem>,
        C: SweepCost,
        K: RevokeKernel<S::Mem>,
    {
        let mut stats = SweepStats::default();
        let pages = &mut scratch.pages;
        source.for_each_region(|mem, start, len| {
            walk_region(
                mem,
                start,
                len,
                &mut filter,
                cost,
                &mut stats,
                pages,
                |mem, s, l, cost, stats| {
                    cost.chunk_read(s, l);
                    let before = stats.caps_inspected;
                    self.kernel.sweep_window(mem, s, l, shadow, cost, stats);
                    stats.bytes_swept = stats.bytes_swept.saturating_add(l);
                    stats.caps_inspected - before
                },
            );
            stats.segments_swept = stats.segments_swept.saturating_add(1);
            for &(frame, caps) in pages.iter() {
                filter.page_swept(frame, caps);
            }
        });
        if let Some(regs) = source.registers() {
            stats += sweep_register_file(regs, shadow);
        }
        stats
    }
}

/// Upper bound on `CHERIVOKE_SWEEP_WORKERS`: beyond this, thread spawn
/// and merge overhead dominates any sweep this repo models, so larger
/// requests are clamped (with a warning) rather than honoured.
pub const MAX_SWEEP_WORKERS: usize = 64;

/// Validates a raw `CHERIVOKE_SWEEP_WORKERS` value. Returns the worker
/// count to use plus a human-readable warning when the value was
/// malformed or out of range (empty/unparseable/0 fall back to 1; values
/// above [`MAX_SWEEP_WORKERS`] clamp down to it).
pub fn parse_workers(raw: &str) -> (usize, Option<String>) {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return (
            1,
            Some("CHERIVOKE_SWEEP_WORKERS is set but empty; using 1 worker".to_string()),
        );
    }
    match trimmed.parse::<usize>() {
        Err(_) => (
            1,
            Some(format!(
                "CHERIVOKE_SWEEP_WORKERS={trimmed:?} is not a positive integer; using 1 worker"
            )),
        ),
        Ok(0) => (
            1,
            Some("CHERIVOKE_SWEEP_WORKERS=0 is invalid (minimum 1); using 1 worker".to_string()),
        ),
        Ok(n) if n > MAX_SWEEP_WORKERS => (
            MAX_SWEEP_WORKERS,
            Some(format!(
                "CHERIVOKE_SWEEP_WORKERS={n} exceeds the maximum of {MAX_SWEEP_WORKERS}; \
                 clamping to {MAX_SWEEP_WORKERS}"
            )),
        ),
        Ok(n) => (n, None),
    }
}

/// Worker-thread count for parallel sweeps, from the
/// `CHERIVOKE_SWEEP_WORKERS` environment variable (default 1 =
/// sequential). Malformed or out-of-range values are validated by
/// [`parse_workers`]; the warning, if any, is printed to stderr once per
/// process instead of being silently swallowed.
pub fn workers_from_env() -> usize {
    match std::env::var("CHERIVOKE_SWEEP_WORKERS") {
        Err(_) => 1,
        Ok(raw) => {
            let (workers, warning) = parse_workers(&raw);
            if let Some(msg) = warning {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {msg}"));
            }
            workers
        }
    }
}

/// Validates a raw `CHERIVOKE_FAST_KERNEL` value. Returns whether the
/// fast kernel is enabled plus a warning when the value was not
/// recognised (unrecognised values keep the default: enabled).
pub fn parse_fast_kernel(raw: &str) -> (bool, Option<String>) {
    let v = raw.trim();
    if v.is_empty()
        || v.eq_ignore_ascii_case("1")
        || v.eq_ignore_ascii_case("true")
        || v.eq_ignore_ascii_case("on")
    {
        (true, None)
    } else if v.eq_ignore_ascii_case("0")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("off")
    {
        (false, None)
    } else {
        (
            true,
            Some(format!(
                "CHERIVOKE_FAST_KERNEL={v:?} is not recognised (expected 0/1/true/false/on/off); \
                 keeping the fast kernel enabled"
            )),
        )
    }
}

/// Whether the word-at-a-time fast sweep kernel is enabled, from the
/// `CHERIVOKE_FAST_KERNEL` environment variable. **Default on**: unset,
/// empty, `1`, `true` and `on` enable it; `0`, `false` and `off` fall
/// back to [`Kernel::Wide`]. Unrecognised values warn once to stderr and
/// keep the default.
pub fn fast_kernel_from_env() -> bool {
    match std::env::var("CHERIVOKE_FAST_KERNEL") {
        Err(_) => true,
        Ok(raw) => {
            let (enabled, warning) = parse_fast_kernel(&raw);
            if let Some(msg) = warning {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {msg}"));
            }
            enabled
        }
    }
}

/// Validates a raw `CHERIVOKE_KERNEL` value. Returns the kernel to use
/// plus a warning when the value was not recognised (unrecognised values
/// keep the default: [`Kernel::Fast`]).
///
/// Accepted names (case-insensitive): `reference` (or `wide` — the
/// bit-parallel reference tier), `simple`, `unrolled`, `fast`, and `simd`.
pub fn parse_kernel(raw: &str) -> (Kernel, Option<String>) {
    let v = raw.trim();
    if v.eq_ignore_ascii_case("reference") || v.eq_ignore_ascii_case("wide") {
        (Kernel::Wide, None)
    } else if v.eq_ignore_ascii_case("simple") {
        (Kernel::Simple, None)
    } else if v.eq_ignore_ascii_case("unrolled") {
        (Kernel::Unrolled, None)
    } else if v.eq_ignore_ascii_case("fast") || v.is_empty() {
        (Kernel::Fast, None)
    } else if v.eq_ignore_ascii_case("simd") {
        (Kernel::Simd, None)
    } else {
        (
            Kernel::Fast,
            Some(format!(
                "CHERIVOKE_KERNEL={v:?} is not recognised \
                 (expected reference|wide|simple|unrolled|fast|simd); using the fast kernel"
            )),
        )
    }
}

/// The sweep kernel selected by the environment, unifying the kernel
/// knobs behind one clamp+warn parse:
///
/// * `CHERIVOKE_KERNEL=reference|wide|simple|unrolled|fast|simd` picks a
///   kernel by name and takes precedence; unrecognised values warn once
///   to stderr and fall back to [`Kernel::Fast`] instead of panicking.
/// * Otherwise the deprecated boolean `CHERIVOKE_FAST_KERNEL` is still
///   honoured (with a one-time deprecation warning pointing at the new
///   variable): enabled → [`Kernel::Fast`], disabled → [`Kernel::Wide`].
/// * With neither set, the default is [`Kernel::Fast`].
pub fn kernel_from_env() -> Kernel {
    if let Ok(raw) = std::env::var("CHERIVOKE_KERNEL") {
        let (kernel, warning) = parse_kernel(&raw);
        if let Some(msg) = warning {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("warning: {msg}"));
        }
        return kernel;
    }
    if std::env::var("CHERIVOKE_FAST_KERNEL").is_ok() {
        static DEPRECATED: std::sync::Once = std::sync::Once::new();
        DEPRECATED.call_once(|| {
            eprintln!(
                "warning: CHERIVOKE_FAST_KERNEL is deprecated; \
                 use CHERIVOKE_KERNEL=fast|wide (or reference|simple|unrolled|simd) instead"
            )
        });
        if fast_kernel_from_env() {
            return Kernel::Fast;
        }
        return Kernel::Wide;
    }
    Kernel::Fast
}

/// The parallel sweep engine (§3.5): plans the identical chunk list the
/// sequential engine would visit, partitions it across scoped worker
/// threads on tag-word boundaries (workers own disjoint 64-granule words,
/// so no two touch the same tag word), and merges per-worker stats
/// deterministically with [`SweepStats::merge_parallel`]. The shadow map
/// is shared read-only. Results — memory, tags, and stats — are
/// byte-identical to the sequential engine by construction.
///
/// An engine optionally carries a [`SweepTelemetry`][crate::SweepTelemetry]
/// (see [`ParallelSweepEngine::with_telemetry`]): each sweep is then timed
/// and reported as metrics plus one structured event. Detached telemetry
/// (the default) costs one branch per sweep.
#[derive(Debug, Clone)]
pub struct ParallelSweepEngine {
    kernel: Kernel,
    workers: usize,
    telemetry: crate::SweepTelemetry,
    faults: FaultInjector,
}

impl ParallelSweepEngine {
    /// An engine using `kernel` across `workers` threads (clamped to ≥ 1;
    /// 1 executes sequentially with no thread overhead).
    pub fn new(kernel: Kernel, workers: usize) -> ParallelSweepEngine {
        ParallelSweepEngine {
            kernel,
            workers: workers.max(1),
            telemetry: crate::SweepTelemetry::default(),
            faults: FaultInjector::disabled(),
        }
    }

    /// An engine sized from `CHERIVOKE_SWEEP_WORKERS` (see
    /// [`workers_from_env`]).
    pub fn from_env(kernel: Kernel) -> ParallelSweepEngine {
        ParallelSweepEngine::new(kernel, workers_from_env())
    }

    /// Attaches sweep telemetry: every subsequent sweep records its
    /// duration, volume and revocation counts.
    pub fn with_telemetry(mut self, telemetry: crate::SweepTelemetry) -> ParallelSweepEngine {
        self.telemetry = telemetry;
        self
    }

    /// Arms fault injection: sweep chunks then run under `catch_unwind`
    /// with injected [`FaultPoint::SweepWorkerPanic`] /
    /// [`FaultPoint::TagReadError`] faults, recovering by retrying the
    /// poisoned chunk on the sequential reference kernel
    /// ([`Kernel::Wide`]). A disabled injector (the default) keeps the
    /// unguarded fast path.
    pub fn with_faults(mut self, faults: FaultInjector) -> ParallelSweepEngine {
        self.faults = faults;
        self
    }

    /// The armed fault injector (disabled by default).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sweeps `source` under `filter`, fanning chunk execution out across
    /// the worker pool. Untimed only: parallel workers charge no
    /// [`SweepCost`].
    pub fn sweep<S, F>(&self, source: S, filter: F, shadow: &ShadowMap) -> SweepStats
    where
        S: CapSource<Mem = TaggedMemory>,
        F: GranuleFilter<TaggedMemory>,
    {
        self.sweep_scratched(source, filter, shadow, &mut SweepScratch::new())
    }

    /// [`ParallelSweepEngine::sweep`] reusing `scratch`'s plan buffers
    /// (chunk list, granule windows, worker groups, per-worker capability
    /// counts). After warm-up, the walk, plan and inner loops allocate
    /// nothing; only per-worker thread spawns remain (O(workers), not
    /// O(chunks)).
    pub fn sweep_scratched<S, F>(
        &self,
        mut source: S,
        mut filter: F,
        shadow: &ShadowMap,
        scratch: &mut SweepScratch,
    ) -> SweepStats
    where
        S: CapSource<Mem = TaggedMemory>,
        F: GranuleFilter<TaggedMemory>,
    {
        let timer = self.telemetry.is_enabled().then(std::time::Instant::now);
        let mut stats = SweepStats::default();
        let SweepScratch {
            pages,
            chunks,
            windows,
            caps_per_chunk,
            weights,
            groups,
            worker_caps,
        } = scratch;
        source.for_each_region(|mem, start, len| {
            // Plan: the exact walk the sequential engine performs,
            // executing nothing. Skip decisions cannot depend on execution
            // (revocations only clear tags in already-visited chunks), so
            // plan-then-execute is equivalent to the interleaved walk.
            chunks.clear();
            walk_region(
                mem,
                start,
                len,
                &mut filter,
                &mut NoCost,
                &mut stats,
                pages,
                |_mem, s, l, _cost, _stats| {
                    chunks.push((s, l));
                    0
                },
            );
            stats.segments_swept = stats.segments_swept.saturating_add(1);

            execute_chunks(
                self.kernel,
                self.workers,
                &self.faults,
                mem,
                chunks,
                shadow,
                &mut stats,
                windows,
                caps_per_chunk,
                weights,
                groups,
                worker_caps,
            );

            // Fold per-chunk capability counts back onto their pages and
            // deliver the deferred page feedback in address order.
            for (&(chunk_start, _), &caps) in chunks.iter().zip(caps_per_chunk.iter()) {
                let frame = chunk_start & !(PAGE_SIZE - 1);
                if let Ok(i) = pages.binary_search_by_key(&frame, |&(f, _)| f) {
                    pages[i].1 += caps;
                }
            }
            for &(frame, caps) in pages.iter() {
                filter.page_swept(frame, caps);
            }
        });
        if let Some(regs) = source.registers() {
            stats += sweep_register_file(regs, shadow);
        }
        if stats.chunks_retried > 0 {
            self.telemetry
                .observe_retries(stats.chunks_retried, self.kernel.name());
        }
        if let Some(timer) = timer {
            self.telemetry
                .observe(&stats, timer.elapsed(), self.workers, self.kernel.name());
        }
        stats
    }
}

/// Scheduling weight of one tagged granule relative to one clean byte:
/// a tagged granule costs its 16 streamed bytes *plus* `DECODE_WEIGHT ×
/// 16` for the capability decode, shadow probe, and (potential)
/// revocation store. The value is a planning heuristic, not a cost model
/// — it only shifts worker group boundaries, never what executes.
const DECODE_WEIGHT: u64 = 4;

/// Bytes of swept data covered by one modeled tag-cache line, from
/// `simcache`'s FPGA-like machine geometry (one 128-byte tag line carries
/// the tag bits for 16 KiB of data). Worker group boundaries prefer these
/// seams so no modeled tag line is shared between two workers' streams.
fn tag_cache_line_coverage() -> u64 {
    static COVERAGE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *COVERAGE.get_or_init(|| {
        simcache::TagCache::new(&simcache::MachineConfig::cheri_fpga_like()).coverage_per_line()
    })
}

/// Runs one planned chunk through the kernel, panic-safely when fault
/// injection is armed.
///
/// With a disabled injector this is exactly `run_kernel` — no
/// `catch_unwind`, no extra branches beyond the enablement check. Armed,
/// the chunk runs under [`std::panic::catch_unwind`] with injected
/// [`FaultPoint::SweepWorkerPanic`] / [`FaultPoint::TagReadError`] faults;
/// a panicking chunk is retried once on the sequential reference kernel
/// ([`Kernel::Wide`]), which is sound because revocation is idempotent —
/// kernels only *clear* tags, never set them, so re-sweeping a partially
/// swept chunk revokes exactly the capabilities the aborted attempt
/// missed. A panicked attempt's partial stats are discarded (the retry
/// re-counts what is still tagged), so `caps_revoked` stays exact while
/// `caps_inspected` may undercount caps revoked by the aborted attempt.
/// A second panic is a genuine kernel bug and propagates.
#[allow(clippy::too_many_arguments)] // mirrors run_kernel's plan ABI
fn run_chunk_guarded(
    kernel: Kernel,
    faults: &FaultInjector,
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    stats: &mut SweepStats,
) {
    if !faults.is_enabled() {
        run_kernel(kernel, data, tags, g0, g1, shadow, base, &mut NoCost, stats);
        return;
    }
    let inject = if faults.should_fire(FaultPoint::SweepWorkerPanic) {
        Some(InjectedFault::WorkerPanic)
    } else if faults.should_fire(FaultPoint::TagReadError) {
        Some(InjectedFault::TagReadError)
    } else {
        None
    };
    let mut attempt = SweepStats::default();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(fault) = inject {
            std::panic::panic_any(fault);
        }
        run_kernel(
            kernel,
            data,
            tags,
            g0,
            g1,
            shadow,
            base,
            &mut NoCost,
            &mut attempt,
        );
    }));
    match outcome {
        Ok(()) => *stats += attempt,
        Err(_poisoned) => {
            stats.chunks_retried = stats.chunks_retried.saturating_add(1);
            let mut retry = SweepStats::default();
            let retried = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_kernel(
                    Kernel::Wide,
                    data,
                    tags,
                    g0,
                    g1,
                    shadow,
                    base,
                    &mut NoCost,
                    &mut retry,
                );
            }));
            match retried {
                Ok(()) => *stats += retry,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    }
}

/// Executes a planned chunk list, in parallel when `workers > 1` and the
/// plan is large enough to split. Fills `caps_per_chunk` with per-chunk
/// `caps_inspected` counts in plan order. The `windows`, `groups` and
/// `worker_caps` buffers come from the caller's [`SweepScratch`], so a
/// warmed-up scratch makes the whole plan-and-execute pass allocation-free
/// apart from the O(workers) thread spawns.
#[allow(clippy::too_many_arguments)] // plan ABI: work + scratch buffers
fn execute_chunks(
    kernel: Kernel,
    workers: usize,
    faults: &FaultInjector,
    mem: &mut TaggedMemory,
    chunks: &[(u64, u64)],
    shadow: &ShadowMap,
    stats: &mut SweepStats,
    windows: &mut Vec<(usize, usize)>,
    caps_per_chunk: &mut Vec<u64>,
    weights: &mut Vec<u64>,
    groups: &mut Vec<(usize, usize)>,
    worker_caps: &mut Vec<Vec<u64>>,
) {
    let base = mem.base();
    // Granule windows per chunk (chunks are granule-aligned by
    // construction: regions, pages, and lines are all multiples of 16).
    windows.clear();
    windows.extend(chunks.iter().map(|&(s, l)| {
        let g0 = ((s - base) / GRANULE_SIZE) as usize;
        (g0, g0 + (l / GRANULE_SIZE) as usize)
    }));
    caps_per_chunk.clear();

    if workers <= 1 || chunks.len() <= 1 {
        let (data, tags) = mem.as_parts_mut();
        for (&(_, l), &(g0, g1)) in chunks.iter().zip(windows.iter()) {
            let before = stats.caps_inspected;
            run_chunk_guarded(kernel, faults, data, tags, g0, g1, shadow, base, stats);
            stats.bytes_swept = stats.bytes_swept.saturating_add(l);
            caps_per_chunk.push(stats.caps_inspected - before);
        }
        return;
    }

    // Tag-cache-aware grouping (DESIGN.md §19). Two refinements over a
    // plain equal-bytes split, both scheduling-only — every chunk still
    // executes in plan order within its group, so memory, stats, and
    // filter feedback stay byte-identical to the sequential engine:
    //
    // * Chunks are weighted by the work the kernel will actually do:
    //   bytes streamed plus [`DECODE_WEIGHT`]× the tagged granules (each
    //   forces a capability decode and shadow probe). The hierarchical
    //   shadow summary collapses the decode term when nothing is painted —
    //   the fast kernels then take their empty-shadow bulk fall-through
    //   and tagged granules cost no more than clean ones.
    // * Groups preferentially close on modeled tag-cache-line coverage
    //   boundaries (`simcache`'s tag-cache geometry: one 128-byte tag
    //   line covers 16 KiB of data), so no modeled tag line is shared
    //   between workers and each worker streams whole tag lines in
    //   address order. A group already one full line's coverage past its
    //   target closes at any tag-word boundary, bounding the imbalance a
    //   boundary-poor plan could otherwise accumulate.
    //
    // Groups always close *at least* on tag-word boundaries (64 granules
    // = 1 KiB), so groups own disjoint word ranges of both arrays.
    let summary_clean = shadow.painted_bytes() == 0;
    weights.clear();
    weights.extend(chunks.iter().map(|&(s, l)| {
        if summary_clean {
            l
        } else {
            l.saturating_add(DECODE_WEIGHT * mem.count_tags_in(s, l) * GRANULE_SIZE)
        }
    }));
    let total_weight: u64 = weights.iter().sum();
    let target = (total_weight / workers as u64).max(1);
    let line_coverage = tag_cache_line_coverage();
    let words_per_tag_line = ((line_coverage / (64 * GRANULE_SIZE)) as usize).max(1);
    groups.clear();
    let mut group_start = 0;
    let mut acc = 0u64;
    for i in 0..chunks.len() {
        acc += weights[i];
        if acc < target || groups.len() + 1 >= workers || i + 1 == chunks.len() {
            continue;
        }
        let (next_w, last_w) = (windows[i + 1].0 / 64, (windows[i].1 - 1) / 64);
        if next_w <= last_w {
            continue; // not even a tag-word boundary
        }
        let line_boundary = next_w / words_per_tag_line > last_w / words_per_tag_line;
        if line_boundary || acc >= target.saturating_add(line_coverage) {
            groups.push((group_start, i + 1));
            group_start = i + 1;
            acc = 0;
        }
    }
    if group_start < chunks.len() {
        groups.push((group_start, chunks.len()));
    }

    if groups.len() <= 1 {
        // Couldn't split (e.g. everything in one tag word): run inline.
        let (data, tags) = mem.as_parts_mut();
        for (&(_, l), &(g0, g1)) in chunks.iter().zip(windows.iter()) {
            let before = stats.caps_inspected;
            run_chunk_guarded(kernel, faults, data, tags, g0, g1, shadow, base, stats);
            stats.bytes_swept = stats.bytes_swept.saturating_add(l);
            caps_per_chunk.push(stats.caps_inspected - before);
        }
        return;
    }

    // Carve each group's word range out of the data and tag arrays.
    let (data, tags) = mem.as_parts_mut();
    let mut data_rest: &mut [u8] = data;
    let mut tags_rest: &mut [u64] = tags;
    let mut word_off = 0usize;
    let mut jobs = Vec::with_capacity(groups.len());
    for &(c0, c1) in groups.iter() {
        let w_lo = windows[c0].0 / 64;
        let w_hi = (windows[c1 - 1].1).div_ceil(64);
        // Discard [word_off, w_lo).
        let skip = w_lo - word_off;
        let taken_d = std::mem::take(&mut data_rest);
        let (_, d) = taken_d.split_at_mut((skip * 64 * GRANULE_SIZE as usize).min(taken_d.len()));
        let taken_t = std::mem::take(&mut tags_rest);
        let (_, t) = taken_t.split_at_mut(skip.min(taken_t.len()));
        // Take [w_lo, w_hi).
        let take_w = w_hi - w_lo;
        let (dj, d_rest) = d.split_at_mut((take_w * 64 * GRANULE_SIZE as usize).min(d.len()));
        let (tj, t_rest) = t.split_at_mut(take_w.min(t.len()));
        data_rest = d_rest;
        tags_rest = t_rest;
        word_off = w_hi;
        jobs.push((c0, c1, w_lo, dj, tj));
    }

    // Per-worker capability buffers persist in the scratch; grow the pool
    // but never shrink it (shrinking would free a warmed-up buffer).
    if worker_caps.len() < groups.len() {
        worker_caps.resize_with(groups.len(), Vec::new);
    }
    let windows: &[(usize, usize)] = windows;
    let partials: Vec<SweepStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .zip(worker_caps.iter_mut())
            .map(|((c0, c1, w_lo, dj, tj), caps)| {
                scope.spawn(move || {
                    caps.clear();
                    let mut local = SweepStats::default();
                    let local_base = base + (w_lo as u64) * 64 * GRANULE_SIZE;
                    for i in c0..c1 {
                        let (g0, g1) = windows[i];
                        let before = local.caps_inspected;
                        run_chunk_guarded(
                            kernel,
                            faults,
                            dj,
                            tj,
                            g0 - w_lo * 64,
                            g1 - w_lo * 64,
                            shadow,
                            local_base,
                            &mut local,
                        );
                        local.bytes_swept = local.bytes_swept.saturating_add(chunks[i].1);
                        caps.push(local.caps_inspected - before);
                    }
                    local
                })
            })
            .collect();
        // A worker only panics when even the reference-kernel retry in
        // `run_chunk_guarded` failed (a genuine kernel bug, not an
        // injected fault); propagate it with its original payload.
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    for caps in worker_caps.iter().take(groups.len()) {
        caps_per_chunk.extend_from_slice(caps);
    }
    *stats += SweepStats::merge_parallel(partials);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;
    use tagmem::SegmentKind;

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 16;

    fn seeded_space(seed: u64) -> (AddressSpace, ShadowMap) {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, LEN)
            .build();
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = HEAP + (x >> 20) % (LEN - 16) / 16 * 16;
            let obj = HEAP + ((x >> 40) % 4096) * 16;
            space
                .store_cap(slot, &Capability::root_rw(obj, 16))
                .unwrap();
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        for g in 0..4096u64 {
            if g % 3 == 0 {
                shadow.paint(HEAP + g * 16, 16);
            }
        }
        (space, shadow)
    }

    #[test]
    fn line_spans_cover_range_exactly() {
        let spans: Vec<_> = line_spans(HEAP + 32, 300).collect();
        let total: u64 = spans.iter().map(|s| s.1).sum();
        assert_eq!(total, 300);
        assert_eq!(spans[0], (HEAP + 32, 128));
        assert_eq!(spans.last().unwrap().1, 300 - 256);
        // Chunks are contiguous.
        for w in spans.windows(2) {
            assert_eq!(w[0].0 + w[0].1, w[1].0);
        }
    }

    #[test]
    fn page_spans_use_aligned_frames() {
        let spans: Vec<_> = page_spans(HEAP + 100, PAGE_SIZE + 200).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (HEAP, HEAP + 100, HEAP + PAGE_SIZE));
        assert_eq!(
            spans[1],
            (HEAP + PAGE_SIZE, HEAP + PAGE_SIZE, HEAP + PAGE_SIZE + 300)
        );
    }

    #[test]
    fn parallel_engine_matches_sequential_on_all_filters() {
        for workers in [1, 2, 3, 8] {
            let (mut a, shadow) = seeded_space(7);
            let (mut b, _) = seeded_space(7);

            let (src_a, pt_a) = SpaceSource::split(&mut a);
            let seq = SweepEngine::new(Kernel::Wide).sweep(
                src_a,
                (CapDirtyPages::new(pt_a), CLoadTagsLines::new()),
                &shadow,
            );
            let (src_b, pt_b) = SpaceSource::split(&mut b);
            let par = ParallelSweepEngine::new(Kernel::Wide, workers).sweep(
                src_b,
                (CapDirtyPages::new(pt_b), CLoadTagsLines::new()),
                &shadow,
            );
            assert_eq!(seq, par, "workers={workers}");
            assert_eq!(a.tag_count(), b.tag_count(), "workers={workers}");
        }
    }

    #[test]
    fn injected_sweep_faults_recover_with_identical_results() {
        faultinject::silence_injected_panics();
        for workers in [1, 4] {
            let (mut a, shadow) = seeded_space(11);
            let (mut b, _) = seeded_space(11);

            let (src_a, _) = SpaceSource::split(&mut a);
            let clean = ParallelSweepEngine::new(Kernel::Fast, workers).sweep(
                src_a,
                CLoadTagsLines::new(),
                &shadow,
            );

            // Panic on most chunks: every other chunk with a worker
            // panic, every other remaining one with a tag read error.
            let plan =
                faultinject::FaultPlan::parse("worker_panic@1/2,tag_read_error@2/2").unwrap();
            let inj = FaultInjector::new(plan);
            let (src_b, _) = SpaceSource::split(&mut b);
            let faulted = ParallelSweepEngine::new(Kernel::Fast, workers)
                .with_faults(inj.clone())
                .sweep(src_b, CLoadTagsLines::new(), &shadow);

            assert!(faulted.chunks_retried > 0, "workers={workers}");
            assert!(inj.fired(FaultPoint::SweepWorkerPanic) > 0);
            // Injected panics fire before the kernel touches the chunk
            // and the retry runs the reference kernel over the whole
            // window, so results and stats are identical to a clean run.
            let mut normalised = faulted;
            normalised.chunks_retried = 0;
            assert_eq!(clean, normalised, "workers={workers}");
            assert_eq!(a.tag_count(), b.tag_count(), "workers={workers}");
        }
    }

    #[test]
    fn sweep_retries_are_observable_in_telemetry() {
        faultinject::silence_injected_panics();
        let registry = telemetry::Registry::new(16);
        let (mut space, shadow) = seeded_space(3);
        let inj = FaultInjector::new(faultinject::FaultPlan::parse("worker_panic@1x2").unwrap());
        let (src, _) = SpaceSource::split(&mut space);
        let stats = ParallelSweepEngine::new(Kernel::Fast, 2)
            .with_telemetry(crate::SweepTelemetry::register(&registry))
            .with_faults(inj)
            .sweep(src, NoFilter, &shadow);
        assert!(stats.chunks_retried > 0);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["cvk_sweep_retries_total"],
            stats.chunks_retried
        );
        assert!(registry
            .recent_events(16)
            .iter()
            .any(|e| matches!(e.kind, telemetry::EventKind::SweepRetried { .. })));
    }

    #[test]
    fn register_source_sweeps_only_registers() {
        let mut regs = RegisterFile::new();
        regs.set(0, Capability::root_rw(HEAP + 0x40, 64));
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        let stats =
            SweepEngine::new(Kernel::Wide).sweep(RegisterSource::new(&mut regs), NoFilter, &shadow);
        assert_eq!(stats.regs_revoked, 1);
        assert_eq!(stats.segments_swept, 0);
        assert_eq!(stats.bytes_swept, 0);
    }

    #[test]
    fn workers_from_env_defaults_to_one() {
        // The test environment does not set the variable for this process
        // (CI's forced-parallel job sets it globally, which is also fine —
        // then workers_from_env must agree with parse_workers).
        match std::env::var("CHERIVOKE_SWEEP_WORKERS") {
            Err(_) => assert_eq!(workers_from_env(), 1),
            Ok(v) => assert_eq!(workers_from_env(), parse_workers(&v).0),
        }
    }

    #[test]
    fn parse_workers_validates_and_clamps() {
        assert_eq!(parse_workers("4"), (4, None));
        assert_eq!(parse_workers(" 8 "), (8, None)); // whitespace tolerated
        assert_eq!(parse_workers(&MAX_SWEEP_WORKERS.to_string()).0, 64);

        let (w, warn) = parse_workers("");
        assert_eq!(w, 1);
        assert!(warn.unwrap().contains("empty"));

        let (w, warn) = parse_workers("0");
        assert_eq!(w, 1);
        assert!(warn.unwrap().contains("minimum 1"));

        let (w, warn) = parse_workers("banana");
        assert_eq!(w, 1);
        assert!(warn.unwrap().contains("not a positive integer"));

        let (w, warn) = parse_workers("-3");
        assert_eq!(w, 1);
        assert!(warn.is_some());

        let (w, warn) = parse_workers("10000");
        assert_eq!(w, MAX_SWEEP_WORKERS);
        assert!(warn.unwrap().contains("clamping"));
    }

    #[test]
    fn parse_fast_kernel_recognises_switches() {
        for on in ["", "1", "true", "on", "TRUE", " 1 "] {
            assert_eq!(parse_fast_kernel(on), (true, None), "{on:?}");
        }
        for off in ["0", "false", "off", "FALSE", " 0 "] {
            assert_eq!(parse_fast_kernel(off), (false, None), "{off:?}");
        }
        let (enabled, warn) = parse_fast_kernel("banana");
        assert!(enabled, "unrecognised values keep the default");
        assert!(warn.unwrap().contains("not recognised"));
    }

    #[test]
    fn parse_kernel_recognises_names_and_clamps() {
        for (name, kernel) in [
            ("reference", Kernel::Wide),
            ("wide", Kernel::Wide),
            ("simple", Kernel::Simple),
            ("unrolled", Kernel::Unrolled),
            ("fast", Kernel::Fast),
            ("simd", Kernel::Simd),
            ("SIMD", Kernel::Simd),
            (" Fast ", Kernel::Fast),
            ("", Kernel::Fast),
        ] {
            assert_eq!(parse_kernel(name), (kernel, None), "{name:?}");
        }
        let (kernel, warn) = parse_kernel("banana");
        assert_eq!(kernel, Kernel::Fast, "unrecognised values fall back");
        assert!(warn.unwrap().contains("not recognised"));
    }

    #[test]
    fn kernel_from_env_agrees_with_parse() {
        // The variables may or may not be set by CI's matrix; either way
        // kernel_from_env must agree with the pure parse functions.
        match std::env::var("CHERIVOKE_KERNEL") {
            Ok(v) => assert_eq!(kernel_from_env(), parse_kernel(&v).0),
            Err(_) => match std::env::var("CHERIVOKE_FAST_KERNEL") {
                Ok(v) => {
                    let expect = if parse_fast_kernel(&v).0 {
                        Kernel::Fast
                    } else {
                        Kernel::Wide
                    };
                    assert_eq!(kernel_from_env(), expect);
                }
                Err(_) => assert_eq!(kernel_from_env(), Kernel::Fast),
            },
        }
    }

    #[test]
    fn scratched_sweeps_match_unscratched() {
        let mut scratch = SweepScratch::new();
        for seed in 0..3u64 {
            // Sequential, filtered: the page-feedback buffer is reused.
            let (mut a, shadow) = seeded_space(seed);
            let (mut b, _) = seeded_space(seed);
            let (src_a, pt_a) = SpaceSource::split(&mut a);
            let plain = SweepEngine::new(Kernel::Fast).sweep(
                src_a,
                (CapDirtyPages::new(pt_a), CLoadTagsLines::new()),
                &shadow,
            );
            let (src_b, pt_b) = SpaceSource::split(&mut b);
            let scratched = SweepEngine::new(Kernel::Fast).sweep_scratched(
                src_b,
                (CapDirtyPages::new(pt_b), CLoadTagsLines::new()),
                &shadow,
                &mut scratch,
            );
            assert_eq!(plain, scratched, "seed {seed}");
            assert_eq!(a.tag_count(), b.tag_count(), "seed {seed}");

            // Parallel: plan buffers and worker cap buffers are reused.
            let (mut c, shadow) = seeded_space(seed);
            let (mut d, _) = seeded_space(seed);
            let engine = ParallelSweepEngine::new(Kernel::Fast, 4);
            let (src_c, _) = SpaceSource::split(&mut c);
            let plain = engine.sweep(src_c, EveryLine, &shadow);
            let (src_d, _) = SpaceSource::split(&mut d);
            let scratched = engine.sweep_scratched(src_d, EveryLine, &shadow, &mut scratch);
            assert_eq!(plain, scratched, "seed {seed}");
            assert_eq!(c.tag_count(), d.tag_count(), "seed {seed}");
        }
    }
}
