//! Sweep planning under the paper's hardware assists (§3.4, Fig. 8a).
//!
//! A [`SweepPlan`] is the list of memory ranges a sweep must actually read
//! after filtering with PTE CapDirty bits (page granularity) and/or
//! `CLoadTags` (cache-line granularity). The planned/total byte ratio is
//! exactly the "proportion of memory that needs to be swept" of Figure 8(a).

use tagmem::{CoreDump, PageTable, LINE_SIZE, PAGE_SIZE};

/// Which work-elimination hardware to use when planning a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipMode {
    /// Sweep everything (no assists).
    None,
    /// Skip pages whose PTE CapDirty bit is clear (§3.4.2).
    PteCapDirty,
    /// Skip cache lines whose `CLoadTags` mask is zero (§3.4.1). Implies
    /// page-level skipping first, as the paper's "both … necessary for
    /// optimal work reduction" conclusion (§6.3).
    CLoadTags,
}

/// The ranges a sweep must read, after filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    mode: SkipMode,
    /// `(addr, len)` ranges to read, in address order.
    regions: Vec<(u64, u64)>,
    bytes_total: u64,
    lines_queried: u64,
}

impl SweepPlan {
    /// Plans a sweep over a captured [`CoreDump`] under `mode`.
    ///
    /// For [`SkipMode::PteCapDirty`] the dump's captured CapDirty page list
    /// is authoritative (false positives included, §3.4.2); for
    /// [`SkipMode::CLoadTags`] every line of every CapDirty page is queried
    /// and capability-free lines are dropped.
    pub fn for_dump(dump: &CoreDump, mode: SkipMode) -> SweepPlan {
        let mut regions = Vec::new();
        let mut bytes_total = 0u64;
        let mut lines_queried = 0u64;

        for img in dump.segments() {
            let mem = &img.mem;
            bytes_total += mem.len();
            match mode {
                SkipMode::None => {
                    if !mem.is_empty() {
                        regions.push((mem.base(), mem.len()));
                    }
                }
                SkipMode::PteCapDirty => {
                    for &page in dump.cap_dirty_pages() {
                        if page >= mem.base() && page < mem.end() {
                            let len = (mem.end() - page).min(PAGE_SIZE);
                            regions.push((page, len));
                        }
                    }
                }
                SkipMode::CLoadTags => {
                    for &page in dump.cap_dirty_pages() {
                        if page >= mem.base() && page < mem.end() {
                            let page_end = (page + PAGE_SIZE).min(mem.end());
                            let mut line = page;
                            while line < page_end {
                                lines_queried += 1;
                                let len = (page_end - line).min(LINE_SIZE);
                                if mem.load_tags(line).map(|m| m != 0).unwrap_or(true) {
                                    regions.push((line, len));
                                }
                                line += len;
                            }
                        }
                    }
                }
            }
        }
        regions.sort_unstable();
        SweepPlan {
            mode,
            regions,
            bytes_total,
            lines_queried,
        }
    }

    /// The mode this plan was built under.
    pub fn mode(&self) -> SkipMode {
        self.mode
    }

    /// The `(addr, len)` ranges to read.
    pub fn regions(&self) -> &[(u64, u64)] {
        &self.regions
    }

    /// Bytes the sweep will actually read.
    pub fn bytes_planned(&self) -> u64 {
        self.regions.iter().map(|&(_, l)| l).sum()
    }

    /// Bytes in the full image.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// `CLoadTags` queries the plan issued (each costs a tag-cache round
    /// trip in the timed model).
    pub fn lines_queried(&self) -> u64 {
        self.lines_queried
    }

    /// The Figure 8(a) metric: fraction of memory that must be swept.
    pub fn sweep_fraction(&self) -> f64 {
        if self.bytes_total == 0 {
            0.0
        } else {
            self.bytes_planned() as f64 / self.bytes_total as f64
        }
    }
}

/// Coarse-region pre-planning for the **hierarchical backend** (PoisonCap's
/// region poison map, consulted before any fine granule work): splits each
/// `(addr, len)` span at [`cheri::POISON_REGION_BYTES`] boundaries and
/// keeps only the pieces whose pages may point into a region of the
/// `poisoned` mask — every clean region falls through with a single O(1)
/// page-table range probe. Adjacent survivors are coalesced so the pruned
/// plan stays as short as the original. Appends to `out`, which callers
/// reuse across epochs to keep the seal path allocation-free.
///
/// Soundness: [`PageTable::pointee_regions_in`] over-approximates where a
/// span's stored capabilities point, so a span whose probe misses the
/// poison mask provably holds no capability into any poisoned region and
/// can be skipped entirely.
pub fn poisoned_subspans(
    table: &PageTable,
    poisoned: u64,
    spans: &[(u64, u64)],
    out: &mut Vec<(u64, u64)>,
) {
    const REGION: u64 = cheri::POISON_REGION_BYTES;
    for &(addr, len) in spans {
        let end = addr + len;
        let mut piece = addr;
        while piece < end {
            let piece_end = ((piece / REGION + 1) * REGION).min(end);
            let piece_len = piece_end - piece;
            if table.pointee_regions_in(piece, piece_len) & poisoned != 0 {
                match out.last_mut() {
                    Some((last_addr, last_len)) if *last_addr + *last_len == piece => {
                        *last_len += piece_len;
                    }
                    _ => out.push((piece, piece_len)),
                }
            }
            piece = piece_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;
    use tagmem::{AddressSpace, SegmentKind};

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 16; // 16 pages, 512 lines

    fn dump_with_caps(addrs: &[u64]) -> CoreDump {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, LEN)
            .build();
        let cap = Capability::root_rw(HEAP, 64);
        for &a in addrs {
            space.store_cap(a, &cap).unwrap();
        }
        CoreDump::capture(&space)
    }

    #[test]
    fn no_skipping_covers_everything() {
        let dump = dump_with_caps(&[HEAP]);
        let plan = SweepPlan::for_dump(&dump, SkipMode::None);
        assert_eq!(plan.bytes_planned(), LEN);
        assert_eq!(plan.sweep_fraction(), 1.0);
        assert_eq!(plan.regions(), &[(HEAP, LEN)]);
    }

    #[test]
    fn page_skipping_keeps_only_dirty_pages() {
        let dump = dump_with_caps(&[HEAP + 0x100, HEAP + 0x5000]);
        let plan = SweepPlan::for_dump(&dump, SkipMode::PteCapDirty);
        assert_eq!(plan.bytes_planned(), 2 * PAGE_SIZE);
        assert!((plan.sweep_fraction() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn line_skipping_keeps_only_tagged_lines() {
        let dump = dump_with_caps(&[HEAP + 0x100, HEAP + 0x5000]);
        let plan = SweepPlan::for_dump(&dump, SkipMode::CLoadTags);
        assert_eq!(plan.bytes_planned(), 2 * LINE_SIZE);
        // Queried every line of the two dirty pages.
        assert_eq!(plan.lines_queried(), 2 * PAGE_SIZE / LINE_SIZE);
        assert!((plan.sweep_fraction() - 2.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn plans_are_ordered_and_disjoint() {
        let dump = dump_with_caps(&[HEAP + 0x5000, HEAP + 0x100, HEAP + 0x5040, HEAP + 0xf000]);
        for mode in [SkipMode::None, SkipMode::PteCapDirty, SkipMode::CLoadTags] {
            let plan = SweepPlan::for_dump(&dump, mode);
            let mut prev_end = 0u64;
            for &(a, l) in plan.regions() {
                assert!(a >= prev_end, "{mode:?} overlapping regions");
                prev_end = a + l;
            }
            assert!(plan.bytes_planned() <= plan.bytes_total());
        }
    }

    #[test]
    fn empty_image_has_empty_plan() {
        let dump = dump_with_caps(&[]);
        let plan = SweepPlan::for_dump(&dump, SkipMode::PteCapDirty);
        assert_eq!(plan.bytes_planned(), 0);
        assert_eq!(plan.sweep_fraction(), 0.0);
    }

    #[test]
    fn poisoned_subspans_drop_clean_regions_in_o1() {
        const REGION: u64 = cheri::POISON_REGION_BYTES;
        let mut table = PageTable::new();
        // Region 0 of the span points into poisoned region 5; region 2
        // points into (clean) region 9; region 1 holds no capabilities.
        let span_base = 4 * REGION;
        table.note_cap_store(span_base + 0x1000).unwrap();
        table.note_cap_pointee(span_base + 0x1000, 5 * REGION);
        table.note_cap_store(span_base + 2 * REGION).unwrap();
        table.note_cap_pointee(span_base + 2 * REGION, 9 * REGION);

        let poisoned = cheri::poison_bit(5 * REGION);
        let spans = [(span_base, 3 * REGION)];
        let mut out = Vec::new();
        poisoned_subspans(&table, poisoned, &spans, &mut out);
        assert_eq!(out, vec![(span_base, REGION)]);

        // Poisoning region 9 as well keeps both pointing regions but still
        // drops the capability-free middle region.
        out.clear();
        let both = poisoned | cheri::poison_bit(9 * REGION);
        poisoned_subspans(&table, both, &spans, &mut out);
        assert_eq!(
            out,
            vec![(span_base, REGION), (span_base + 2 * REGION, REGION)]
        );

        // Adjacent surviving regions coalesce; unaligned span edges are
        // preserved exactly.
        out.clear();
        table.note_cap_store(span_base + REGION).unwrap();
        table.note_cap_pointee(span_base + REGION, 5 * REGION);
        let ragged = [(span_base + 0x800, 3 * REGION - 0x1000)];
        poisoned_subspans(&table, both, &ragged, &mut out);
        assert_eq!(out, vec![(span_base + 0x800, 3 * REGION - 0x1000)]);

        // A fully clean table prunes everything.
        out.clear();
        poisoned_subspans(&PageTable::new(), both, &spans, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn modes_are_monotonically_better() {
        let dump = dump_with_caps(&[HEAP + 0x100, HEAP + 0x2000, HEAP + 0x2040, HEAP + 0x9000]);
        let none = SweepPlan::for_dump(&dump, SkipMode::None).bytes_planned();
        let pte = SweepPlan::for_dump(&dump, SkipMode::PteCapDirty).bytes_planned();
        let clt = SweepPlan::for_dump(&dump, SkipMode::CLoadTags).bytes_planned();
        assert!(pte <= none);
        assert!(clt <= pte);
    }
}
