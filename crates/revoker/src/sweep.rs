//! Sweep kernels, stats, and the legacy [`Sweeper`] facade (§3.3, §6.2).
//!
//! The walk logic lives in [`crate::engine`]; this module contributes the
//! Figure 7 kernel tiers (the inner loops) and keeps [`Sweeper`] as a thin
//! facade whose methods are one-line compositions over
//! [`SweepEngine`](crate::engine::SweepEngine).

use cheri::CapWord;
use tagmem::{AddressSpace, RegisterFile, TaggedMemory, GRANULE_SIZE};

use crate::engine::{
    sweep_register_file, CLoadTagsLines, CapDirtyPages, NoFilter, RangeSource, SegmentSource,
    SpaceSource, SweepCost, SweepEngine,
};
use crate::ShadowMap;

/// Which inner-loop implementation to use — the paper's Figure 7 compares
/// exactly this set of optimisation levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The naïve per-granule loop of §3.3: check the tag, decode, branch.
    Simple,
    /// Loop over 64-granule tag words, skipping all-zero words; per-bit
    /// scan of nonzero words (the paper's "unrolling + manual pipelining"
    /// tier).
    Unrolled,
    /// Bit-parallel scan: only *set* tag bits are visited (via
    /// count-trailing-zeros), with a branch-minimised revocation write —
    /// the role AVX2 plays in the paper.
    #[default]
    Wide,
    /// [`Kernel::Wide`] parallelised across scoped threads (§3.5:
    /// sweeping is embarrassingly parallel; the shadow map is read-only).
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// The word-at-a-time fast path: like [`Kernel::Wide`], but each
    /// capability is read as two 8-byte loads (no `u128` round trip), only
    /// its **base** is decoded (the partial 64-bit decode,
    /// [`cheri::CompressedBounds::decode_base_partial`]), and the decoded
    /// base is first tested against the whole 64-granule shadow word
    /// covering it — one `u64` compare rejects unpainted bases without a
    /// bit extraction. Selected by default via `CHERIVOKE_FAST_KERNEL`
    /// (see [`crate::fast_kernel_from_env`]).
    Fast,
}

impl Kernel {
    /// A short stable name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Simple => "simple",
            Kernel::Unrolled => "unrolled",
            Kernel::Wide => "wide",
            Kernel::Parallel { .. } => "parallel",
            Kernel::Fast => "fast",
        }
    }

    /// The default sweep kernel honouring the `CHERIVOKE_FAST_KERNEL`
    /// environment variable: [`Kernel::Fast`] unless the variable disables
    /// it, then [`Kernel::Wide`] (see [`crate::fast_kernel_from_env`]).
    pub fn from_env() -> Kernel {
        if crate::engine::fast_kernel_from_env() {
            Kernel::Fast
        } else {
            Kernel::Wide
        }
    }
}

/// Counters from one revocation sweep.
///
/// All accumulation is **saturating**: merging worker partials or summing
/// across epochs can never wrap (see [`SweepStats::merge_parallel`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Segments visited.
    pub segments_swept: u64,
    /// Bytes of memory the kernel walked over.
    pub bytes_swept: u64,
    /// Tagged words inspected (capabilities found).
    pub caps_inspected: u64,
    /// Capabilities revoked (tag cleared, word zeroed).
    pub caps_revoked: u64,
    /// Register-file capabilities revoked.
    pub regs_revoked: u64,
    /// Pages skipped by PTE CapDirty filtering (when enabled).
    pub pages_skipped: u64,
    /// Cache lines skipped by CLoadTags filtering (when enabled).
    pub lines_skipped: u64,
    /// Chunks whose kernel panicked and were retried on the sequential
    /// reference kernel (only ever non-zero with fault injection armed or
    /// a genuinely buggy kernel; see `ParallelSweepEngine`).
    pub chunks_retried: u64,
}

impl SweepStats {
    /// Merges per-worker partial stats from one parallel sweep.
    ///
    /// Only the per-granule *work* counters (`bytes_swept`,
    /// `caps_inspected`, `caps_revoked`, `regs_revoked`) are summed
    /// (saturating). The *plan-level* counters (`segments_swept`,
    /// `pages_skipped`, `lines_skipped`) belong to the single planning
    /// pass that produced the workers' chunks, so they are left at zero —
    /// summing them per worker would double-count skipped work.
    pub fn merge_parallel(parts: impl IntoIterator<Item = SweepStats>) -> SweepStats {
        let mut out = SweepStats::default();
        for p in parts {
            out.bytes_swept = out.bytes_swept.saturating_add(p.bytes_swept);
            out.caps_inspected = out.caps_inspected.saturating_add(p.caps_inspected);
            out.caps_revoked = out.caps_revoked.saturating_add(p.caps_revoked);
            out.regs_revoked = out.regs_revoked.saturating_add(p.regs_revoked);
            out.chunks_retried = out.chunks_retried.saturating_add(p.chunks_retried);
        }
        out
    }
}

impl core::ops::AddAssign for SweepStats {
    fn add_assign(&mut self, rhs: SweepStats) {
        self.segments_swept = self.segments_swept.saturating_add(rhs.segments_swept);
        self.bytes_swept = self.bytes_swept.saturating_add(rhs.bytes_swept);
        self.caps_inspected = self.caps_inspected.saturating_add(rhs.caps_inspected);
        self.caps_revoked = self.caps_revoked.saturating_add(rhs.caps_revoked);
        self.regs_revoked = self.regs_revoked.saturating_add(rhs.regs_revoked);
        self.pages_skipped = self.pages_skipped.saturating_add(rhs.pages_skipped);
        self.lines_skipped = self.lines_skipped.saturating_add(rhs.lines_skipped);
        self.chunks_retried = self.chunks_retried.saturating_add(rhs.chunks_retried);
    }
}

/// Executes revocation sweeps with a chosen [`Kernel`].
///
/// A thin facade over [`SweepEngine`]: each method is one fixed
/// `source × filter` composition, kept for callers that don't need the
/// engine's generality. See the crate-level example for typical use.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sweeper {
    kernel: Kernel,
}

impl Sweeper {
    /// A sweeper using `kernel`.
    pub fn new(kernel: Kernel) -> Sweeper {
        Sweeper { kernel }
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Sweeps every sweepable segment and the register file: the full §3.3
    /// root set.
    pub fn sweep_space(&self, space: &mut AddressSpace, shadow: &ShadowMap) -> SweepStats {
        let (source, _) = SpaceSource::split(space);
        SweepEngine::new(self.kernel).sweep(source, NoFilter, shadow)
    }

    /// Sweeps with PTE CapDirty filtering (§3.4.2): clean pages are skipped
    /// entirely, and pages found capability-free are re-cleaned (clearing
    /// CapDirty false positives).
    pub fn sweep_space_skipping(&self, space: &mut AddressSpace, shadow: &ShadowMap) -> SweepStats {
        let (source, page_table) = SpaceSource::split(space);
        SweepEngine::new(self.kernel).sweep(source, CapDirtyPages::new(page_table), shadow)
    }

    /// Sweeps with both hardware assists (§3.4): PTE CapDirty skips clean
    /// pages, and within dirty pages `CLoadTags` skips capability-free
    /// cache lines — "both coarse-grained and fine-grained optimisations
    /// are necessary for optimal work reduction" (§6.3).
    pub fn sweep_space_skipping_lines(
        &self,
        space: &mut AddressSpace,
        shadow: &ShadowMap,
    ) -> SweepStats {
        let (source, page_table) = SpaceSource::split(space);
        SweepEngine::new(self.kernel).sweep(
            source,
            (CapDirtyPages::new(page_table), CLoadTagsLines::new()),
            shadow,
        )
    }

    /// Sweeps one whole segment.
    pub fn sweep_segment(&self, mem: &mut TaggedMemory, shadow: &ShadowMap) -> SweepStats {
        SweepEngine::new(self.kernel).sweep(SegmentSource::new(mem), NoFilter, shadow)
    }

    /// Sweeps `[start, start + len)` of a segment (must be granule-aligned
    /// and inside the segment).
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or outside the segment.
    pub fn sweep_range(
        &self,
        mem: &mut TaggedMemory,
        shadow: &ShadowMap,
        start: u64,
        len: u64,
    ) -> SweepStats {
        let mut stats = SweepEngine::new(self.kernel).sweep(
            RangeSource::new(mem, start, len),
            NoFilter,
            shadow,
        );
        // Historical contract: a partial-range sweep reports no completed
        // segments (callers tally segment completion themselves).
        stats.segments_swept = 0;
        stats
    }

    /// Sweeps the capability register file.
    pub fn sweep_registers(regs: &mut RegisterFile, shadow: &ShadowMap) -> SweepStats {
        sweep_register_file(regs, shadow)
    }
}

/// Dispatches `kernel` over granules `[g0, g1)` of a data/tag slice pair.
/// `base` is the address of granule 0 (for cost hooks). The engine's
/// single entry point into the inner loops.
#[allow(clippy::too_many_arguments)] // kernel ABI: slices + window + hooks
pub(crate) fn run_kernel<C: SweepCost>(
    kernel: Kernel,
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    match kernel {
        Kernel::Simple => kernel_simple(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Unrolled => kernel_unrolled(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Wide => kernel_wide(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Parallel { threads } => {
            kernel_parallel(data, tags, g0, g1, shadow, threads.max(1), stats)
        }
        Kernel::Fast => kernel_fast(data, tags, g0, g1, shadow, base, cost, stats),
    }
}

/// Revokes granule `g`: clears the tag bit and zeroes the 16 data bytes
/// (the paper's `*x = 0`).
#[inline]
fn revoke(data: &mut [u8], tags: &mut [u64], g: usize) {
    tags[g / 64] &= !(1 << (g % 64));
    data[g * 16..g * 16 + 16].fill(0);
}

#[inline]
fn word_base(data: &[u8], g: usize) -> u64 {
    let bytes: [u8; 16] = data[g * 16..g * 16 + 16].try_into().expect("granule slice");
    CapWord::from(bytes).base()
}

/// §3.3's naïve loop: visit every granule, test its tag, branch.
#[allow(clippy::too_many_arguments)] // kernel ABI: slices + window + hooks
fn kernel_simple<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    for g in g0..g1 {
        let tagged = tags[g / 64] >> (g % 64) & 1 == 1;
        if tagged {
            stats.caps_inspected += 1;
            let cap_base = word_base(data, g);
            cost.shadow_lookup(cap_base);
            if shadow.is_painted(cap_base) {
                revoke(data, tags, g);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
        // The naïve kernel still "reads" every granule; callers charge
        // bandwidth for the full range via bytes_swept.
        core::hint::black_box(&data[g * 16]);
    }
}

/// Word-skipping loop: all-zero tag words (64 granules = 1 KiB) fall
/// through in one test.
#[allow(clippy::too_many_arguments)]
fn kernel_unrolled<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    let mut g = g0;
    while g < g1 {
        let w = g / 64;
        if g.is_multiple_of(64) && g + 64 <= g1 && tags[w] == 0 {
            g += 64;
            continue;
        }
        let tagged = tags[w] >> (g % 64) & 1 == 1;
        if tagged {
            stats.caps_inspected += 1;
            let cap_base = word_base(data, g);
            cost.shadow_lookup(cap_base);
            if shadow.is_painted(cap_base) {
                revoke(data, tags, g);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
        g += 1;
    }
}

/// Bit-parallel loop: visit only set bits via count-trailing-zeros, build
/// the revocation mask, and write the tag word back once.
#[allow(clippy::too_many_arguments)]
fn kernel_wide<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    let w0 = g0 / 64;
    let w1 = g1.div_ceil(64);
    #[allow(clippy::needless_range_loop)] // `w` also derives `lo`; indexing is the clear form
    for w in w0..w1 {
        // Mask the word to the requested granule range (ragged edges).
        let lo = w * 64;
        let mut live = tags[w];
        if lo < g0 {
            live &= u64::MAX << (g0 - lo);
        }
        if lo + 64 > g1 {
            live &= u64::MAX >> (lo + 64 - g1);
        }
        if live == 0 {
            continue;
        }
        let mut kill = 0u64;
        let mut bits = live;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let g = lo + b;
            stats.caps_inspected += 1;
            let cap_base = word_base(data, g);
            cost.shadow_lookup(cap_base);
            // Branch-minimised: accumulate the kill mask.
            kill |= u64::from(shadow.is_painted(cap_base)) << b;
        }
        if kill != 0 {
            tags[w] &= !kill;
            let mut bits = kill;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = lo + b;
                data[g * 16..g * 16 + 16].fill(0);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
    }
}

/// The tentpole fast path: [`kernel_wide`]'s visitation order and exact
/// statistics, with three per-capability savings.
///
/// * The word is read as two `u64` halves straight out of the data slice —
///   no 16-byte slice → `u128` widen/narrow round trip.
/// * Only the base is decoded, with the partial 64-bit bounds decode
///   ([`CapWord::base_from_halves`]); the unused `top` is never
///   reconstructed and no 128-bit arithmetic runs.
/// * The decoded base probes the shadow through the branch-free
///   [`ShadowMap::painted_bit`]: one load of the `u64` covering its
///   64-granule window, folded into the kill mask with shifts and masks
///   only — no data-dependent branch for random pointees to mispredict.
///
/// When no cost model is attached (`C::IS_FREE`) and the shadow map is
/// entirely empty, whole tag words fall through without decoding at all:
/// every live bit is counted as inspected (the result an empty shadow
/// forces) and nothing else happens. Cost-charging sweeps never take this
/// shortcut, so timed replays observe the full access stream.
#[allow(clippy::too_many_arguments)]
fn kernel_fast<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    let empty_shadow = C::IS_FREE && shadow.painted_bytes() == 0;
    let w0 = g0 / 64;
    let w1 = g1.div_ceil(64);
    #[allow(clippy::needless_range_loop)] // `w` also derives `lo`; indexing is the clear form
    for w in w0..w1 {
        // Mask the word to the requested granule range (ragged edges).
        let lo = w * 64;
        let mut live = tags[w];
        if lo < g0 {
            live &= u64::MAX << (g0 - lo);
        }
        if lo + 64 > g1 {
            live &= u64::MAX >> (lo + 64 - g1);
        }
        if live == 0 {
            continue;
        }
        if empty_shadow {
            // Nothing is painted: every tagged word survives. Count the
            // inspections (identical stats to the decoding path) and move
            // on without touching the data array.
            stats.caps_inspected += u64::from(live.count_ones());
            continue;
        }
        let mut kill = 0u64;
        let mut bits = live;
        {
            // Reborrow the data as aligned 8-byte halves: each capability
            // word is two direct u64 loads, no 16-byte slice → u128 round
            // trip and no per-load range construction.
            let (halves, _) = data.as_chunks::<8>();
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = lo + b;
                stats.caps_inspected += 1;
                let half_lo = u64::from_le_bytes(halves[2 * g]);
                let half_hi = u64::from_le_bytes(halves[2 * g + 1]);
                let cap_base = CapWord::base_from_halves(half_lo, half_hi);
                cost.shadow_lookup(cap_base);
                kill |= shadow.painted_bit(cap_base) << b;
            }
        }
        if kill != 0 {
            tags[w] &= !kill;
            let mut bits = kill;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = lo + b;
                data[g * 16..g * 16 + 16].fill(0);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
    }
}

/// [`kernel_wide`] across threads: tag words and their 1 KiB data blocks
/// are partitioned disjointly; the shadow map is shared read-only (§3.5).
/// Workers charge no [`SweepCost`] (use a sequential kernel for timed
/// sweeps).
fn kernel_parallel(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    threads: usize,
    stats: &mut SweepStats,
) {
    // Partition on tag-word boundaries so each worker owns whole words.
    let w0 = g0 / 64;
    let w1 = g1.div_ceil(64);
    let words = w1 - w0;
    if words == 0 {
        return;
    }
    let per = words.div_ceil(threads);

    // Ragged segment edges are handled by clamping each worker's granule
    // range to [g0, g1].
    let mut remaining_data = &mut data[w0 * 64 * 16..];
    let mut remaining_tags = &mut tags[w0..w1];
    let mut jobs = Vec::new();
    let mut w = w0;
    while w < w1 {
        let take = per.min(w1 - w);
        let (td, rd) = remaining_data.split_at_mut((take * 64 * 16).min(remaining_data.len()));
        let (tt, rt) = remaining_tags.split_at_mut(take);
        remaining_data = rd;
        remaining_tags = rt;
        jobs.push((w, take, td, tt));
        w += take;
    }

    let partials: Vec<SweepStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(wstart, take, td, tt)| {
                scope.spawn(move || {
                    // Worker-local granule window, clamped to the request.
                    let local_g0 = (wstart * 64).max(g0) - wstart * 64;
                    let local_g1 = ((wstart + take) * 64).min(g1) - wstart * 64;
                    let mut local = SweepStats::default();
                    kernel_wide(
                        td,
                        tt,
                        local_g0,
                        local_g1,
                        shadow,
                        (wstart as u64) * 64 * GRANULE_SIZE,
                        &mut crate::engine::NoCost,
                        &mut local,
                    );
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    *stats += SweepStats::merge_parallel(partials);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 18;

    /// Builds a segment with `n` capabilities, half pointing at painted
    /// granules. Returns (memory, shadow, expected revocations).
    fn scenario(n: u64) -> (TaggedMemory, ShadowMap, u64) {
        let mut mem = TaggedMemory::new(HEAP, LEN);
        let mut shadow = ShadowMap::new(HEAP, LEN);
        let mut expect = 0;
        for i in 0..n {
            let obj_base = HEAP + 0x8000 + i * 64;
            let cap = Capability::root_rw(obj_base, 64);
            mem.write_cap(HEAP + i * 16, &cap).unwrap();
            if i % 2 == 0 {
                shadow.paint(obj_base, 64);
                expect += 1;
            }
        }
        (mem, shadow, expect)
    }

    fn all_kernels() -> Vec<Kernel> {
        vec![
            Kernel::Simple,
            Kernel::Unrolled,
            Kernel::Wide,
            Kernel::Parallel { threads: 4 },
            Kernel::Fast,
        ]
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Kernel::Simple.name(), "simple");
        assert_eq!(Kernel::Unrolled.name(), "unrolled");
        assert_eq!(Kernel::Wide.name(), "wide");
        assert_eq!(Kernel::Parallel { threads: 4 }.name(), "parallel");
        assert_eq!(Kernel::Fast.name(), "fast");
    }

    #[test]
    fn fast_kernel_sweeps_empty_shadow_with_identical_stats() {
        // The C::IS_FREE bulk path must report the same stats the decoding
        // path would: every tagged word inspected, none revoked.
        let (mut mem, _, _) = scenario(100);
        let empty = ShadowMap::new(HEAP, LEN);
        let fast = Sweeper::new(Kernel::Fast).sweep_segment(&mut mem, &empty);
        let (mut mem2, _, _) = scenario(100);
        let wide = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem2, &empty);
        assert_eq!(fast, wide);
        assert_eq!(fast.caps_inspected, 100);
        assert_eq!(fast.caps_revoked, 0);
        assert_eq!(mem, mem2);
    }

    #[test]
    fn stats_addassign_saturates() {
        let mut a = SweepStats {
            bytes_swept: u64::MAX - 1,
            caps_inspected: u64::MAX,
            ..SweepStats::default()
        };
        let b = SweepStats {
            bytes_swept: 100,
            caps_inspected: 7,
            lines_skipped: 3,
            ..SweepStats::default()
        };
        a += b;
        assert_eq!(a.bytes_swept, u64::MAX, "saturates instead of wrapping");
        assert_eq!(a.caps_inspected, u64::MAX);
        assert_eq!(a.lines_skipped, 3);
    }

    #[test]
    fn merge_parallel_sums_work_but_not_plan_counters() {
        let worker = SweepStats {
            segments_swept: 1,
            bytes_swept: 1000,
            caps_inspected: 10,
            caps_revoked: 4,
            regs_revoked: 1,
            pages_skipped: 5,
            lines_skipped: 9,
            chunks_retried: 1,
        };
        let merged = SweepStats::merge_parallel([worker, worker]);
        assert_eq!(merged.bytes_swept, 2000);
        assert_eq!(merged.caps_inspected, 20);
        assert_eq!(merged.caps_revoked, 8);
        assert_eq!(merged.regs_revoked, 2);
        // Retries are work-level: each worker's own retries count.
        assert_eq!(merged.chunks_retried, 2);
        // Plan-level counters are not double-counted across workers.
        assert_eq!(merged.segments_swept, 0);
        assert_eq!(merged.pages_skipped, 0);
        assert_eq!(merged.lines_skipped, 0);
    }

    #[test]
    fn merge_parallel_saturates() {
        let big = SweepStats {
            caps_revoked: u64::MAX / 2 + 1,
            ..SweepStats::default()
        };
        let merged = SweepStats::merge_parallel([big, big, big]);
        assert_eq!(merged.caps_revoked, u64::MAX);
    }

    #[test]
    fn all_kernels_agree_on_revocations() {
        for kernel in all_kernels() {
            let (mut mem, shadow, expect) = scenario(100);
            let stats = Sweeper::new(kernel).sweep_segment(&mut mem, &shadow);
            assert_eq!(stats.caps_inspected, 100, "{kernel:?}");
            assert_eq!(stats.caps_revoked, expect, "{kernel:?}");
            assert_eq!(stats.bytes_swept, LEN);
            // Surviving capabilities: odd indices.
            for i in 0..100u64 {
                let c = mem.read_cap(HEAP + i * 16).unwrap();
                assert_eq!(c.tag(), i % 2 == 1, "{kernel:?} granule {i}");
            }
        }
    }

    #[test]
    fn revoked_words_are_zeroed() {
        let (mut mem, shadow, _) = scenario(10);
        Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        let (word, tag) = mem.read_cap_word(HEAP).unwrap();
        assert!(!tag);
        assert_eq!(
            word.bits(),
            0,
            "paper's loop stores zero over dangling pointers"
        );
    }

    #[test]
    fn untagged_data_is_never_touched() {
        let mut mem = TaggedMemory::new(HEAP, LEN);
        // Plant data that *looks* like a capability to painted memory.
        let fake = Capability::root_rw(HEAP + 0x40, 64);
        mem.write_cap(HEAP, &fake.cleared()).unwrap(); // untagged!
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        for kernel in all_kernels() {
            let stats = Sweeper::new(kernel).sweep_segment(&mut mem, &shadow);
            assert_eq!(stats.caps_inspected, 0);
            assert_eq!(stats.caps_revoked, 0);
        }
        // The data survives (it is not a pointer, just data).
        let (word, _) = mem.read_cap_word(HEAP).unwrap();
        assert_ne!(word.bits(), 0);
    }

    #[test]
    fn interior_pointers_are_revoked_via_base() {
        // A capability whose *address* has wandered past the object still
        // dangles: revocation keys on the base (§3.2 footnote 2).
        let mut mem = TaggedMemory::new(HEAP, LEN);
        let obj = Capability::root_rw(HEAP + 0x100, 64);
        let wandered = obj.incremented(64).unwrap(); // one past the end
        mem.write_cap(HEAP, &wandered).unwrap();
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x100, 64);
        let stats = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        assert_eq!(stats.caps_revoked, 1);
    }

    #[test]
    fn capabilities_to_unpainted_memory_survive() {
        let mut mem = TaggedMemory::new(HEAP, LEN);
        let obj = Capability::root_rw(HEAP + 0x100, 64);
        mem.write_cap(HEAP, &obj).unwrap();
        let shadow = ShadowMap::new(HEAP, LEN);
        let stats = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        assert_eq!(stats.caps_inspected, 1);
        assert_eq!(stats.caps_revoked, 0);
        assert!(mem.read_cap(HEAP).unwrap().tag());
    }

    #[test]
    fn register_file_is_swept() {
        let mut regs = RegisterFile::new();
        regs.set(0, Capability::root_rw(HEAP + 0x40, 64));
        regs.set(1, Capability::root_rw(HEAP + 0x1000, 64));
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        let stats = Sweeper::sweep_registers(&mut regs, &shadow);
        assert_eq!(stats.regs_revoked, 1);
        assert!(!regs.get(0).tag());
        assert!(regs.get(1).tag());
    }

    #[test]
    fn sweep_space_covers_all_root_segments() {
        use tagmem::SegmentKind;
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16)
            .segment(SegmentKind::Stack, 0x7fff_0000, 1 << 16)
            .segment(SegmentKind::Globals, 0x60_0000, 1 << 16)
            .build();
        let obj = Capability::root_rw(HEAP + 0x40, 64);
        // Dangling references scattered across all segments + a register.
        space.store_cap(HEAP + 0x1000, &obj).unwrap();
        space.store_cap(0x7fff_0100, &obj).unwrap();
        space.store_cap(0x60_0040, &obj).unwrap();
        space.registers_mut().set(5, obj);
        let mut shadow = ShadowMap::new(HEAP, 1 << 16);
        shadow.paint(HEAP + 0x40, 64);
        let stats = Sweeper::new(Kernel::Wide).sweep_space(&mut space, &shadow);
        assert_eq!(stats.caps_revoked, 4);
        assert_eq!(stats.segments_swept, 3);
        assert_eq!(space.tag_count(), 0);
    }

    #[test]
    fn capdirty_skipping_finds_everything_and_recleans() {
        use tagmem::SegmentKind;
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16) // 16 pages
            .build();
        let obj = Capability::root_rw(HEAP + 0x40, 64);
        space.store_cap(HEAP + 0x2000, &obj).unwrap();
        // Overwrite with data: page stays CapDirty (false positive).
        space.store_cap(HEAP + 0x5000, &obj).unwrap();
        space.store_u64(HEAP + 0x5000, 0).unwrap();
        let mut shadow = ShadowMap::new(HEAP, 1 << 16);
        shadow.paint(HEAP + 0x40, 64);
        let stats = Sweeper::new(Kernel::Wide).sweep_space_skipping(&mut space, &shadow);
        assert_eq!(stats.caps_revoked, 1);
        assert_eq!(stats.pages_skipped, 14, "14 never-dirty pages skipped");
        // The false-positive page was re-cleaned.
        assert!(!space.page_table().is_cap_dirty(HEAP + 0x5000));
        // And the genuinely swept page stays dirty (it held a cap, now
        // revoked — next sweep may re-clean it).
        assert!(space.page_table().is_cap_dirty(HEAP + 0x2000));
    }

    #[test]
    fn skipping_sweep_equals_full_sweep() {
        use tagmem::SegmentKind;
        for seed in 0..5u64 {
            let build = || {
                let mut space = AddressSpace::builder()
                    .segment(SegmentKind::Heap, HEAP, 1 << 16)
                    .build();
                let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                for _ in 0..40 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let slot = HEAP + (x >> 20) % ((1 << 16) - 16) / 16 * 16;
                    let obj = HEAP + ((x >> 40) % 4096) * 16;
                    let cap = Capability::root_rw(obj, 16);
                    space.store_cap(slot, &cap).unwrap();
                }
                space
            };
            let mut shadow = ShadowMap::new(HEAP, 1 << 16);
            for g in 0..4096u64 {
                if g % 3 == 0 {
                    shadow.paint(HEAP + g * 16, 16);
                }
            }
            let mut full = build();
            let mut skip = build();
            let a = Sweeper::new(Kernel::Wide).sweep_space(&mut full, &shadow);
            let b = Sweeper::new(Kernel::Wide).sweep_space_skipping(&mut skip, &shadow);
            assert_eq!(a.caps_revoked, b.caps_revoked, "seed {seed}");
            assert_eq!(full.tag_count(), skip.tag_count(), "seed {seed}");
        }
    }

    #[test]
    fn parallel_kernel_handles_odd_partitions() {
        for threads in [1, 2, 3, 7, 16] {
            let (mut mem, shadow, expect) = scenario(333);
            let stats = Sweeper::new(Kernel::Parallel { threads }).sweep_segment(&mut mem, &shadow);
            assert_eq!(stats.caps_revoked, expect, "threads={threads}");
        }
    }

    #[test]
    fn sweep_range_respects_bounds() {
        let (mut mem, shadow, _) = scenario(100);
        // Sweep only the first 32 granules (two tag words): 16 caps live
        // there (i = 0..32 at 16-byte spacing → granules 0..32).
        let stats = Sweeper::new(Kernel::Wide).sweep_range(&mut mem, &shadow, HEAP, 32 * 16);
        assert_eq!(stats.caps_inspected, 32);
        // Capabilities outside the range are untouched even if dangling:
        // granule 40 holds a cap to a painted object (i=40 is even).
        assert!(mem.read_cap(HEAP + 40 * 16).unwrap().tag());
        assert_eq!(stats.bytes_swept, 32 * 16);
    }
}

#[cfg(test)]
mod line_skip_tests {
    use super::*;
    use cheri::Capability;
    use tagmem::SegmentKind;

    const HEAP: u64 = 0x1000_0000;

    fn seeded_space() -> (AddressSpace, ShadowMap) {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16)
            .build();
        let doomed = Capability::root_rw(HEAP + 0x40, 64);
        let live = Capability::root_rw(HEAP + 0x200, 64);
        space.store_cap(HEAP + 0x1000, &doomed).unwrap();
        space.store_cap(HEAP + 0x1080, &live).unwrap(); // next line, same page
        space.store_cap(HEAP + 0x7000, &doomed).unwrap(); // other page
        let mut shadow = ShadowMap::new(HEAP, 1 << 16);
        shadow.paint(HEAP + 0x40, 64);
        (space, shadow)
    }

    #[test]
    fn line_skipping_agrees_with_full_sweep() {
        let (mut a, shadow) = seeded_space();
        let (mut b, _) = seeded_space();
        let full = Sweeper::new(Kernel::Wide).sweep_space(&mut a, &shadow);
        let skip = Sweeper::new(Kernel::Wide).sweep_space_skipping_lines(&mut b, &shadow);
        assert_eq!(full.caps_revoked, skip.caps_revoked);
        assert_eq!(a.tag_count(), b.tag_count());
        assert_eq!(skip.caps_revoked, 2);
    }

    #[test]
    fn line_skipping_skips_both_granularities() {
        let (mut space, shadow) = seeded_space();
        let stats = Sweeper::new(Kernel::Wide).sweep_space_skipping_lines(&mut space, &shadow);
        // 16 pages total, 2 dirty, 14 skipped at page level.
        assert_eq!(stats.pages_skipped, 14);
        // Dirty pages hold 2×32 = 64 lines; only 3 hold tags.
        assert_eq!(stats.lines_skipped, 61);
        // Bytes actually walked: three lines.
        assert_eq!(stats.bytes_swept, 3 * tagmem::LINE_SIZE);
    }

    #[test]
    fn line_skipping_recleans_false_positive_pages() {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16)
            .build();
        let cap = Capability::root_rw(HEAP + 0x40, 64);
        space.store_cap(HEAP + 0x2000, &cap).unwrap();
        space.store_u64(HEAP + 0x2000, 0).unwrap(); // tag gone, page still dirty
        let shadow = ShadowMap::new(HEAP, 1 << 16);
        Sweeper::new(Kernel::Wide).sweep_space_skipping_lines(&mut space, &shadow);
        assert!(!space.page_table().is_cap_dirty(HEAP + 0x2000));
    }
}
