//! Sweep kernels, stats, and the legacy [`Sweeper`] facade (§3.3, §6.2).
//!
//! The walk logic lives in [`crate::engine`]; this module contributes the
//! Figure 7 kernel tiers (the inner loops) and keeps [`Sweeper`] as a thin
//! facade whose methods are one-line compositions over
//! [`SweepEngine`](crate::engine::SweepEngine).

use cheri::CapWord;
use tagmem::{AddressSpace, RegisterFile, TaggedMemory, GRANULE_SIZE};

use crate::engine::{
    sweep_register_file, CLoadTagsLines, CapDirtyPages, NoFilter, RangeSource, SegmentSource,
    SpaceSource, SweepCost, SweepEngine,
};
use crate::ShadowMap;

/// Which inner-loop implementation to use — the paper's Figure 7 compares
/// exactly this set of optimisation levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The naïve per-granule loop of §3.3: check the tag, decode, branch.
    Simple,
    /// Loop over 64-granule tag words, skipping all-zero words; per-bit
    /// scan of nonzero words (the paper's "unrolling + manual pipelining"
    /// tier).
    Unrolled,
    /// Bit-parallel scan: only *set* tag bits are visited (via
    /// count-trailing-zeros), with a branch-minimised revocation write —
    /// the role AVX2 plays in the paper.
    #[default]
    Wide,
    /// [`Kernel::Wide`] parallelised across scoped threads (§3.5:
    /// sweeping is embarrassingly parallel; the shadow map is read-only).
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// The word-at-a-time fast path: like [`Kernel::Wide`], but each
    /// capability is read as two 8-byte loads (no `u128` round trip), only
    /// its **base** is decoded (the partial 64-bit decode,
    /// [`cheri::CompressedBounds::decode_base_partial`]), and the decoded
    /// base is first tested against the whole 64-granule shadow word
    /// covering it — one `u64` compare rejects unpainted bases without a
    /// bit extraction. Selected by default via `CHERIVOKE_FAST_KERNEL`
    /// (see [`crate::fast_kernel_from_env`]).
    Fast,
    /// The vectorised tier (the role AVX2 plays in the paper's Fig. 7
    /// hardware sweep): tag words are scanned four at a time with a
    /// compare/movemask clean-span skip, candidate capability bases are
    /// decoded lane-parallel through the same partial decode
    /// [`Kernel::Fast`] uses ([`cheri::CompressedBounds::decode_base_partial`],
    /// four candidates per 256-bit lane), and software prefetches pull the
    /// next tag-word span while the current one is processed. Vector units
    /// are detected at runtime (AVX2 on x86_64, NEON on aarch64); without
    /// them — or whenever a [`SweepCost`] model is attached, so timed
    /// replays observe the exact scalar access stream — the kernel falls
    /// back to [`Kernel::Fast`], which it matches bit-for-bit by
    /// construction. Selected via `CHERIVOKE_KERNEL=simd`
    /// (see [`crate::kernel_from_env`]).
    Simd,
}

impl Kernel {
    /// A short stable name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Simple => "simple",
            Kernel::Unrolled => "unrolled",
            Kernel::Wide => "wide",
            Kernel::Parallel { .. } => "parallel",
            Kernel::Fast => "fast",
            Kernel::Simd => "simd",
        }
    }

    /// The default sweep kernel honouring the environment: first
    /// `CHERIVOKE_KERNEL=reference|wide|fast|simd`, then the deprecated
    /// `CHERIVOKE_FAST_KERNEL` toggle, defaulting to [`Kernel::Fast`]
    /// (see [`crate::kernel_from_env`] for the full clamp+warn semantics).
    pub fn from_env() -> Kernel {
        crate::engine::kernel_from_env()
    }
}

/// Counters from one revocation sweep.
///
/// All accumulation is **saturating**: merging worker partials or summing
/// across epochs can never wrap (see [`SweepStats::merge_parallel`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Segments visited.
    pub segments_swept: u64,
    /// Bytes of memory the kernel walked over.
    pub bytes_swept: u64,
    /// Tagged words inspected (capabilities found).
    pub caps_inspected: u64,
    /// Capabilities revoked (tag cleared, word zeroed).
    pub caps_revoked: u64,
    /// Register-file capabilities revoked.
    pub regs_revoked: u64,
    /// Pages skipped by PTE CapDirty filtering (when enabled).
    pub pages_skipped: u64,
    /// Cache lines skipped by CLoadTags filtering (when enabled).
    pub lines_skipped: u64,
    /// Chunks whose kernel panicked and were retried on the sequential
    /// reference kernel (only ever non-zero with fault injection armed or
    /// a genuinely buggy kernel; see `ParallelSweepEngine`).
    pub chunks_retried: u64,
}

impl SweepStats {
    /// Merges per-worker partial stats from one parallel sweep.
    ///
    /// Only the per-granule *work* counters (`bytes_swept`,
    /// `caps_inspected`, `caps_revoked`, `regs_revoked`) are summed
    /// (saturating). The *plan-level* counters (`segments_swept`,
    /// `pages_skipped`, `lines_skipped`) belong to the single planning
    /// pass that produced the workers' chunks, so they are left at zero —
    /// summing them per worker would double-count skipped work.
    pub fn merge_parallel(parts: impl IntoIterator<Item = SweepStats>) -> SweepStats {
        let mut out = SweepStats::default();
        for p in parts {
            out.bytes_swept = out.bytes_swept.saturating_add(p.bytes_swept);
            out.caps_inspected = out.caps_inspected.saturating_add(p.caps_inspected);
            out.caps_revoked = out.caps_revoked.saturating_add(p.caps_revoked);
            out.regs_revoked = out.regs_revoked.saturating_add(p.regs_revoked);
            out.chunks_retried = out.chunks_retried.saturating_add(p.chunks_retried);
        }
        out
    }
}

impl core::ops::AddAssign for SweepStats {
    fn add_assign(&mut self, rhs: SweepStats) {
        self.segments_swept = self.segments_swept.saturating_add(rhs.segments_swept);
        self.bytes_swept = self.bytes_swept.saturating_add(rhs.bytes_swept);
        self.caps_inspected = self.caps_inspected.saturating_add(rhs.caps_inspected);
        self.caps_revoked = self.caps_revoked.saturating_add(rhs.caps_revoked);
        self.regs_revoked = self.regs_revoked.saturating_add(rhs.regs_revoked);
        self.pages_skipped = self.pages_skipped.saturating_add(rhs.pages_skipped);
        self.lines_skipped = self.lines_skipped.saturating_add(rhs.lines_skipped);
        self.chunks_retried = self.chunks_retried.saturating_add(rhs.chunks_retried);
    }
}

/// Executes revocation sweeps with a chosen [`Kernel`].
///
/// A thin facade over [`SweepEngine`]: each method is one fixed
/// `source × filter` composition, kept for callers that don't need the
/// engine's generality. See the crate-level example for typical use.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sweeper {
    kernel: Kernel,
}

impl Sweeper {
    /// A sweeper using `kernel`.
    pub fn new(kernel: Kernel) -> Sweeper {
        Sweeper { kernel }
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Sweeps every sweepable segment and the register file: the full §3.3
    /// root set.
    pub fn sweep_space(&self, space: &mut AddressSpace, shadow: &ShadowMap) -> SweepStats {
        let (source, _) = SpaceSource::split(space);
        SweepEngine::new(self.kernel).sweep(source, NoFilter, shadow)
    }

    /// Sweeps with PTE CapDirty filtering (§3.4.2): clean pages are skipped
    /// entirely, and pages found capability-free are re-cleaned (clearing
    /// CapDirty false positives).
    pub fn sweep_space_skipping(&self, space: &mut AddressSpace, shadow: &ShadowMap) -> SweepStats {
        let (source, page_table) = SpaceSource::split(space);
        SweepEngine::new(self.kernel).sweep(source, CapDirtyPages::new(page_table), shadow)
    }

    /// Sweeps with both hardware assists (§3.4): PTE CapDirty skips clean
    /// pages, and within dirty pages `CLoadTags` skips capability-free
    /// cache lines — "both coarse-grained and fine-grained optimisations
    /// are necessary for optimal work reduction" (§6.3).
    pub fn sweep_space_skipping_lines(
        &self,
        space: &mut AddressSpace,
        shadow: &ShadowMap,
    ) -> SweepStats {
        let (source, page_table) = SpaceSource::split(space);
        SweepEngine::new(self.kernel).sweep(
            source,
            (CapDirtyPages::new(page_table), CLoadTagsLines::new()),
            shadow,
        )
    }

    /// Sweeps one whole segment.
    pub fn sweep_segment(&self, mem: &mut TaggedMemory, shadow: &ShadowMap) -> SweepStats {
        SweepEngine::new(self.kernel).sweep(SegmentSource::new(mem), NoFilter, shadow)
    }

    /// Sweeps `[start, start + len)` of a segment (must be granule-aligned
    /// and inside the segment).
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or outside the segment.
    pub fn sweep_range(
        &self,
        mem: &mut TaggedMemory,
        shadow: &ShadowMap,
        start: u64,
        len: u64,
    ) -> SweepStats {
        let mut stats = SweepEngine::new(self.kernel).sweep(
            RangeSource::new(mem, start, len),
            NoFilter,
            shadow,
        );
        // Historical contract: a partial-range sweep reports no completed
        // segments (callers tally segment completion themselves).
        stats.segments_swept = 0;
        stats
    }

    /// Sweeps the capability register file.
    pub fn sweep_registers(regs: &mut RegisterFile, shadow: &ShadowMap) -> SweepStats {
        sweep_register_file(regs, shadow)
    }
}

/// Dispatches `kernel` over granules `[g0, g1)` of a data/tag slice pair.
/// `base` is the address of granule 0 (for cost hooks). The engine's
/// single entry point into the inner loops.
#[allow(clippy::too_many_arguments)] // kernel ABI: slices + window + hooks
pub(crate) fn run_kernel<C: SweepCost>(
    kernel: Kernel,
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    match kernel {
        Kernel::Simple => kernel_simple(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Unrolled => kernel_unrolled(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Wide => kernel_wide(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Parallel { threads } => {
            kernel_parallel(data, tags, g0, g1, shadow, threads.max(1), stats)
        }
        Kernel::Fast => kernel_fast(data, tags, g0, g1, shadow, base, cost, stats),
        Kernel::Simd => kernel_simd(data, tags, g0, g1, shadow, base, cost, stats),
    }
}

/// Forces [`Kernel::Simd`] onto its scalar fallback path (test hook).
///
/// Process-global so the parallel engine's scoped worker threads observe
/// it too. Equivalence tests use it to prove the fallback is exercised and
/// bit-identical; it is not part of the public API surface.
#[doc(hidden)]
pub fn force_scalar_kernel(force: bool) {
    FORCE_SCALAR.store(force, std::sync::atomic::Ordering::SeqCst);
}

static FORCE_SCALAR: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[inline]
fn scalar_forced() -> bool {
    FORCE_SCALAR.load(std::sync::atomic::Ordering::Relaxed)
}

/// Revokes granule `g`: clears the tag bit and zeroes the 16 data bytes
/// (the paper's `*x = 0`).
#[inline]
fn revoke(data: &mut [u8], tags: &mut [u64], g: usize) {
    tags[g / 64] &= !(1 << (g % 64));
    data[g * 16..g * 16 + 16].fill(0);
}

#[inline]
fn word_base(data: &[u8], g: usize) -> u64 {
    let bytes: [u8; 16] = data[g * 16..g * 16 + 16].try_into().expect("granule slice");
    CapWord::from(bytes).base()
}

/// §3.3's naïve loop: visit every granule, test its tag, branch.
#[allow(clippy::too_many_arguments)] // kernel ABI: slices + window + hooks
fn kernel_simple<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    for g in g0..g1 {
        let tagged = tags[g / 64] >> (g % 64) & 1 == 1;
        if tagged {
            stats.caps_inspected += 1;
            let cap_base = word_base(data, g);
            cost.shadow_lookup(cap_base);
            if shadow.is_painted(cap_base) {
                revoke(data, tags, g);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
        // The naïve kernel still "reads" every granule; callers charge
        // bandwidth for the full range via bytes_swept.
        core::hint::black_box(&data[g * 16]);
    }
}

/// Word-skipping loop: all-zero tag words (64 granules = 1 KiB) fall
/// through in one test.
#[allow(clippy::too_many_arguments)]
fn kernel_unrolled<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    let mut g = g0;
    while g < g1 {
        let w = g / 64;
        if g.is_multiple_of(64) && g + 64 <= g1 && tags[w] == 0 {
            g += 64;
            continue;
        }
        let tagged = tags[w] >> (g % 64) & 1 == 1;
        if tagged {
            stats.caps_inspected += 1;
            let cap_base = word_base(data, g);
            cost.shadow_lookup(cap_base);
            if shadow.is_painted(cap_base) {
                revoke(data, tags, g);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
        g += 1;
    }
}

/// Bit-parallel loop: visit only set bits via count-trailing-zeros, build
/// the revocation mask, and write the tag word back once.
#[allow(clippy::too_many_arguments)]
fn kernel_wide<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    let w0 = g0 / 64;
    let w1 = g1.div_ceil(64);
    #[allow(clippy::needless_range_loop)] // `w` also derives `lo`; indexing is the clear form
    for w in w0..w1 {
        // Mask the word to the requested granule range (ragged edges).
        let lo = w * 64;
        let mut live = tags[w];
        if lo < g0 {
            live &= u64::MAX << (g0 - lo);
        }
        if lo + 64 > g1 {
            live &= u64::MAX >> (lo + 64 - g1);
        }
        if live == 0 {
            continue;
        }
        let mut kill = 0u64;
        let mut bits = live;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let g = lo + b;
            stats.caps_inspected += 1;
            let cap_base = word_base(data, g);
            cost.shadow_lookup(cap_base);
            // Branch-minimised: accumulate the kill mask.
            kill |= u64::from(shadow.is_painted(cap_base)) << b;
        }
        if kill != 0 {
            tags[w] &= !kill;
            let mut bits = kill;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = lo + b;
                data[g * 16..g * 16 + 16].fill(0);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
    }
}

/// The tentpole fast path: [`kernel_wide`]'s visitation order and exact
/// statistics, with three per-capability savings.
///
/// * The word is read as two `u64` halves straight out of the data slice —
///   no 16-byte slice → `u128` widen/narrow round trip.
/// * Only the base is decoded, with the partial 64-bit bounds decode
///   ([`CapWord::base_from_halves`]); the unused `top` is never
///   reconstructed and no 128-bit arithmetic runs.
/// * The decoded base probes the shadow through the branch-free
///   [`ShadowMap::painted_bit`]: one load of the `u64` covering its
///   64-granule window, folded into the kill mask with shifts and masks
///   only — no data-dependent branch for random pointees to mispredict.
///
/// When no cost model is attached (`C::IS_FREE`) and the shadow map is
/// entirely empty, whole tag words fall through without decoding at all:
/// every live bit is counted as inspected (the result an empty shadow
/// forces) and nothing else happens. Cost-charging sweeps never take this
/// shortcut, so timed replays observe the full access stream.
#[allow(clippy::too_many_arguments)]
fn kernel_fast<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    let empty_shadow = C::IS_FREE && shadow.painted_bytes() == 0;
    let w0 = g0 / 64;
    let w1 = g1.div_ceil(64);
    #[allow(clippy::needless_range_loop)] // `w` also derives `lo`; indexing is the clear form
    for w in w0..w1 {
        // Mask the word to the requested granule range (ragged edges).
        let lo = w * 64;
        let mut live = tags[w];
        if lo < g0 {
            live &= u64::MAX << (g0 - lo);
        }
        if lo + 64 > g1 {
            live &= u64::MAX >> (lo + 64 - g1);
        }
        if live == 0 {
            continue;
        }
        if empty_shadow {
            // Nothing is painted: every tagged word survives. Count the
            // inspections (identical stats to the decoding path) and move
            // on without touching the data array.
            stats.caps_inspected += u64::from(live.count_ones());
            continue;
        }
        let mut kill = 0u64;
        let mut bits = live;
        {
            // Reborrow the data as aligned 8-byte halves: each capability
            // word is two direct u64 loads, no 16-byte slice → u128 round
            // trip and no per-load range construction.
            let (halves, _) = data.as_chunks::<8>();
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = lo + b;
                stats.caps_inspected += 1;
                let half_lo = u64::from_le_bytes(halves[2 * g]);
                let half_hi = u64::from_le_bytes(halves[2 * g + 1]);
                let cap_base = CapWord::base_from_halves(half_lo, half_hi);
                cost.shadow_lookup(cap_base);
                kill |= shadow.painted_bit(cap_base) << b;
            }
        }
        if kill != 0 {
            tags[w] &= !kill;
            let mut bits = kill;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = lo + b;
                data[g * 16..g * 16 + 16].fill(0);
                cost.revoke_store(base + (g as u64) * GRANULE_SIZE);
                cost.branch_mispredict();
                stats.caps_revoked += 1;
            }
        }
    }
}

/// [`Kernel::Simd`]'s dispatcher: picks the vector implementation the host
/// supports, or [`kernel_fast`] when none applies.
///
/// Three conditions force the scalar fallback, each preserving
/// bit-identical memory, stats, and [`SweepCost`] charges:
///
/// * a cost model is attached (`!C::IS_FREE`) — timed replays must observe
///   the exact scalar access stream, so the vector path never runs costed;
/// * the test hook [`force_scalar_kernel`] is armed;
/// * runtime feature detection finds no usable vector unit.
///
/// The empty-shadow bulk count also routes through [`kernel_fast`], whose
/// shortcut already produces the stats an empty shadow forces.
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)] // sole caller of the feature-gated vector modules
fn kernel_simd<C: SweepCost>(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    base: u64,
    cost: &mut C,
    stats: &mut SweepStats,
) {
    if !C::IS_FREE || scalar_forced() || shadow.painted_bytes() == 0 {
        return kernel_fast(data, tags, g0, g1, shadow, base, cost, stats);
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was just verified on this CPU.
        unsafe { simd_avx2::sweep(data, tags, g0, g1, shadow, stats) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON presence was just verified on this CPU.
        unsafe { simd_neon::sweep(data, tags, g0, g1, shadow, stats) };
        return;
    }
    kernel_fast(data, tags, g0, g1, shadow, base, cost, stats)
}

/// AVX2 implementation of [`Kernel::Simd`] (see DESIGN.md §19). AVX2 is
/// deliberately the widest tier dispatched: an AVX-512 variant (8-wide
/// clean skip and decode) measured 10–30% *slower* on the reference host —
/// any 512-bit op in the loop trips frequency licensing / port splitting —
/// so the 256-bit datapath stays (§19 records the experiment).
///
/// Together with `conservative.rs`'s stack scanner, one of the only two
/// `unsafe` islands in the workspace, and for the same reason: `std::arch`
/// vector intrinsics. Everything here is plain lane arithmetic on values
/// loaded from the same slices the scalar kernels index; the only safety
/// obligation is the AVX2 cpuid check the dispatcher performs.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd_avx2 {
    use core::arch::x86_64::*;

    use super::SweepStats;
    use crate::ShadowMap;

    const MASK14: i64 = 0x3fff; // CHERI Concentrate mantissa mask (MW = 14)
    const MAX_LEN_MANT: i64 = 1 << 12;
    const MAX_EXPONENT: i64 = 52;

    /// Four [`cheri::CompressedBounds::decode_base_partial`] decodes in one
    /// 256-bit lane: lane `i` of `lo`/`hi` holds the low/high half of
    /// candidate word `i`, lane `i` of the result its decoded base.
    ///
    /// Lane-for-lane transcription of the scalar (see `cheri::compress`):
    /// the `shift >= 64` guards map onto `_mm256_srlv_epi64` /
    /// `_mm256_sllv_epi64` semantics (counts ≥ 64 yield zero), the `b < r` /
    /// `a_mid < r` unsigned compares are safe as signed `_mm256_cmpgt_epi64`
    /// because both operands are 14-bit, and the `(b < r) - (a_mid < r)`
    /// correction adds the compare masks directly (an all-ones lane is −1).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn decode_bases(lo: __m256i, hi: __m256i) -> __m256i {
        let mask14 = _mm256_set1_epi64x(MASK14);
        let b = _mm256_and_si256(_mm256_srli_epi64::<14>(hi), mask14);
        let e_raw = _mm256_and_si256(_mm256_srli_epi64::<28>(hi), _mm256_set1_epi64x(0x3f));
        let cap = _mm256_set1_epi64x(MAX_EXPONENT);
        // e = min(e_raw, MAX_EXPONENT)
        let e = _mm256_blendv_epi8(e_raw, cap, _mm256_cmpgt_epi64(e_raw, cap));
        let shift = _mm256_add_epi64(e, _mm256_set1_epi64x(14)); // E + MW, 14..=66
        let a_mid = _mm256_and_si256(_mm256_srlv_epi64(lo, e), mask14);
        let a_hi = _mm256_srlv_epi64(lo, shift); // count >= 64 → 0 (the scalar guard)
        let r = _mm256_and_si256(
            _mm256_sub_epi64(b, _mm256_set1_epi64x(MAX_LEN_MANT)),
            mask14,
        );
        let b_lt_r = _mm256_cmpgt_epi64(r, b); // −1 where b < r
        let a_lt_r = _mm256_cmpgt_epi64(r, a_mid); // −1 where a_mid < r
                                                   // cb = a_hi + (b < r) − (a_mid < r): subtract/add the −1 masks.
        let cb = _mm256_add_epi64(_mm256_sub_epi64(a_hi, b_lt_r), a_lt_r);
        let hi_part = _mm256_sllv_epi64(cb, shift); // count >= 64 → 0
        _mm256_add_epi64(hi_part, _mm256_sllv_epi64(b, e))
    }

    /// [`decode_bases`] specialised to `e_raw == 0` in every lane — the
    /// common case on real heaps, where allocations small enough for a
    /// 12-bit length mantissa (≤ 4 KiB slabs) encode with exponent zero.
    /// With `e = 0` the exponent clamp disappears and every
    /// variable-count shift collapses to an immediate-count one
    /// (`shift = MW = 14`), shortening the decode dependency chain by a
    /// third. The caller guards with a `vptest` of the exponent bits.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Every lane of `hi` must have zero exponent bits
    /// (bits 28..34).
    #[target_feature(enable = "avx2")]
    unsafe fn decode_bases_e0(lo: __m256i, hi: __m256i) -> __m256i {
        let mask14 = _mm256_set1_epi64x(MASK14);
        let b = _mm256_and_si256(_mm256_srli_epi64::<14>(hi), mask14);
        let a_mid = _mm256_and_si256(lo, mask14);
        let a_hi = _mm256_srli_epi64::<14>(lo);
        let r = _mm256_and_si256(
            _mm256_sub_epi64(b, _mm256_set1_epi64x(MAX_LEN_MANT)),
            mask14,
        );
        let b_lt_r = _mm256_cmpgt_epi64(r, b); // −1 where b < r
        let a_lt_r = _mm256_cmpgt_epi64(r, a_mid); // −1 where a_mid < r
        let cb = _mm256_add_epi64(_mm256_sub_epi64(a_hi, b_lt_r), a_lt_r);
        _mm256_add_epi64(_mm256_slli_epi64::<14>(cb), b)
    }

    /// The vector sweep loop. Bit-identical to `kernel_fast` under `NoCost`
    /// (the dispatcher guarantees no cost model is attached here).
    ///
    /// # Safety
    ///
    /// Requires AVX2. All memory access is through slice indexing or
    /// in-bounds raw loads derived from the same indices the scalar kernel
    /// uses.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep(
        data: &mut [u8],
        tags: &mut [u64],
        g0: usize,
        g1: usize,
        shadow: &ShadowMap,
        stats: &mut SweepStats,
    ) {
        // How far ahead (in 64-granule tag words) to pull the next span.
        // One tag word covers 1 KiB of data; 4 words ahead keeps roughly a
        // tag-cache line's worth of future tag state in flight without
        // outrunning the L1 (DESIGN.md §19 discusses the choice).
        const PREFETCH_WORDS: usize = 4;
        let w0 = g0 / 64;
        let w1 = g1.div_ceil(64);
        let zero = _mm256_setzero_si256();
        // Hoisted pieces of the lean painted-bit lookup (phase 3 replays
        // `ShadowMap::painted_bit` without its per-call empty and bounds
        // checks). The dispatcher only enters this path with a painted
        // shadow, so the bit array is never empty and the scalar
        // `is_empty` short-circuit has no counterpart here.
        let (shadow_base, shadow_granules, shadow_bits) = shadow.raw_parts();
        debug_assert!(!shadow_bits.is_empty());
        let mut w = w0;
        while w < w1 {
            // Clean-span bulk skip: compare four tag words against zero at
            // once; the movemask is a 4-bit "lane is clean" summary. A
            // fully clean quad advances four words on one branch. Ragged
            // edge words are legal here: a zero word contributes no work
            // in any kernel, masked or not.
            if w + 4 <= w1 {
                // SAFETY: w + 4 <= w1 <= tags.len(), so the 32-byte load
                // stays inside the tag slice (unaligned load).
                let quad = unsafe { _mm256_loadu_si256(tags.as_ptr().add(w).cast()) };
                let clean = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(quad, zero)));
                if clean == 0xf {
                    if w + 4 < w1 {
                        // SAFETY: in-bounds by the check above; prefetch
                        // faults are suppressed by the ISA anyway.
                        unsafe {
                            _mm_prefetch::<_MM_HINT_T0>(tags.as_ptr().add(w + 4).cast());
                        }
                    }
                    w += 4;
                    continue;
                }
            }
            // Mask the word to the requested granule range (ragged edges),
            // exactly as the scalar kernels do.
            let lo_g = w * 64;
            let mut live = tags[w];
            if lo_g < g0 {
                live &= u64::MAX << (g0 - lo_g);
            }
            if lo_g + 64 > g1 {
                live &= u64::MAX >> (lo_g + 64 - g1);
            }
            if live == 0 {
                w += 1;
                continue;
            }
            // Pull the next tag-word span while this word's candidates
            // decode.
            if w + PREFETCH_WORDS < w1 {
                // SAFETY: index checked in bounds.
                unsafe {
                    _mm_prefetch::<_MM_HINT_T0>(tags.as_ptr().add(w + PREFETCH_WORDS).cast());
                }
            }
            // Prefetch the *entire* 1 KiB data span of the next word (16
            // cache lines). On a dense image every line of the span holds
            // a candidate, and a bit-walk's demand loads expose each miss
            // serially; issuing the whole next span now keeps ~16 misses
            // in flight while this word decodes, which is where the
            // vector tier's dense-image headroom actually comes from
            // (DESIGN.md §19). Wider batches were tried and regressed:
            // gathering several words per phased pass means burstier
            // prefetch (dropped once the fill buffers fill) and a larger
            // working set, both of which cost more than the extra
            // memory-level parallelism buys.
            let next_span = (w + 1) * 64 * 16;
            if next_span + 64 * 16 <= data.len() {
                for line in 0..16 {
                    // SAFETY: span end checked in bounds above.
                    unsafe {
                        _mm_prefetch::<_MM_HINT_T0>(
                            data.as_ptr().add(next_span + line * 64).cast(),
                        );
                    }
                }
            }
            let mut kill = 0u64;
            // The word's candidates are processed in two phases instead
            // of one fused per-candidate loop: decode every base (lane
            // parallel), then run every shadow lookup. Phasing removes
            // the decode -> lookup serialisation, so the out-of-order
            // core sees a word's worth of independent decode chains and
            // a word's worth of independent shadow loads at once
            // (maximum memory-level parallelism per tag word).
            //
            // Phase 1: peel candidate granule offsets out of the live
            // mask four at a time, decoding each quad's bases in one
            // 256-bit lane. Each candidate capability word is one
            // 16-byte unaligned vector load (both halves at once); two
            // inserts and an unpack pair transpose four of them into a
            // lo-halves lane and a hi-halves lane. The unpack
            // interleaves 128-bit lanes, putting decoded lanes in
            // candidate order [0, 2, 1, 3] — rather than permuting the
            // lanes back (a port-5 shuffle on the critical path into the
            // store phase 2 reloads), the *offsets* are recorded in the
            // same interleaved order: phase 2 and the revoke loop only
            // need `grans[k]` and `idxs[k]` paired, not any particular
            // order. What's stored per candidate is not the raw base but
            // the shadow granule it falls in (`(base - shadow_base) /
            // 16`), computed lane-parallel while still in registers.
            let n = live.count_ones() as usize;
            stats.caps_inspected += n as u64;
            let mut idxs = [0u8; 64];
            let mut grans = [0u64; 64];
            let p = data.as_ptr();
            let shadow_base_v = _mm256_set1_epi64x(shadow_base as i64);
            let mut bits = live;
            let mut i = 0usize;
            while i + 4 <= n {
                let i0 = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let i1 = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let i2 = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let i3 = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // SAFETY: each granule g = lo_g + ik < g1 <=
                // data.len() / 16, so the 16 bytes at byte offset g*16
                // are in bounds (no alignment requirement).
                let cap = |g: usize| unsafe { _mm_loadu_si128(p.add((lo_g + g) * 16).cast()) };
                let a = _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(cap(i0)), cap(i1));
                let b = _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(cap(i2)), cap(i3));
                let lo_v = _mm256_unpacklo_epi64(a, b); // [lo0, lo2, lo1, lo3]
                let hi_v = _mm256_unpackhi_epi64(a, b); // [hi0, hi2, hi1, hi3]
                                                        // All-lanes-exponent-zero fast path: one vptest picks the
                                                        // short decode (see decode_bases_e0) — near-universally
                                                        // taken on dense small-allocation heaps, and a predicted
                                                        // branch either way.
                let e_bits = _mm256_set1_epi64x(0x3f << 28);
                // SAFETY: AVX2 (function-level target_feature); the
                // vptest guarantees decode_bases_e0's zero-exponent
                // precondition.
                let bases_v = unsafe {
                    if _mm256_testz_si256(hi_v, e_bits) != 0 {
                        decode_bases_e0(lo_v, hi_v)
                    } else {
                        decode_bases(lo_v, hi_v)
                    }
                };
                // Offsets in the unpack's interleaved lane order.
                idxs[i] = i0 as u8;
                idxs[i + 1] = i2 as u8;
                idxs[i + 2] = i1 as u8;
                idxs[i + 3] = i3 as u8;
                let g_v = _mm256_srli_epi64::<4>(_mm256_sub_epi64(bases_v, shadow_base_v));
                // SAFETY: i + 4 <= n <= 64, destination is in the stack
                // array.
                unsafe { _mm256_storeu_si256(grans.as_mut_ptr().add(i).cast(), g_v) };
                i += 4;
            }
            if i < n {
                // Ragged tail (< 4 candidates): scalar partial decode,
                // same arithmetic as the lanes.
                let (halves, _) = data.as_chunks::<8>();
                while bits != 0 {
                    let g = lo_g + bits.trailing_zeros() as usize;
                    idxs[i] = bits.trailing_zeros() as u8;
                    bits &= bits - 1;
                    let half_lo = u64::from_le_bytes(halves[2 * g]);
                    let half_hi = u64::from_le_bytes(halves[2 * g + 1]);
                    let base = super::CapWord::base_from_halves(half_lo, half_hi);
                    grans[i] = base.wrapping_sub(shadow_base) >> 4;
                    i += 1;
                }
            }
            // Phase 2: shadow lookups — a lean `ShadowMap::painted_bit`
            // from the hoisted raw_parts, dropping the per-call empty
            // check and the bounds check (g < granules ⇒ g/64 in bounds);
            // the granule arithmetic already happened in vector lanes.
            for k in 0..n {
                let g = grans[k];
                if g < shadow_granules {
                    // SAFETY: g < granules ⇒ g/64 < bits.len().
                    let word = unsafe { *shadow_bits.get_unchecked((g >> 6) as usize) };
                    kill |= ((word >> (g & 63)) & 1) << idxs[k];
                }
            }
            if kill != 0 {
                tags[w] &= !kill;
                stats.caps_revoked += u64::from(kill.count_ones());
                let zero128 = _mm_setzero_si128();
                let pm = data.as_mut_ptr();
                let mut bits = kill;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let g = lo_g + b;
                    // SAFETY: g < g1 <= data.len() / 16, one 16-byte
                    // store inside the slice (no alignment requirement).
                    unsafe { _mm_storeu_si128(pm.add(g * 16).cast(), zero128) };
                }
            }
            w += 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use cheri::CapWord;

        #[test]
        fn lane_decode_matches_scalar_on_raw_patterns() {
            if !std::arch::is_x86_feature_detected!("avx2") {
                return;
            }
            let mut x = 0x0123_4567_89ab_cdefu64;
            let mut next = move || {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            for round in 0..10_000 {
                let mut lo = [next(), next(), next(), next()];
                let mut hi = [next(), next(), next(), next()];
                // Hit the exponent-clamp and shift>=64 edges explicitly.
                if round % 7 == 0 {
                    hi[0] |= 0x3f << 28; // e_raw = 63 → clamped to 52
                    hi[1] = (hi[1] & !(0x3f << 28)) | (50 << 28); // shift = 64
                    hi[2] = (hi[2] & !(0x3f << 28)) | (49 << 28); // shift = 63
                    hi[3] &= !(0x3f << 28); // e = 0
                }
                // SAFETY: AVX2 checked above; arrays are 32 bytes.
                let got = unsafe {
                    let lo_v = _mm256_loadu_si256(lo.as_ptr().cast());
                    let hi_v = _mm256_loadu_si256(hi.as_ptr().cast());
                    let mut out = [0u64; 4];
                    _mm256_storeu_si256(out.as_mut_ptr().cast(), decode_bases(lo_v, hi_v));
                    out
                };
                let want = CapWord::bases_from_halves_x4(lo, hi);
                assert_eq!(got, want, "lo={lo:#x?} hi={hi:#x?}");
            }
        }

        #[test]
        fn e0_lane_decode_matches_scalar_on_raw_patterns() {
            if !std::arch::is_x86_feature_detected!("avx2") {
                return;
            }
            let mut x = 0x243f_6a88_85a3_08d3u64;
            let mut next = move || {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            for _ in 0..10_000 {
                let lo = [next(), next(), next(), next()];
                // The e0 path's precondition: exponent bits all zero.
                let hi = [
                    next() & !(0x3f << 28),
                    next() & !(0x3f << 28),
                    next() & !(0x3f << 28),
                    next() & !(0x3f << 28),
                ];
                // SAFETY: AVX2 checked above; arrays are 32 bytes; hi
                // lanes carry zero exponents by construction.
                let got = unsafe {
                    let lo_v = _mm256_loadu_si256(lo.as_ptr().cast());
                    let hi_v = _mm256_loadu_si256(hi.as_ptr().cast());
                    let mut out = [0u64; 4];
                    _mm256_storeu_si256(out.as_mut_ptr().cast(), decode_bases_e0(lo_v, hi_v));
                    out
                };
                let want = CapWord::bases_from_halves_x4(lo, hi);
                assert_eq!(got, want, "lo={lo:#x?} hi={hi:#x?}");
            }
        }
    }
}

/// NEON implementation of [`Kernel::Simd`]: a 128-bit two-word clean-span
/// skip feeding the scalar-batch decode ([`CapWord::bases_from_halves_x4`]),
/// which the compiler can keep lane-parallel on aarch64. There is no
/// stable aarch64 prefetch intrinsic, so this tier relies on the
/// hardware prefetcher the clean-skip's sequential pattern trains.
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod simd_neon {
    use core::arch::aarch64::*;

    use super::SweepStats;
    use crate::ShadowMap;

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sweep(
        data: &mut [u8],
        tags: &mut [u64],
        g0: usize,
        g1: usize,
        shadow: &ShadowMap,
        stats: &mut SweepStats,
    ) {
        let w0 = g0 / 64;
        let w1 = g1.div_ceil(64);
        let mut w = w0;
        while w < w1 {
            if w + 2 <= w1 {
                // SAFETY: two-word load stays inside the tag slice.
                let pair = unsafe { vld1q_u64(tags.as_ptr().add(w)) };
                if vmaxvq_u32(vreinterpretq_u32_u64(pair)) == 0 {
                    w += 2;
                    continue;
                }
            }
            let lo_g = w * 64;
            let mut live = tags[w];
            if lo_g < g0 {
                live &= u64::MAX << (g0 - lo_g);
            }
            if lo_g + 64 > g1 {
                live &= u64::MAX >> (lo_g + 64 - g1);
            }
            if live == 0 {
                w += 1;
                continue;
            }
            let mut kill = 0u64;
            let mut bits = live;
            let (halves, _) = data.as_chunks::<8>();
            while bits != 0 {
                let mut idx = [0usize; 4];
                let mut n = 0;
                while n < 4 && bits != 0 {
                    idx[n] = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    n += 1;
                }
                stats.caps_inspected += n as u64;
                if n == 4 {
                    let at = |k: usize| {
                        let g = lo_g + idx[k];
                        (
                            u64::from_le_bytes(halves[2 * g]),
                            u64::from_le_bytes(halves[2 * g + 1]),
                        )
                    };
                    let (l0, h0) = at(0);
                    let (l1, h1) = at(1);
                    let (l2, h2) = at(2);
                    let (l3, h3) = at(3);
                    let bases =
                        super::CapWord::bases_from_halves_x4([l0, l1, l2, l3], [h0, h1, h2, h3]);
                    for k in 0..4 {
                        kill |= shadow.painted_bit(bases[k]) << idx[k];
                    }
                } else {
                    for &i in &idx[..n] {
                        let g = lo_g + i;
                        let cap_base = super::CapWord::base_from_halves(
                            u64::from_le_bytes(halves[2 * g]),
                            u64::from_le_bytes(halves[2 * g + 1]),
                        );
                        kill |= shadow.painted_bit(cap_base) << i;
                    }
                }
            }
            if kill != 0 {
                tags[w] &= !kill;
                let zero128 = _mm_setzero_si128();
                let pm = data.as_mut_ptr();
                let mut bits = kill;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let g = lo_g + b;
                    // SAFETY: g < g1 <= data.len() / 16, one 16-byte
                    // store inside the slice (no alignment requirement).
                    unsafe { _mm_storeu_si128(pm.add(g * 16).cast(), zero128) };
                    stats.caps_revoked += 1;
                }
            }
            w += 1;
        }
    }
}

/// [`kernel_wide`] across threads: tag words and their 1 KiB data blocks
/// are partitioned disjointly; the shadow map is shared read-only (§3.5).
/// Workers charge no [`SweepCost`] (use a sequential kernel for timed
/// sweeps).
fn kernel_parallel(
    data: &mut [u8],
    tags: &mut [u64],
    g0: usize,
    g1: usize,
    shadow: &ShadowMap,
    threads: usize,
    stats: &mut SweepStats,
) {
    // Partition on tag-word boundaries so each worker owns whole words.
    let w0 = g0 / 64;
    let w1 = g1.div_ceil(64);
    let words = w1 - w0;
    if words == 0 {
        return;
    }
    let per = words.div_ceil(threads);

    // Ragged segment edges are handled by clamping each worker's granule
    // range to [g0, g1].
    let mut remaining_data = &mut data[w0 * 64 * 16..];
    let mut remaining_tags = &mut tags[w0..w1];
    let mut jobs = Vec::new();
    let mut w = w0;
    while w < w1 {
        let take = per.min(w1 - w);
        let (td, rd) = remaining_data.split_at_mut((take * 64 * 16).min(remaining_data.len()));
        let (tt, rt) = remaining_tags.split_at_mut(take);
        remaining_data = rd;
        remaining_tags = rt;
        jobs.push((w, take, td, tt));
        w += take;
    }

    let partials: Vec<SweepStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(wstart, take, td, tt)| {
                scope.spawn(move || {
                    // Worker-local granule window, clamped to the request.
                    let local_g0 = (wstart * 64).max(g0) - wstart * 64;
                    let local_g1 = ((wstart + take) * 64).min(g1) - wstart * 64;
                    let mut local = SweepStats::default();
                    kernel_wide(
                        td,
                        tt,
                        local_g0,
                        local_g1,
                        shadow,
                        (wstart as u64) * 64 * GRANULE_SIZE,
                        &mut crate::engine::NoCost,
                        &mut local,
                    );
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    *stats += SweepStats::merge_parallel(partials);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 18;

    /// Builds a segment with `n` capabilities, half pointing at painted
    /// granules. Returns (memory, shadow, expected revocations).
    fn scenario(n: u64) -> (TaggedMemory, ShadowMap, u64) {
        let mut mem = TaggedMemory::new(HEAP, LEN);
        let mut shadow = ShadowMap::new(HEAP, LEN);
        let mut expect = 0;
        for i in 0..n {
            let obj_base = HEAP + 0x8000 + i * 64;
            let cap = Capability::root_rw(obj_base, 64);
            mem.write_cap(HEAP + i * 16, &cap).unwrap();
            if i % 2 == 0 {
                shadow.paint(obj_base, 64);
                expect += 1;
            }
        }
        (mem, shadow, expect)
    }

    fn all_kernels() -> Vec<Kernel> {
        vec![
            Kernel::Simple,
            Kernel::Unrolled,
            Kernel::Wide,
            Kernel::Parallel { threads: 4 },
            Kernel::Fast,
            Kernel::Simd,
        ]
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Kernel::Simple.name(), "simple");
        assert_eq!(Kernel::Unrolled.name(), "unrolled");
        assert_eq!(Kernel::Wide.name(), "wide");
        assert_eq!(Kernel::Parallel { threads: 4 }.name(), "parallel");
        assert_eq!(Kernel::Fast.name(), "fast");
        assert_eq!(Kernel::Simd.name(), "simd");
    }

    #[test]
    fn simd_matches_fast_on_ragged_ranges() {
        // Partial ranges exercise the ragged-edge masks around the vector
        // clean-span skip; the two kernels must agree bit-for-bit.
        for (start_g, len_g) in [(0u64, 37u64), (3, 61), (5, 400), (64, 256), (70, 130)] {
            let (mut fast_mem, shadow, _) = scenario(300);
            let mut simd_mem = fast_mem.clone();
            let fast = Sweeper::new(Kernel::Fast).sweep_range(
                &mut fast_mem,
                &shadow,
                HEAP + start_g * 16,
                len_g * 16,
            );
            let simd = Sweeper::new(Kernel::Simd).sweep_range(
                &mut simd_mem,
                &shadow,
                HEAP + start_g * 16,
                len_g * 16,
            );
            assert_eq!(fast, simd, "range ({start_g}, {len_g})");
            assert_eq!(fast_mem, simd_mem, "range ({start_g}, {len_g})");
        }
    }

    #[test]
    fn forced_scalar_simd_matches_vector_simd() {
        let (mut vec_mem, shadow, expect) = scenario(333);
        let mut scalar_mem = vec_mem.clone();
        let vec_stats = Sweeper::new(Kernel::Simd).sweep_segment(&mut vec_mem, &shadow);
        force_scalar_kernel(true);
        let scalar_stats = Sweeper::new(Kernel::Simd).sweep_segment(&mut scalar_mem, &shadow);
        force_scalar_kernel(false);
        assert_eq!(vec_stats, scalar_stats);
        assert_eq!(vec_stats.caps_revoked, expect);
        assert_eq!(vec_mem, scalar_mem);
    }

    #[test]
    fn fast_kernel_sweeps_empty_shadow_with_identical_stats() {
        // The C::IS_FREE bulk path must report the same stats the decoding
        // path would: every tagged word inspected, none revoked.
        let (mut mem, _, _) = scenario(100);
        let empty = ShadowMap::new(HEAP, LEN);
        let fast = Sweeper::new(Kernel::Fast).sweep_segment(&mut mem, &empty);
        let (mut mem2, _, _) = scenario(100);
        let wide = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem2, &empty);
        assert_eq!(fast, wide);
        assert_eq!(fast.caps_inspected, 100);
        assert_eq!(fast.caps_revoked, 0);
        assert_eq!(mem, mem2);
    }

    #[test]
    fn stats_addassign_saturates() {
        let mut a = SweepStats {
            bytes_swept: u64::MAX - 1,
            caps_inspected: u64::MAX,
            ..SweepStats::default()
        };
        let b = SweepStats {
            bytes_swept: 100,
            caps_inspected: 7,
            lines_skipped: 3,
            ..SweepStats::default()
        };
        a += b;
        assert_eq!(a.bytes_swept, u64::MAX, "saturates instead of wrapping");
        assert_eq!(a.caps_inspected, u64::MAX);
        assert_eq!(a.lines_skipped, 3);
    }

    #[test]
    fn merge_parallel_sums_work_but_not_plan_counters() {
        let worker = SweepStats {
            segments_swept: 1,
            bytes_swept: 1000,
            caps_inspected: 10,
            caps_revoked: 4,
            regs_revoked: 1,
            pages_skipped: 5,
            lines_skipped: 9,
            chunks_retried: 1,
        };
        let merged = SweepStats::merge_parallel([worker, worker]);
        assert_eq!(merged.bytes_swept, 2000);
        assert_eq!(merged.caps_inspected, 20);
        assert_eq!(merged.caps_revoked, 8);
        assert_eq!(merged.regs_revoked, 2);
        // Retries are work-level: each worker's own retries count.
        assert_eq!(merged.chunks_retried, 2);
        // Plan-level counters are not double-counted across workers.
        assert_eq!(merged.segments_swept, 0);
        assert_eq!(merged.pages_skipped, 0);
        assert_eq!(merged.lines_skipped, 0);
    }

    #[test]
    fn merge_parallel_saturates() {
        let big = SweepStats {
            caps_revoked: u64::MAX / 2 + 1,
            ..SweepStats::default()
        };
        let merged = SweepStats::merge_parallel([big, big, big]);
        assert_eq!(merged.caps_revoked, u64::MAX);
    }

    #[test]
    fn all_kernels_agree_on_revocations() {
        for kernel in all_kernels() {
            let (mut mem, shadow, expect) = scenario(100);
            let stats = Sweeper::new(kernel).sweep_segment(&mut mem, &shadow);
            assert_eq!(stats.caps_inspected, 100, "{kernel:?}");
            assert_eq!(stats.caps_revoked, expect, "{kernel:?}");
            assert_eq!(stats.bytes_swept, LEN);
            // Surviving capabilities: odd indices.
            for i in 0..100u64 {
                let c = mem.read_cap(HEAP + i * 16).unwrap();
                assert_eq!(c.tag(), i % 2 == 1, "{kernel:?} granule {i}");
            }
        }
    }

    #[test]
    fn revoked_words_are_zeroed() {
        let (mut mem, shadow, _) = scenario(10);
        Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        let (word, tag) = mem.read_cap_word(HEAP).unwrap();
        assert!(!tag);
        assert_eq!(
            word.bits(),
            0,
            "paper's loop stores zero over dangling pointers"
        );
    }

    #[test]
    fn untagged_data_is_never_touched() {
        let mut mem = TaggedMemory::new(HEAP, LEN);
        // Plant data that *looks* like a capability to painted memory.
        let fake = Capability::root_rw(HEAP + 0x40, 64);
        mem.write_cap(HEAP, &fake.cleared()).unwrap(); // untagged!
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        for kernel in all_kernels() {
            let stats = Sweeper::new(kernel).sweep_segment(&mut mem, &shadow);
            assert_eq!(stats.caps_inspected, 0);
            assert_eq!(stats.caps_revoked, 0);
        }
        // The data survives (it is not a pointer, just data).
        let (word, _) = mem.read_cap_word(HEAP).unwrap();
        assert_ne!(word.bits(), 0);
    }

    #[test]
    fn interior_pointers_are_revoked_via_base() {
        // A capability whose *address* has wandered past the object still
        // dangles: revocation keys on the base (§3.2 footnote 2).
        let mut mem = TaggedMemory::new(HEAP, LEN);
        let obj = Capability::root_rw(HEAP + 0x100, 64);
        let wandered = obj.incremented(64).unwrap(); // one past the end
        mem.write_cap(HEAP, &wandered).unwrap();
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x100, 64);
        let stats = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        assert_eq!(stats.caps_revoked, 1);
    }

    #[test]
    fn capabilities_to_unpainted_memory_survive() {
        let mut mem = TaggedMemory::new(HEAP, LEN);
        let obj = Capability::root_rw(HEAP + 0x100, 64);
        mem.write_cap(HEAP, &obj).unwrap();
        let shadow = ShadowMap::new(HEAP, LEN);
        let stats = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        assert_eq!(stats.caps_inspected, 1);
        assert_eq!(stats.caps_revoked, 0);
        assert!(mem.read_cap(HEAP).unwrap().tag());
    }

    #[test]
    fn register_file_is_swept() {
        let mut regs = RegisterFile::new();
        regs.set(0, Capability::root_rw(HEAP + 0x40, 64));
        regs.set(1, Capability::root_rw(HEAP + 0x1000, 64));
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        let stats = Sweeper::sweep_registers(&mut regs, &shadow);
        assert_eq!(stats.regs_revoked, 1);
        assert!(!regs.get(0).tag());
        assert!(regs.get(1).tag());
    }

    #[test]
    fn sweep_space_covers_all_root_segments() {
        use tagmem::SegmentKind;
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16)
            .segment(SegmentKind::Stack, 0x7fff_0000, 1 << 16)
            .segment(SegmentKind::Globals, 0x60_0000, 1 << 16)
            .build();
        let obj = Capability::root_rw(HEAP + 0x40, 64);
        // Dangling references scattered across all segments + a register.
        space.store_cap(HEAP + 0x1000, &obj).unwrap();
        space.store_cap(0x7fff_0100, &obj).unwrap();
        space.store_cap(0x60_0040, &obj).unwrap();
        space.registers_mut().set(5, obj);
        let mut shadow = ShadowMap::new(HEAP, 1 << 16);
        shadow.paint(HEAP + 0x40, 64);
        let stats = Sweeper::new(Kernel::Wide).sweep_space(&mut space, &shadow);
        assert_eq!(stats.caps_revoked, 4);
        assert_eq!(stats.segments_swept, 3);
        assert_eq!(space.tag_count(), 0);
    }

    #[test]
    fn capdirty_skipping_finds_everything_and_recleans() {
        use tagmem::SegmentKind;
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16) // 16 pages
            .build();
        let obj = Capability::root_rw(HEAP + 0x40, 64);
        space.store_cap(HEAP + 0x2000, &obj).unwrap();
        // Overwrite with data: page stays CapDirty (false positive).
        space.store_cap(HEAP + 0x5000, &obj).unwrap();
        space.store_u64(HEAP + 0x5000, 0).unwrap();
        let mut shadow = ShadowMap::new(HEAP, 1 << 16);
        shadow.paint(HEAP + 0x40, 64);
        let stats = Sweeper::new(Kernel::Wide).sweep_space_skipping(&mut space, &shadow);
        assert_eq!(stats.caps_revoked, 1);
        assert_eq!(stats.pages_skipped, 14, "14 never-dirty pages skipped");
        // The false-positive page was re-cleaned.
        assert!(!space.page_table().is_cap_dirty(HEAP + 0x5000));
        // And the genuinely swept page stays dirty (it held a cap, now
        // revoked — next sweep may re-clean it).
        assert!(space.page_table().is_cap_dirty(HEAP + 0x2000));
    }

    #[test]
    fn skipping_sweep_equals_full_sweep() {
        use tagmem::SegmentKind;
        for seed in 0..5u64 {
            let build = || {
                let mut space = AddressSpace::builder()
                    .segment(SegmentKind::Heap, HEAP, 1 << 16)
                    .build();
                let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                for _ in 0..40 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let slot = HEAP + (x >> 20) % ((1 << 16) - 16) / 16 * 16;
                    let obj = HEAP + ((x >> 40) % 4096) * 16;
                    let cap = Capability::root_rw(obj, 16);
                    space.store_cap(slot, &cap).unwrap();
                }
                space
            };
            let mut shadow = ShadowMap::new(HEAP, 1 << 16);
            for g in 0..4096u64 {
                if g % 3 == 0 {
                    shadow.paint(HEAP + g * 16, 16);
                }
            }
            let mut full = build();
            let mut skip = build();
            let a = Sweeper::new(Kernel::Wide).sweep_space(&mut full, &shadow);
            let b = Sweeper::new(Kernel::Wide).sweep_space_skipping(&mut skip, &shadow);
            assert_eq!(a.caps_revoked, b.caps_revoked, "seed {seed}");
            assert_eq!(full.tag_count(), skip.tag_count(), "seed {seed}");
        }
    }

    #[test]
    fn parallel_kernel_handles_odd_partitions() {
        for threads in [1, 2, 3, 7, 16] {
            let (mut mem, shadow, expect) = scenario(333);
            let stats = Sweeper::new(Kernel::Parallel { threads }).sweep_segment(&mut mem, &shadow);
            assert_eq!(stats.caps_revoked, expect, "threads={threads}");
        }
    }

    #[test]
    fn sweep_range_respects_bounds() {
        let (mut mem, shadow, _) = scenario(100);
        // Sweep only the first 32 granules (two tag words): 16 caps live
        // there (i = 0..32 at 16-byte spacing → granules 0..32).
        let stats = Sweeper::new(Kernel::Wide).sweep_range(&mut mem, &shadow, HEAP, 32 * 16);
        assert_eq!(stats.caps_inspected, 32);
        // Capabilities outside the range are untouched even if dangling:
        // granule 40 holds a cap to a painted object (i=40 is even).
        assert!(mem.read_cap(HEAP + 40 * 16).unwrap().tag());
        assert_eq!(stats.bytes_swept, 32 * 16);
    }
}

#[cfg(test)]
mod line_skip_tests {
    use super::*;
    use cheri::Capability;
    use tagmem::SegmentKind;

    const HEAP: u64 = 0x1000_0000;

    fn seeded_space() -> (AddressSpace, ShadowMap) {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16)
            .build();
        let doomed = Capability::root_rw(HEAP + 0x40, 64);
        let live = Capability::root_rw(HEAP + 0x200, 64);
        space.store_cap(HEAP + 0x1000, &doomed).unwrap();
        space.store_cap(HEAP + 0x1080, &live).unwrap(); // next line, same page
        space.store_cap(HEAP + 0x7000, &doomed).unwrap(); // other page
        let mut shadow = ShadowMap::new(HEAP, 1 << 16);
        shadow.paint(HEAP + 0x40, 64);
        (space, shadow)
    }

    #[test]
    fn line_skipping_agrees_with_full_sweep() {
        let (mut a, shadow) = seeded_space();
        let (mut b, _) = seeded_space();
        let full = Sweeper::new(Kernel::Wide).sweep_space(&mut a, &shadow);
        let skip = Sweeper::new(Kernel::Wide).sweep_space_skipping_lines(&mut b, &shadow);
        assert_eq!(full.caps_revoked, skip.caps_revoked);
        assert_eq!(a.tag_count(), b.tag_count());
        assert_eq!(skip.caps_revoked, 2);
    }

    #[test]
    fn line_skipping_skips_both_granularities() {
        let (mut space, shadow) = seeded_space();
        let stats = Sweeper::new(Kernel::Wide).sweep_space_skipping_lines(&mut space, &shadow);
        // 16 pages total, 2 dirty, 14 skipped at page level.
        assert_eq!(stats.pages_skipped, 14);
        // Dirty pages hold 2×32 = 64 lines; only 3 hold tags.
        assert_eq!(stats.lines_skipped, 61);
        // Bytes actually walked: three lines.
        assert_eq!(stats.bytes_swept, 3 * tagmem::LINE_SIZE);
    }

    #[test]
    fn line_skipping_recleans_false_positive_pages() {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 16)
            .build();
        let cap = Capability::root_rw(HEAP + 0x40, 64);
        space.store_cap(HEAP + 0x2000, &cap).unwrap();
        space.store_u64(HEAP + 0x2000, 0).unwrap(); // tag gone, page still dirty
        let shadow = ShadowMap::new(HEAP, 1 << 16);
        Sweeper::new(Kernel::Wide).sweep_space_skipping_lines(&mut space, &shadow);
        assert!(!space.page_table().is_cap_dirty(HEAP + 0x2000));
    }
}
