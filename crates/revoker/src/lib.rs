//! Revocation machinery: the shadow map and the sweeping procedure
//! (paper §3.2–§3.5).
//!
//! CHERIvoke revokes dangling capabilities by:
//!
//! 1. **Painting** the quarantined allocation granules into a
//!    [`ShadowMap`] — one bit per 16-byte granule, 1/128 of the heap —
//!    using wide aligned stores where possible (§5.2).
//! 2. **Sweeping** every segment that can hold capabilities (heap, stack,
//!    globals, register file): each tagged word's *base* indexes the shadow
//!    map; a painted base means the capability dangles and its tag is
//!    cleared (§3.3's inner loop).
//! 3. Optionally skipping work with the paper's two hardware assists:
//!    **PTE CapDirty** bits skip whole capability-free pages and
//!    **CLoadTags** skips capability-free cache lines (§3.4) — see
//!    [`SweepPlan`] and [`timed`].
//!
//! Sweep kernels come in the same flavours the paper benchmarks in
//! Figure 7 ([`Kernel::Simple`], [`Kernel::Unrolled`], [`Kernel::Wide`])
//! plus a thread-parallel variant ([`Kernel::Parallel`]) exploiting the
//! embarrassing parallelism of §3.5.
//!
//! All sweeping runs through the [`engine`] module's [`SweepEngine`]: a
//! composition of a [`CapSource`] (what to walk), a [`GranuleFilter`]
//! (what to skip), and a [`RevokeKernel`] (the inner loop).
//! [`ParallelSweepEngine`] executes the identical plan across worker
//! threads. [`Sweeper`] remains as a thin facade over the common
//! compositions.
//!
//! # Example
//!
//! ```
//! use cheri::Capability;
//! use revoker::{CapDirtyPages, Kernel, ShadowMap, SpaceSource, SweepEngine};
//! use tagmem::{AddressSpace, SegmentKind};
//!
//! # fn main() -> Result<(), tagmem::MemError> {
//! let heap_base = 0x1000_0000u64;
//! let mut space = AddressSpace::builder()
//!     .segment(SegmentKind::Heap, heap_base, 1 << 20)
//!     .build();
//!
//! // The program holds a capability to a (soon-dangling) object.
//! let obj = Capability::root_rw(heap_base + 0x40, 64);
//! space.store_cap(heap_base + 0x1000, &obj)?;
//!
//! // The allocator quarantines the object and paints its granules.
//! let mut shadow = ShadowMap::new(heap_base, 1 << 20);
//! shadow.paint(heap_base + 0x40, 64);
//!
//! // One sweep later the stored capability is revoked: compose the root
//! // set (segments + registers), the PTE CapDirty page filter (§3.4.2),
//! // and a kernel, then sweep.
//! let (source, page_table) = SpaceSource::split(&mut space);
//! let stats = SweepEngine::new(Kernel::Wide).sweep(
//!     source,
//!     CapDirtyPages::new(page_table),
//!     &shadow,
//! );
//! assert_eq!(stats.caps_revoked, 1);
//! assert!(!space.load_cap(heap_base + 0x1000)?.tag());
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod backend;
pub mod conservative;
pub mod engine;
pub mod obs;
mod plan;
mod shadow;
mod sweep;
pub mod timed;

pub use audit::{audit_dump, AuditReport, AuditViolation};
pub use backend::{
    backend_from_env, parse_backend, BackendFilter, BackendKind, ColoredBackend,
    HierarchicalBackend, RevocationBackend, StockBackend, MAX_QUARANTINE_BINS,
};
pub use engine::{
    fast_kernel_from_env, kernel_from_env, line_spans, page_spans, parse_fast_kernel, parse_kernel,
    parse_workers, sweep_register_file, workers_from_env, CLoadTagsLines, CapDirtyPages, CapSource,
    DirtyPageList, DumpSource, EveryLine, FilterGranularity, GranuleFilter, IdealLines, NoCost,
    NoFilter, ParallelSweepEngine, RangeSource, RegisterSource, RevokeKernel, SegmentSource,
    SpaceSource, SweepCost, SweepEngine, SweepScratch, TagProbe, MAX_SWEEP_WORKERS,
};
/// Deterministic fault injection for chaos testing the sweep machinery
/// (re-export of the `faultinject` crate; see its docs for plan syntax).
pub use faultinject as fault;
pub use obs::{SweepTelemetry, TelemetryCost};
pub use plan::{poisoned_subspans, SkipMode, SweepPlan};
pub use shadow::ShadowMap;
#[doc(hidden)]
pub use sweep::force_scalar_kernel;
pub use sweep::{Kernel, SweepStats, Sweeper};
