//! The revocation shadow map (paper §3.2).

use tagmem::GRANULE_SIZE;

/// Granules covered by one shadow word (1 KiB of heap). One bit of the
/// hierarchical summary covers one such word; a whole summary word covers
/// 64 × 64 granules = 4 MiB of heap.
const WORD_GRANULES: u64 = 64;

/// One bit per 16-byte allocation granule: set means "references to this
/// granule are to be revoked in the next sweep".
///
/// The map covers the heap only, at a fixed transform from the heap base
/// (§5.2 maps the shadow at a fixed offset from each allocation so lookup
/// is a shift and an add). It occupies 1/128 of the heap — "less than 1% of
/// the heap" (§3.2).
///
/// Painting is optimised like the paper's: interior runs of whole 64-bit
/// words are stored directly; only the ragged ends manipulate single bits.
///
/// # Examples
///
/// ```
/// use revoker::ShadowMap;
///
/// let mut shadow = ShadowMap::new(0x1000_0000, 1 << 20);
/// shadow.paint(0x1000_0040, 64);
/// assert!(shadow.is_painted(0x1000_0040));
/// assert!(shadow.is_painted(0x1000_0070));
/// assert!(!shadow.is_painted(0x1000_0080));
/// assert_eq!(shadow.painted_bytes(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowMap {
    heap_base: u64,
    granules: u64,
    bits: Vec<u64>,
    /// Hierarchical summary: bit `i` is set iff `bits[i] != 0`. One
    /// summary word covers 64 shadow words = 4 MiB of heap, so a sweep of
    /// a mostly-clean heap falls through in O(heap / 4 MiB) compares.
    summary: Vec<u64>,
    painted_granules: u64,
}

impl ShadowMap {
    /// Creates an all-clear shadow map covering `[heap_base, heap_base +
    /// heap_len)`.
    ///
    /// # Panics
    ///
    /// Panics unless base and length are 16-byte aligned.
    pub fn new(heap_base: u64, heap_len: u64) -> ShadowMap {
        assert_eq!(
            heap_base % GRANULE_SIZE,
            0,
            "heap base must be granule-aligned"
        );
        assert_eq!(
            heap_len % GRANULE_SIZE,
            0,
            "heap length must be granule-aligned"
        );
        let granules = heap_len / GRANULE_SIZE;
        let words = (granules as usize).div_ceil(64);
        ShadowMap {
            heap_base,
            granules,
            bits: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            painted_granules: 0,
        }
    }

    /// The heap base this map shadows.
    #[inline]
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Bytes of heap covered.
    #[inline]
    pub fn covered_bytes(&self) -> u64 {
        self.granules * GRANULE_SIZE
    }

    /// Size of the shadow map itself in bytes (1/128 of the heap).
    pub fn shadow_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    #[inline]
    fn granule_of(&self, addr: u64) -> Option<u64> {
        if addr < self.heap_base {
            return None;
        }
        let g = (addr - self.heap_base) / GRANULE_SIZE;
        (g < self.granules).then_some(g)
    }

    /// Paints `[addr, addr + len)` for revocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is not granule-aligned or leaves the heap — the
    /// allocator only ever paints whole quarantined chunks, so anything
    /// else is a bookkeeping bug.
    pub fn paint(&mut self, addr: u64, len: u64) {
        self.run(addr, len, true);
    }

    /// Clears `[addr, addr + len)` after the sweep (quarantine drain).
    ///
    /// # Panics
    ///
    /// As [`ShadowMap::paint`].
    pub fn clear(&mut self, addr: u64, len: u64) {
        self.run(addr, len, false);
    }

    /// Paints one bit at a time, without the wide-store fast path — the
    /// un-optimised painting loop, kept for the ablation study of the
    /// §5.2 optimisation ("byte, half-word, word, and double-word store
    /// instructions when possible, rather than setting individual bits").
    ///
    /// # Panics
    ///
    /// As [`ShadowMap::paint`].
    pub fn paint_bitwise(&mut self, addr: u64, len: u64) {
        assert_eq!(addr % GRANULE_SIZE, 0, "unaligned shadow paint");
        assert_eq!(len % GRANULE_SIZE, 0, "unaligned shadow paint length");
        if len == 0 {
            return;
        }
        let first = self.granule_of(addr).expect("paint outside shadowed heap");
        let last = self
            .granule_of(addr + len - GRANULE_SIZE)
            .expect("paint runs past shadowed heap");
        for g in first..=last {
            self.put(g, true);
        }
    }

    fn run(&mut self, addr: u64, len: u64, set: bool) {
        assert_eq!(addr % GRANULE_SIZE, 0, "unaligned shadow paint");
        assert_eq!(len % GRANULE_SIZE, 0, "unaligned shadow paint length");
        if len == 0 {
            return;
        }
        let first = self.granule_of(addr).expect("paint outside shadowed heap");
        let last = self
            .granule_of(addr + len - GRANULE_SIZE)
            .expect("paint runs past shadowed heap");

        let mut g = first;
        // Ragged head: bits up to the next word boundary.
        while g <= last && !g.is_multiple_of(64) {
            self.put(g, set);
            g += 1;
        }
        // Whole-word body: the paper's wide-store optimisation (§5.2).
        while g + 63 <= last {
            let w = (g / 64) as usize;
            let old = self.bits[w];
            if set {
                // Under the strict paint/clear contract (each granule is
                // painted exactly once per quarantine generation) a
                // whole-word paint always lands on a clean word; anything
                // else means `painted_granules` was about to drift.
                debug_assert_eq!(old, 0, "repainting word {w}: already-painted granules");
                self.painted_granules += u64::from(old.count_zeros());
                self.bits[w] = u64::MAX;
                self.summary[w / 64] |= 1 << (w % 64);
            } else {
                debug_assert_eq!(old, u64::MAX, "clearing word {w}: already-clean granules");
                self.painted_granules -= u64::from(old.count_ones());
                self.bits[w] = 0;
                self.summary[w / 64] &= !(1 << (w % 64));
            }
            g += 64;
        }
        // Ragged tail.
        while g <= last {
            self.put(g, set);
            g += 1;
        }
    }

    #[inline]
    fn put(&mut self, g: u64, set: bool) {
        let w = (g / 64) as usize;
        let mask = 1u64 << (g % 64);
        let was = self.bits[w] & mask != 0;
        if set {
            debug_assert!(!was, "repainting already-painted granule {g}");
            if !was {
                self.bits[w] |= mask;
                self.summary[w / 64] |= 1 << (w % 64);
                self.painted_granules += 1;
            }
        } else {
            debug_assert!(was, "clearing already-clean granule {g}");
            if was {
                self.bits[w] &= !mask;
                if self.bits[w] == 0 {
                    self.summary[w / 64] &= !(1 << (w % 64));
                }
                self.painted_granules -= 1;
            }
        }
    }

    /// The sweep's hot lookup: is the granule containing `addr` painted?
    /// Addresses outside the shadowed heap return `false` (capabilities to
    /// the stack or globals are never revoked by a heap sweep).
    #[inline]
    pub fn is_painted(&self, addr: u64) -> bool {
        match self.granule_of(addr) {
            Some(g) => self.bits[(g / 64) as usize] >> (g % 64) & 1 == 1,
            None => false,
        }
    }

    /// The whole shadow **word** covering `addr`'s 64-granule group (1 KiB
    /// of heap): bit `i` covers granule `group_start + i`. Zero means no
    /// granule in the window is painted, so a word-at-a-time sweep kernel
    /// can discharge the entire window with one compare. Addresses outside
    /// the shadowed heap return 0 (never painted).
    #[inline]
    pub fn word(&self, addr: u64) -> u64 {
        match self.granule_of(addr) {
            Some(g) => self.bits[(g / WORD_GRANULES) as usize],
            None => 0,
        }
    }

    /// The raw pieces of the [`ShadowMap::painted_bit`] computation —
    /// `(heap_base, granules, bit words)` — for the vector sweep kernel,
    /// which replays the same lookup with the per-call empty and bounds
    /// checks hoisted out of its inner loop.
    pub(crate) fn raw_parts(&self) -> (u64, u64, &[u64]) {
        (self.heap_base, self.granules, &self.bits)
    }

    /// [`ShadowMap::is_painted`] as a branch-free 0/1 — the sweep kernels'
    /// inner-loop form. Out-of-coverage addresses (including anything
    /// below the heap base, via the wrapping subtraction) select word 0
    /// masked to zero, so the load always hits the map and the result is
    /// computed with compares and masks only — no data-dependent branch
    /// for the predictor to miss on random pointees.
    #[inline]
    pub fn painted_bit(&self, addr: u64) -> u64 {
        let g = addr.wrapping_sub(self.heap_base) / GRANULE_SIZE;
        let in_range = g < self.granules;
        // `granules > 0` whenever `in_range` can be true, so index 0 is
        // always loadable when it matters; an empty map short-circuits.
        if self.bits.is_empty() {
            return 0;
        }
        let idx = if in_range {
            (g / WORD_GRANULES) as usize
        } else {
            0
        };
        (self.bits[idx] >> (g % WORD_GRANULES)) & 1 & u64::from(in_range)
    }

    /// `true` if any granule of `[addr, addr + len)` is painted. Portions
    /// of the range outside the shadowed heap count as unpainted. Large
    /// mostly-clean ranges are answered through the hierarchical summary
    /// in O(len / 4 MiB).
    pub fn any_painted_in(&self, addr: u64, len: u64) -> bool {
        if len == 0 || self.painted_granules == 0 {
            return false;
        }
        let end = addr.saturating_add(len);
        let lo = addr.max(self.heap_base);
        let hi = end.min(self.heap_base + self.covered_bytes());
        if lo >= hi {
            return false;
        }
        let g0 = (lo - self.heap_base) / GRANULE_SIZE;
        let g1 = (hi - self.heap_base).div_ceil(GRANULE_SIZE);
        let w0 = (g0 / WORD_GRANULES) as usize;
        let w1 = ((g1 - 1) / WORD_GRANULES) as usize;
        if w0 == w1 {
            let mask = (u64::MAX << (g0 % 64)) & (u64::MAX >> ((64 - g1 % 64) % 64));
            return self.bits[w0] & mask != 0;
        }
        if self.bits[w0] & (u64::MAX << (g0 % 64)) != 0 {
            return true;
        }
        let tail_mask = u64::MAX >> ((64 - g1 % 64) % 64);
        if self.bits[w1] & tail_mask != 0 {
            return true;
        }
        // Whole interior words, skipping 64 (4 MiB of heap) at a time
        // wherever the summary word is clean.
        let mut w = w0 + 1;
        while w < w1 {
            let s = w / 64;
            if self.summary[s] == 0 {
                w = (s + 1) * 64;
                continue;
            }
            if self.bits[w] != 0 {
                return true;
            }
            w += 1;
        }
        false
    }

    /// The hierarchical summary words: bit `i` of word `i / 64` is set iff
    /// shadow word `i` holds any paint. One summary bit covers 1 KiB of
    /// heap ([`ShadowMap::word`]); one summary word covers 4 MiB.
    #[inline]
    pub fn summary_words(&self) -> &[u64] {
        &self.summary
    }

    /// Total painted bytes.
    pub fn painted_bytes(&self) -> u64 {
        self.painted_granules * GRANULE_SIZE
    }

    /// The union of [`cheri::color_of`] colors over every painted granule —
    /// the **revoked color set** the colored backend sweeps against. Walks
    /// the hierarchical summary, so a mostly-clean map answers in
    /// O(heap / 4 MiB); saturating (all colors painted) returns early.
    pub fn painted_color_mask(&self) -> u8 {
        let mut mask = 0u8;
        self.for_each_painted_window(|window_base, window_len| {
            mask |= cheri::color_mask_of_range(window_base, window_len);
            mask == u8::MAX
        });
        mask
    }

    /// The union of [`cheri::poison_bit`] coarse-region bits over every
    /// painted granule — the **poison map** the hierarchical backend
    /// consults before any fine sweep work. Same cost shape as
    /// [`ShadowMap::painted_color_mask`].
    pub fn painted_poison_mask(&self) -> u64 {
        let mut mask = 0u64;
        self.for_each_painted_window(|window_base, window_len| {
            mask |= cheri::poison_mask_of_range(window_base, window_len);
            mask == u64::MAX
        });
        mask
    }

    /// Visits the 1 KiB heap window of every non-zero shadow word, passing
    /// `(window_base, window_len)`; the visitor returns `true` to stop
    /// early (mask saturated).
    fn for_each_painted_window(&self, mut visit: impl FnMut(u64, u64) -> bool) {
        if self.painted_granules == 0 {
            return;
        }
        let window = WORD_GRANULES * GRANULE_SIZE;
        for (s, &summary) in self.summary.iter().enumerate() {
            let mut pending = summary;
            while pending != 0 {
                let bit = pending.trailing_zeros() as u64;
                pending &= pending - 1;
                let w = s as u64 * 64 + bit;
                let base = self.heap_base + w * window;
                let len = window.min(self.covered_bytes() - w * window);
                if visit(base, len) {
                    return;
                }
            }
        }
    }

    /// Clears the entire map (constant-time bulk store).
    pub fn clear_all(&mut self) {
        self.bits.fill(0);
        self.summary.fill(0);
        self.painted_granules = 0;
    }

    /// Raw bitmap view (for the timed sweep's shadow-access modelling).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// The simulated address of the shadow byte covering `addr`, given the
    /// fixed transform `shadow_base + (addr - heap_base) / 128` (§5.2) —
    /// used by the cache model to charge shadow-lookup accesses.
    #[inline]
    pub fn shadow_addr(&self, shadow_base: u64, addr: u64) -> u64 {
        shadow_base + (addr.saturating_sub(self.heap_base)) / (GRANULE_SIZE * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 20;

    #[test]
    fn paint_and_clear_roundtrip() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x100, 0x200);
        assert_eq!(s.painted_bytes(), 0x200);
        assert!(s.is_painted(BASE + 0x100));
        assert!(s.is_painted(BASE + 0x2f0));
        assert!(!s.is_painted(BASE + 0x300));
        s.clear(BASE + 0x100, 0x200);
        assert_eq!(s.painted_bytes(), 0);
    }

    #[test]
    fn interior_addresses_hit_their_granule() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x40, 16);
        // Any byte inside the granule matches.
        assert!(s.is_painted(BASE + 0x4f));
        assert!(!s.is_painted(BASE + 0x50));
        assert!(!s.is_painted(BASE + 0x3f));
    }

    #[test]
    fn large_runs_use_word_stores_and_count_correctly() {
        let mut s = ShadowMap::new(BASE, LEN);
        // 100 KiB starting at a ragged offset.
        s.paint(BASE + 0x30, 100 * 1024 + 16);
        assert_eq!(s.painted_bytes(), 100 * 1024 + 16);
        s.clear_all();
        assert_eq!(s.painted_bytes(), 0);
    }

    #[test]
    fn clear_all_and_repaint_roundtrips_painted_bytes() {
        // The bookkeeping-drift guard: after a bulk clear, repainting the
        // identical range set must reproduce the identical byte count and
        // bitmap — `painted_granules` cannot diverge from the bits.
        let mut s = ShadowMap::new(BASE, LEN);
        let ranges = [
            (BASE + 0x30, 100 * 1024 + 16),
            (BASE + 0x2_0000, 0x40),
            (BASE + LEN - 0x1000, 0x1000),
        ];
        for &(a, l) in &ranges {
            s.paint(a, l);
        }
        let bytes = s.painted_bytes();
        let words = s.as_words().to_vec();
        let summary = s.summary_words().to_vec();
        s.clear_all();
        assert_eq!(s.painted_bytes(), 0);
        assert!(s.summary_words().iter().all(|&w| w == 0));
        for &(a, l) in &ranges {
            s.paint(a, l);
        }
        assert_eq!(s.painted_bytes(), bytes);
        assert_eq!(s.as_words(), &words[..]);
        assert_eq!(s.summary_words(), &summary[..]);
    }

    #[test]
    #[should_panic(expected = "repainting")]
    #[cfg(debug_assertions)]
    fn repainting_a_painted_granule_is_a_bug() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x40, 16);
        s.paint(BASE + 0x40, 16);
    }

    #[test]
    #[should_panic(expected = "clearing already-clean")]
    #[cfg(debug_assertions)]
    fn clearing_a_clean_granule_is_a_bug() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.clear(BASE + 0x40, 16);
    }

    #[test]
    fn word_exposes_the_window_mask() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x40, 16); // granule 4 of word 0
        assert_eq!(s.word(BASE), 1 << 4);
        assert_eq!(s.word(BASE + 0x3ff), 1 << 4); // same 1 KiB window
        assert_eq!(s.word(BASE + 0x400), 0); // next window is clean
        assert_eq!(s.word(BASE - 16), 0); // outside: never painted
        assert_eq!(s.word(BASE + LEN), 0);
    }

    #[test]
    fn painted_bit_matches_is_painted() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x400, 16);
        s.paint(BASE + 0x8230, 0x20);
        s.paint(BASE + LEN - 16, 16);
        // In-range addresses (granule-aligned and interior bytes), the
        // heap edges, and out-of-range addresses on both sides — the
        // branch-free form must agree with the boolean everywhere.
        for addr in [
            BASE,
            BASE + 0x400,
            BASE + 0x407,
            BASE + 0x410,
            BASE + 0x8230,
            BASE + 0x824f,
            BASE + 0x8250,
            BASE + LEN - 16,
            BASE + LEN - 1,
            BASE + LEN,
            BASE - 16,
            0,
            u64::MAX,
        ] {
            assert_eq!(
                s.painted_bit(addr),
                u64::from(s.is_painted(addr)),
                "addr {addr:#x}"
            );
        }
        // An empty map never reports painted, in or out of range.
        let empty = ShadowMap::new(BASE, 0);
        assert_eq!(empty.painted_bit(BASE), 0);
        assert_eq!(empty.painted_bit(BASE - 16), 0);
    }

    #[test]
    fn any_painted_in_matches_per_granule_scan() {
        let mut s = ShadowMap::new(BASE, LEN);
        // Paint at a word boundary, mid-word, and near the heap end.
        s.paint(BASE + 0x400, 16);
        s.paint(BASE + 0x8230, 0x20);
        s.paint(BASE + LEN - 16, 16);
        let reference = |addr: u64, len: u64| {
            (0..len / GRANULE_SIZE).any(|i| s.is_painted(addr + i * GRANULE_SIZE))
        };
        for (addr, len) in [
            (BASE, 0x400),            // clean prefix
            (BASE, 0x410),            // just reaches the first paint
            (BASE + 0x410, 0x7e20),   // between paints
            (BASE + 0x8000, 0x1000),  // covers the mid-word paint
            (BASE, LEN),              // everything
            (BASE + LEN - 32, 32),    // ragged tail at heap end
            (BASE + 0x10_0000, 0x40), // clean interior
        ] {
            assert_eq!(
                s.any_painted_in(addr, len),
                reference(addr, len),
                "range {addr:#x}+{len:#x}"
            );
        }
        // Zero-length and fully-outside ranges are never painted.
        assert!(!s.any_painted_in(BASE, 0));
        assert!(!s.any_painted_in(0x100, 0x100));
        assert!(!s.any_painted_in(BASE + LEN, 0x1000));
    }

    #[test]
    fn summary_tracks_nonzero_words() {
        let mut s = ShadowMap::new(BASE, LEN);
        assert!(s.summary_words().iter().all(|&w| w == 0));
        s.paint(BASE + 0x400, 16); // shadow word 1
        assert_eq!(s.summary_words()[0], 1 << 1);
        // A wide paint covering whole words sets their summary bits too.
        s.paint(BASE + 0x1_0000, 0x1_0000); // granules 4096..8192, words 64..128
        assert_eq!(s.summary_words()[1], u64::MAX);
        s.clear(BASE + 0x1_0000, 0x1_0000);
        assert_eq!(s.summary_words()[1], 0);
        s.clear(BASE + 0x400, 16);
        assert!(s.summary_words().iter().all(|&w| w == 0));
    }

    #[test]
    fn painted_masks_summarise_painted_ranges() {
        let mut s = ShadowMap::new(BASE, 32 * 1024 * 1024);
        // Clean map: nothing revoked, nothing poisoned.
        assert_eq!(s.painted_color_mask(), 0);
        assert_eq!(s.painted_poison_mask(), 0);

        // One paint inside the first 64 KiB stripe / first 1 MiB region.
        s.paint(BASE + 0x40, 0x40);
        assert_eq!(s.painted_color_mask(), 1 << cheri::color_of(BASE));
        assert_eq!(s.painted_poison_mask(), cheri::poison_bit(BASE));

        // Paint in a different stripe and a different coarse region.
        let far = BASE + 3 * cheri::COLOR_REGION_BYTES + 5 * cheri::POISON_REGION_BYTES;
        s.paint(far, 16);
        assert_eq!(
            s.painted_color_mask(),
            (1 << cheri::color_of(BASE)) | (1 << cheri::color_of(far))
        );
        assert_eq!(
            s.painted_poison_mask(),
            cheri::poison_bit(BASE) | cheri::poison_bit(far)
        );

        // The masks are sound: every painted granule's color/region bit is
        // present.
        for addr in [BASE + 0x40, BASE + 0x70, far] {
            assert_ne!(s.painted_color_mask() & (1 << cheri::color_of(addr)), 0);
            assert_ne!(s.painted_poison_mask() & cheri::poison_bit(addr), 0);
        }

        // Painting everything saturates both masks (the map spans all 8
        // color stripes and more than one aliasing wrap of regions).
        let mut full = ShadowMap::new(BASE, 32 * 1024 * 1024);
        full.paint(BASE, 32 * 1024 * 1024);
        assert_eq!(full.painted_color_mask(), u8::MAX);
        assert_ne!(full.painted_poison_mask(), 0);
        // Clearing returns the masks to empty.
        full.clear_all();
        assert_eq!(full.painted_color_mask(), 0);
        assert_eq!(full.painted_poison_mask(), 0);
    }

    #[test]
    fn painted_masks_cover_ragged_heap_tails() {
        // A map whose last shadow word is partial: the window length must
        // clamp to the covered bytes, not run past the heap.
        let mut s = ShadowMap::new(BASE, 1024 + 256);
        s.paint(BASE + 1024, 256); // the ragged tail window
        assert_eq!(s.painted_color_mask(), 1 << cheri::color_of(BASE + 1024));
        assert_eq!(s.painted_poison_mask(), cheri::poison_bit(BASE + 1024));
    }

    #[test]
    fn outside_addresses_never_painted() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE, LEN);
        assert!(!s.is_painted(BASE - 16));
        assert!(!s.is_painted(BASE + LEN));
        assert!(!s.is_painted(0));
        assert!(!s.is_painted(!0xf)); // the top granule-aligned address
    }

    #[test]
    fn shadow_is_1_128th_of_heap() {
        let s = ShadowMap::new(BASE, LEN);
        assert_eq!(s.shadow_bytes(), LEN / 128);
        assert_eq!(s.covered_bytes(), LEN);
    }

    #[test]
    fn shadow_addr_transform() {
        let s = ShadowMap::new(BASE, LEN);
        let sb = 0x7000_0000;
        assert_eq!(s.shadow_addr(sb, BASE), sb);
        assert_eq!(s.shadow_addr(sb, BASE + 128), sb + 1);
        assert_eq!(s.shadow_addr(sb, BASE + 4096), sb + 32);
    }

    #[test]
    #[should_panic(expected = "outside shadowed heap")]
    fn painting_outside_heap_panics() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE - 0x100, 16);
    }

    #[test]
    #[should_panic(expected = "runs past")]
    fn painting_past_end_panics() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + LEN - 16, 32);
    }

    #[test]
    fn zero_length_paint_is_noop() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE, 0);
        assert_eq!(s.painted_bytes(), 0);
    }
}
