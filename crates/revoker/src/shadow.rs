//! The revocation shadow map (paper §3.2).

use tagmem::GRANULE_SIZE;

/// One bit per 16-byte allocation granule: set means "references to this
/// granule are to be revoked in the next sweep".
///
/// The map covers the heap only, at a fixed transform from the heap base
/// (§5.2 maps the shadow at a fixed offset from each allocation so lookup
/// is a shift and an add). It occupies 1/128 of the heap — "less than 1% of
/// the heap" (§3.2).
///
/// Painting is optimised like the paper's: interior runs of whole 64-bit
/// words are stored directly; only the ragged ends manipulate single bits.
///
/// # Examples
///
/// ```
/// use revoker::ShadowMap;
///
/// let mut shadow = ShadowMap::new(0x1000_0000, 1 << 20);
/// shadow.paint(0x1000_0040, 64);
/// assert!(shadow.is_painted(0x1000_0040));
/// assert!(shadow.is_painted(0x1000_0070));
/// assert!(!shadow.is_painted(0x1000_0080));
/// assert_eq!(shadow.painted_bytes(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowMap {
    heap_base: u64,
    granules: u64,
    bits: Vec<u64>,
    painted_granules: u64,
}

impl ShadowMap {
    /// Creates an all-clear shadow map covering `[heap_base, heap_base +
    /// heap_len)`.
    ///
    /// # Panics
    ///
    /// Panics unless base and length are 16-byte aligned.
    pub fn new(heap_base: u64, heap_len: u64) -> ShadowMap {
        assert_eq!(
            heap_base % GRANULE_SIZE,
            0,
            "heap base must be granule-aligned"
        );
        assert_eq!(
            heap_len % GRANULE_SIZE,
            0,
            "heap length must be granule-aligned"
        );
        let granules = heap_len / GRANULE_SIZE;
        ShadowMap {
            heap_base,
            granules,
            bits: vec![0; (granules as usize).div_ceil(64)],
            painted_granules: 0,
        }
    }

    /// The heap base this map shadows.
    #[inline]
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Bytes of heap covered.
    #[inline]
    pub fn covered_bytes(&self) -> u64 {
        self.granules * GRANULE_SIZE
    }

    /// Size of the shadow map itself in bytes (1/128 of the heap).
    pub fn shadow_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    #[inline]
    fn granule_of(&self, addr: u64) -> Option<u64> {
        if addr < self.heap_base {
            return None;
        }
        let g = (addr - self.heap_base) / GRANULE_SIZE;
        (g < self.granules).then_some(g)
    }

    /// Paints `[addr, addr + len)` for revocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is not granule-aligned or leaves the heap — the
    /// allocator only ever paints whole quarantined chunks, so anything
    /// else is a bookkeeping bug.
    pub fn paint(&mut self, addr: u64, len: u64) {
        self.run(addr, len, true);
    }

    /// Clears `[addr, addr + len)` after the sweep (quarantine drain).
    ///
    /// # Panics
    ///
    /// As [`ShadowMap::paint`].
    pub fn clear(&mut self, addr: u64, len: u64) {
        self.run(addr, len, false);
    }

    /// Paints one bit at a time, without the wide-store fast path — the
    /// un-optimised painting loop, kept for the ablation study of the
    /// §5.2 optimisation ("byte, half-word, word, and double-word store
    /// instructions when possible, rather than setting individual bits").
    ///
    /// # Panics
    ///
    /// As [`ShadowMap::paint`].
    pub fn paint_bitwise(&mut self, addr: u64, len: u64) {
        assert_eq!(addr % GRANULE_SIZE, 0, "unaligned shadow paint");
        assert_eq!(len % GRANULE_SIZE, 0, "unaligned shadow paint length");
        if len == 0 {
            return;
        }
        let first = self.granule_of(addr).expect("paint outside shadowed heap");
        let last = self
            .granule_of(addr + len - GRANULE_SIZE)
            .expect("paint runs past shadowed heap");
        for g in first..=last {
            self.put(g, true);
        }
    }

    fn run(&mut self, addr: u64, len: u64, set: bool) {
        assert_eq!(addr % GRANULE_SIZE, 0, "unaligned shadow paint");
        assert_eq!(len % GRANULE_SIZE, 0, "unaligned shadow paint length");
        if len == 0 {
            return;
        }
        let first = self.granule_of(addr).expect("paint outside shadowed heap");
        let last = self
            .granule_of(addr + len - GRANULE_SIZE)
            .expect("paint runs past shadowed heap");

        let mut g = first;
        // Ragged head: bits up to the next word boundary.
        while g <= last && !g.is_multiple_of(64) {
            self.put(g, set);
            g += 1;
        }
        // Whole-word body: the paper's wide-store optimisation (§5.2).
        while g + 63 <= last {
            let w = (g / 64) as usize;
            let old = self.bits[w];
            let new = if set { u64::MAX } else { 0 };
            if old != new {
                let delta = if set {
                    old.count_zeros()
                } else {
                    old.count_ones()
                } as u64;
                self.painted_granules = if set {
                    self.painted_granules + delta
                } else {
                    self.painted_granules - delta
                };
                self.bits[w] = new;
            }
            g += 64;
        }
        // Ragged tail.
        while g <= last {
            self.put(g, set);
            g += 1;
        }
    }

    #[inline]
    fn put(&mut self, g: u64, set: bool) {
        let w = (g / 64) as usize;
        let mask = 1u64 << (g % 64);
        let was = self.bits[w] & mask != 0;
        if set && !was {
            self.bits[w] |= mask;
            self.painted_granules += 1;
        } else if !set && was {
            self.bits[w] &= !mask;
            self.painted_granules -= 1;
        }
    }

    /// The sweep's hot lookup: is the granule containing `addr` painted?
    /// Addresses outside the shadowed heap return `false` (capabilities to
    /// the stack or globals are never revoked by a heap sweep).
    #[inline]
    pub fn is_painted(&self, addr: u64) -> bool {
        match self.granule_of(addr) {
            Some(g) => self.bits[(g / 64) as usize] >> (g % 64) & 1 == 1,
            None => false,
        }
    }

    /// Total painted bytes.
    pub fn painted_bytes(&self) -> u64 {
        self.painted_granules * GRANULE_SIZE
    }

    /// Clears the entire map (constant-time bulk store).
    pub fn clear_all(&mut self) {
        self.bits.fill(0);
        self.painted_granules = 0;
    }

    /// Raw bitmap view (for the timed sweep's shadow-access modelling).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// The simulated address of the shadow byte covering `addr`, given the
    /// fixed transform `shadow_base + (addr - heap_base) / 128` (§5.2) —
    /// used by the cache model to charge shadow-lookup accesses.
    #[inline]
    pub fn shadow_addr(&self, shadow_base: u64, addr: u64) -> u64 {
        shadow_base + (addr.saturating_sub(self.heap_base)) / (GRANULE_SIZE * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 20;

    #[test]
    fn paint_and_clear_roundtrip() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x100, 0x200);
        assert_eq!(s.painted_bytes(), 0x200);
        assert!(s.is_painted(BASE + 0x100));
        assert!(s.is_painted(BASE + 0x2f0));
        assert!(!s.is_painted(BASE + 0x300));
        s.clear(BASE + 0x100, 0x200);
        assert_eq!(s.painted_bytes(), 0);
    }

    #[test]
    fn interior_addresses_hit_their_granule() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + 0x40, 16);
        // Any byte inside the granule matches.
        assert!(s.is_painted(BASE + 0x4f));
        assert!(!s.is_painted(BASE + 0x50));
        assert!(!s.is_painted(BASE + 0x3f));
    }

    #[test]
    fn large_runs_use_word_stores_and_count_correctly() {
        let mut s = ShadowMap::new(BASE, LEN);
        // 100 KiB starting at a ragged offset.
        s.paint(BASE + 0x30, 100 * 1024 + 16);
        assert_eq!(s.painted_bytes(), 100 * 1024 + 16);
        // Repainting is idempotent.
        s.paint(BASE + 0x30, 100 * 1024 + 16);
        assert_eq!(s.painted_bytes(), 100 * 1024 + 16);
        s.clear_all();
        assert_eq!(s.painted_bytes(), 0);
    }

    #[test]
    fn outside_addresses_never_painted() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE, LEN);
        assert!(!s.is_painted(BASE - 16));
        assert!(!s.is_painted(BASE + LEN));
        assert!(!s.is_painted(0));
        assert!(!s.is_painted(!0xf)); // the top granule-aligned address
    }

    #[test]
    fn shadow_is_1_128th_of_heap() {
        let s = ShadowMap::new(BASE, LEN);
        assert_eq!(s.shadow_bytes(), LEN / 128);
        assert_eq!(s.covered_bytes(), LEN);
    }

    #[test]
    fn shadow_addr_transform() {
        let s = ShadowMap::new(BASE, LEN);
        let sb = 0x7000_0000;
        assert_eq!(s.shadow_addr(sb, BASE), sb);
        assert_eq!(s.shadow_addr(sb, BASE + 128), sb + 1);
        assert_eq!(s.shadow_addr(sb, BASE + 4096), sb + 32);
    }

    #[test]
    #[should_panic(expected = "outside shadowed heap")]
    fn painting_outside_heap_panics() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE - 0x100, 16);
    }

    #[test]
    #[should_panic(expected = "runs past")]
    fn painting_past_end_panics() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE + LEN - 16, 32);
    }

    #[test]
    fn zero_length_paint_is_noop() {
        let mut s = ShadowMap::new(BASE, LEN);
        s.paint(BASE, 0);
        assert_eq!(s.painted_bytes(), 0);
    }
}
