//! The paper's x86 evaluation methodology (§5.1, §5.3): conservative
//! pointer identification over preprocessed memory images.
//!
//! The paper could not run CHERI binaries on x86, so it *simulated*
//! capability visibility: every 64-bit word whose value is a valid virtual
//! address is conservatively considered a pointer (as in conservative
//! garbage collectors); the core dump is preprocessed to **zero all
//! non-pointer words**, after which the sweep's tag test becomes a simple
//! compare-with-zero — cheap enough to vectorise. This module reproduces
//! that pipeline:
//!
//! * [`ConservativeImage`] — a memory image preprocessed exactly as §5.3
//!   describes (non-pointer words zeroed).
//! * [`sweep_scalar`] / [`sweep_unrolled`] — the §3.3 inner loop over the
//!   preprocessed image (the paper's first two fig. 7 tiers).
//! * [`sweep_avx2`] — a genuine AVX2 implementation (`std::arch`), used
//!   when the host supports it; this is the fig. 7 "AVX2" tier. Falls back
//!   to the unrolled loop elsewhere.
//!
//! Unlike the tag-exact kernels in [`crate::Sweeper`], conservative
//! identification has **false positives**: integers that happen to look
//! like heap addresses are treated as pointers (and, if they "point" into
//! quarantined memory, zeroed). The paper accepts the same imprecision for
//! its x86 measurements; CHERI itself does not (§4.1).

use tagmem::TaggedMemory;

use crate::ShadowMap;

/// A §5.3-preprocessed image: 64-bit words, with every word whose value is
/// not a valid in-range virtual address zeroed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservativeImage {
    base: u64,
    words: Vec<u64>,
}

/// Result counters of a conservative sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservativeStats {
    /// Words inspected (all of them — the test is part of the loop).
    pub words_scanned: u64,
    /// Words that looked like pointers (non-zero after preprocessing).
    pub pointers_seen: u64,
    /// Words zeroed because they pointed into painted memory.
    pub revoked: u64,
}

impl ConservativeImage {
    /// Preprocesses a tagged-memory image: any 64-bit word whose value
    /// falls within `[range_base, range_end)` is kept (it "is" a pointer
    /// under conservative estimation); every other word is zeroed.
    pub fn from_memory(mem: &TaggedMemory, range_base: u64, range_end: u64) -> ConservativeImage {
        let data = mem.data();
        let words = data
            .chunks_exact(8)
            .map(|c| {
                let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
                if w >= range_base && w < range_end {
                    w
                } else {
                    0
                }
            })
            .collect();
        ConservativeImage {
            base: mem.base(),
            words,
        }
    }

    /// Builds an image directly from words (testing / synthetic densities).
    pub fn from_words(base: u64, words: Vec<u64>) -> ConservativeImage {
        ConservativeImage { base, words }
    }

    /// The image's word array.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Image length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Non-zero (pointer-looking) words.
    pub fn pointer_count(&self) -> u64 {
        self.words.iter().filter(|&&w| w != 0).count() as u64
    }
}

/// The paper's §3.3 inner loop, verbatim shape: test, shift, shadow byte,
/// bit test, conditional zero.
pub fn sweep_scalar(image: &mut ConservativeImage, shadow: &ShadowMap) -> ConservativeStats {
    let mut stats = ConservativeStats::default();
    for w in &mut image.words {
        stats.words_scanned += 1;
        let capword = *w;
        if capword != 0 {
            stats.pointers_seen += 1;
            if shadow.is_painted(capword) {
                *w = 0;
                stats.revoked += 1;
            }
        }
    }
    stats
}

/// Manually unrolled/pipelined variant (the paper's second fig. 7 tier):
/// four words per iteration, tests hoisted.
pub fn sweep_unrolled(image: &mut ConservativeImage, shadow: &ShadowMap) -> ConservativeStats {
    let mut stats = ConservativeStats::default();
    let words = &mut image.words;
    let n = words.len() & !3;
    let mut i = 0;
    while i < n {
        let (a, b, c, d) = (words[i], words[i + 1], words[i + 2], words[i + 3]);
        stats.words_scanned += 4;
        // Fast path: a whole iteration of zeros (common at low density).
        if a | b | c | d != 0 {
            for (k, w) in [a, b, c, d].into_iter().enumerate() {
                if w != 0 {
                    stats.pointers_seen += 1;
                    if shadow.is_painted(w) {
                        words[i + k] = 0;
                        stats.revoked += 1;
                    }
                }
            }
        }
        i += 4;
    }
    while i < words.len() {
        let w = words[i];
        stats.words_scanned += 1;
        if w != 0 {
            stats.pointers_seen += 1;
            if shadow.is_painted(w) {
                words[i] = 0;
                stats.revoked += 1;
            }
        }
        i += 1;
    }
    stats
}

/// The AVX2 tier: 256-bit loads test four words against zero at a time;
/// only vectors containing pointer-looking words fall back to scalar
/// shadow lookups (the paper's loop similarly mixes vector tests with the
/// indirect shadow access). Uses the unrolled loop when AVX2 is absent.
#[allow(unsafe_code)]
pub fn sweep_avx2(image: &mut ConservativeImage, shadow: &ShadowMap) -> ConservativeStats {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime immediately above.
            return unsafe { simd::sweep(image, shadow) };
        }
    }
    sweep_unrolled(image, shadow)
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    //! The only `unsafe` in the workspace: AVX2 intrinsics for the fig. 7
    //! vector tier. Soundness rests on (a) the caller's runtime
    //! `is_x86_feature_detected!("avx2")` check and (b) `loadu` tolerating
    //! unaligned addresses, so any `&[u64]` chunk of ≥ 4 words is valid.

    use core::arch::x86_64::{
        __m256i, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_setzero_si256,
    };

    use super::{ConservativeImage, ConservativeStats};
    use crate::ShadowMap;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep(
        image: &mut ConservativeImage,
        shadow: &ShadowMap,
    ) -> ConservativeStats {
        let mut stats = ConservativeStats::default();
        let words = &mut image.words;
        let n = words.len() & !3;
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i < n {
            // SAFETY: i + 4 <= words.len(), and loadu has no alignment
            // requirement.
            let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i) };
            let eq = _mm256_cmpeq_epi64(v, zero);
            let mask = _mm256_movemask_epi8(eq) as u32;
            stats.words_scanned += 4;
            // All four lanes zero: skip (mask is all ones).
            if mask != u32::MAX {
                for k in 0..4 {
                    let w = words[i + k];
                    if w != 0 {
                        stats.pointers_seen += 1;
                        if shadow.is_painted(w) {
                            words[i + k] = 0;
                            stats.revoked += 1;
                        }
                    }
                }
            }
            i += 4;
        }
        while i < words.len() {
            let w = words[i];
            stats.words_scanned += 1;
            if w != 0 {
                stats.pointers_seen += 1;
                if shadow.is_painted(w) {
                    words[i] = 0;
                    stats.revoked += 1;
                }
            }
            i += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 16;

    fn image_with(ptrs: &[(usize, u64)]) -> ConservativeImage {
        let mut words = vec![0u64; (LEN / 8) as usize];
        for &(slot, value) in ptrs {
            words[slot] = value;
        }
        ConservativeImage::from_words(HEAP, words)
    }

    fn all_sweeps(
        img: &ConservativeImage,
        shadow: &ShadowMap,
    ) -> Vec<(&'static str, ConservativeImage, ConservativeStats)> {
        let mut out = Vec::new();
        for (name, f) in [
            (
                "scalar",
                sweep_scalar as fn(&mut ConservativeImage, &ShadowMap) -> ConservativeStats,
            ),
            ("unrolled", sweep_unrolled),
            ("avx2", sweep_avx2),
        ] {
            let mut copy = img.clone();
            let stats = f(&mut copy, shadow);
            out.push((name, copy, stats));
        }
        out
    }

    #[test]
    fn preprocessing_zeroes_non_addresses() {
        let mut mem = tagmem::TaggedMemory::new(HEAP, 4096);
        mem.write_u64(HEAP, HEAP + 0x40).unwrap(); // a "pointer"
        mem.write_u64(HEAP + 8, 1234).unwrap(); // an integer
        mem.write_u64(HEAP + 16, HEAP + 4096).unwrap(); // out of range
        let img = ConservativeImage::from_memory(&mem, HEAP, HEAP + 4096);
        assert_eq!(img.words()[0], HEAP + 0x40);
        assert_eq!(img.words()[1], 0);
        assert_eq!(img.words()[2], 0);
        assert_eq!(img.pointer_count(), 1);
    }

    #[test]
    fn conservative_false_positives_are_kept() {
        // An integer that *looks* like a heap address survives
        // preprocessing — the §5.1 conservatism.
        let mut mem = tagmem::TaggedMemory::new(HEAP, 4096);
        mem.write_u64(HEAP, HEAP + 0x80).unwrap(); // data, but address-like
        let img = ConservativeImage::from_memory(&mem, HEAP, HEAP + 4096);
        assert_eq!(img.pointer_count(), 1);
    }

    #[test]
    fn all_kernels_agree() {
        let img = image_with(&[
            (0, HEAP + 0x40),  // dangling (painted below)
            (7, HEAP + 0x400), // live
            (63, HEAP + 0x50), // dangling
            (64, HEAP + 0x800),
            (4093, HEAP + 0x40),
        ]);
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 32);
        let results = all_sweeps(&img, &shadow);
        for (name, swept, stats) in &results {
            assert_eq!(stats.pointers_seen, 5, "{name}");
            assert_eq!(stats.revoked, 3, "{name}");
            assert_eq!(swept.words()[0], 0, "{name}");
            assert_eq!(swept.words()[7], HEAP + 0x400, "{name}");
            assert_eq!(swept.words()[63], 0, "{name}");
        }
        for (name, swept, _) in &results[1..] {
            assert_eq!(swept, &results[0].1, "{name} diverged from scalar");
        }
    }

    #[test]
    fn tag_exact_and_conservative_agree_when_no_false_positives() {
        // Plant genuine capabilities; the conservative sweep over the
        // preprocessed image revokes the same set the tag-exact sweep does.
        let mut mem = tagmem::TaggedMemory::new(HEAP, LEN);
        for i in 0..20u64 {
            let obj = HEAP + 0x4000 + i * 64;
            mem.write_cap(HEAP + i * 16, &Capability::root_rw(obj, 64))
                .unwrap();
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        for i in (0..20u64).step_by(2) {
            shadow.paint(HEAP + 0x4000 + i * 64, 64);
        }
        let mut img = ConservativeImage::from_memory(&mem, HEAP, HEAP + LEN);
        let cons = sweep_avx2(&mut img, &shadow);
        let exact = crate::Sweeper::new(crate::Kernel::Wide).sweep_segment(&mut mem, &shadow);
        assert_eq!(cons.revoked, exact.caps_revoked);
    }

    #[test]
    fn empty_image_sweeps_clean() {
        let img = image_with(&[]);
        let shadow = ShadowMap::new(HEAP, LEN);
        for (name, _, stats) in all_sweeps(&img, &shadow) {
            assert_eq!(stats.pointers_seen, 0, "{name}");
            assert_eq!(stats.words_scanned, LEN / 8, "{name}");
        }
    }
}
