//! The paper's x86 evaluation methodology (§5.1, §5.3): conservative
//! pointer identification over preprocessed memory images.
//!
//! The paper could not run CHERI binaries on x86, so it *simulated*
//! capability visibility: every 64-bit word whose value is a valid virtual
//! address is conservatively considered a pointer (as in conservative
//! garbage collectors); the core dump is preprocessed to **zero all
//! non-pointer words**, after which the sweep's tag test becomes a simple
//! compare-with-zero — cheap enough to vectorise. This module reproduces
//! that pipeline:
//!
//! * [`ConservativeImage`] — a memory image preprocessed exactly as §5.3
//!   describes (non-pointer words zeroed).
//! * [`ConsKernel`] — the fig. 7 tiers as engine
//!   [`RevokeKernel`](crate::engine::RevokeKernel)s over such images:
//!   scalar, manually unrolled, and a genuine AVX2 implementation
//!   (`std::arch`) used when the host supports it.
//! * [`ImageSource`] — the [`CapSource`](crate::engine::CapSource)
//!   adapter, so images sweep through the same
//!   [`SweepEngine`](crate::engine::SweepEngine) as tagged memory.
//! * [`sweep_scalar`] / [`sweep_unrolled`] / [`sweep_avx2`] — convenience
//!   wrappers composing the above.
//!
//! Unlike the tag-exact kernels in [`crate::Sweeper`], conservative
//! identification has **false positives**: integers that happen to look
//! like heap addresses are treated as pointers (and, if they "point" into
//! quarantined memory, zeroed). The paper accepts the same imprecision for
//! its x86 measurements; CHERI itself does not (§4.1).

use tagmem::{TaggedMemory, LINE_SIZE};

use crate::engine::{CapSource, NoFilter, RevokeKernel, SweepCost, SweepEngine, TagProbe};
use crate::ShadowMap;

/// A §5.3-preprocessed image: 64-bit words, with every word whose value is
/// not a valid in-range virtual address zeroed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservativeImage {
    base: u64,
    words: Vec<u64>,
}

/// Result counters of a conservative sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservativeStats {
    /// Words inspected (all of them — the test is part of the loop).
    pub words_scanned: u64,
    /// Words that looked like pointers (non-zero after preprocessing).
    pub pointers_seen: u64,
    /// Words zeroed because they pointed into painted memory.
    pub revoked: u64,
}

impl ConservativeImage {
    /// Preprocesses a tagged-memory image: any 64-bit word whose value
    /// falls within `[range_base, range_end)` is kept (it "is" a pointer
    /// under conservative estimation); every other word is zeroed.
    pub fn from_memory(mem: &TaggedMemory, range_base: u64, range_end: u64) -> ConservativeImage {
        let data = mem.data();
        let words = data
            .chunks_exact(8)
            .map(|c| {
                let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
                if w >= range_base && w < range_end {
                    w
                } else {
                    0
                }
            })
            .collect();
        ConservativeImage {
            base: mem.base(),
            words,
        }
    }

    /// Builds an image directly from words (testing / synthetic densities).
    pub fn from_words(base: u64, words: Vec<u64>) -> ConservativeImage {
        ConservativeImage { base, words }
    }

    /// The image's base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The image's word array.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Image length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Non-zero (pointer-looking) words.
    pub fn pointer_count(&self) -> u64 {
        self.words.iter().filter(|&&w| w != 0).count() as u64
    }
}

impl TagProbe for ConservativeImage {
    /// After §5.3 preprocessing, "holds a capability" means "holds a
    /// non-zero word" — the conservative analogue of `CLoadTags`.
    fn probe_line(&self, line: u64) -> bool {
        let i0 = ((line.saturating_sub(self.base)) / 8) as usize;
        let i1 = (i0 + (LINE_SIZE / 8) as usize).min(self.words.len());
        self.words[i0.min(self.words.len())..i1]
            .iter()
            .any(|&w| w != 0)
    }
}

/// A [`CapSource`](crate::engine::CapSource) walking one conservative
/// image as a single region.
pub struct ImageSource<'a>(&'a mut ConservativeImage);

impl<'a> ImageSource<'a> {
    /// A source walking all of `image`.
    pub fn new(image: &'a mut ConservativeImage) -> ImageSource<'a> {
        ImageSource(image)
    }
}

impl CapSource for ImageSource<'_> {
    type Mem = ConservativeImage;

    fn for_each_region(&mut self, mut f: impl FnMut(&mut ConservativeImage, u64, u64)) {
        let (base, len) = (self.0.base, self.0.len_bytes());
        f(self.0, base, len);
    }
}

/// The fig. 7 optimisation tiers for conservative images.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsKernel {
    /// The paper's §3.3 inner loop, verbatim shape: test, shift, shadow
    /// byte, bit test, conditional zero.
    Scalar,
    /// Manually unrolled/pipelined (the second fig. 7 tier): four words
    /// per iteration, tests hoisted.
    Unrolled,
    /// The AVX2 tier: 256-bit loads test four words against zero at a
    /// time (runtime-detected; falls back to [`ConsKernel::Unrolled`]
    /// elsewhere).
    #[default]
    Avx2,
}

impl RevokeKernel<ConservativeImage> for ConsKernel {
    fn sweep_window<C: SweepCost>(
        &self,
        image: &mut ConservativeImage,
        start: u64,
        len: u64,
        shadow: &ShadowMap,
        _cost: &mut C,
        stats: &mut crate::SweepStats,
    ) {
        let i0 = ((start - image.base) / 8) as usize;
        let i1 = (i0 + (len / 8) as usize).min(image.words.len());
        let window = &mut image.words[i0..i1];
        let (seen, revoked) = match self {
            ConsKernel::Scalar => scan_scalar(window, shadow),
            ConsKernel::Unrolled => scan_unrolled(window, shadow),
            ConsKernel::Avx2 => scan_avx2(window, shadow),
        };
        stats.caps_inspected += seen;
        stats.caps_revoked += revoked;
    }
}

fn run(image: &mut ConservativeImage, shadow: &ShadowMap, kernel: ConsKernel) -> ConservativeStats {
    let stats = SweepEngine::new(kernel).sweep(ImageSource::new(image), NoFilter, shadow);
    ConservativeStats {
        words_scanned: stats.bytes_swept / 8,
        pointers_seen: stats.caps_inspected,
        revoked: stats.caps_revoked,
    }
}

/// Sweeps `image` with [`ConsKernel::Scalar`] through the engine.
pub fn sweep_scalar(image: &mut ConservativeImage, shadow: &ShadowMap) -> ConservativeStats {
    run(image, shadow, ConsKernel::Scalar)
}

/// Sweeps `image` with [`ConsKernel::Unrolled`] through the engine.
pub fn sweep_unrolled(image: &mut ConservativeImage, shadow: &ShadowMap) -> ConservativeStats {
    run(image, shadow, ConsKernel::Unrolled)
}

/// Sweeps `image` with [`ConsKernel::Avx2`] through the engine (falling
/// back to the unrolled loop when the host lacks AVX2).
pub fn sweep_avx2(image: &mut ConservativeImage, shadow: &ShadowMap) -> ConservativeStats {
    run(image, shadow, ConsKernel::Avx2)
}

/// Sweeps `image` with `kernel`, reusing `scratch`'s walk buffers — the
/// repeated-measurement form (§5.3 sweeps the same image 20×): after the
/// first sweep warms the scratch, subsequent sweeps allocate nothing.
pub fn sweep_scratched(
    image: &mut ConservativeImage,
    shadow: &ShadowMap,
    kernel: ConsKernel,
    scratch: &mut crate::SweepScratch,
) -> ConservativeStats {
    let stats = SweepEngine::new(kernel).sweep_scratched(
        ImageSource::new(image),
        NoFilter,
        shadow,
        scratch,
    );
    ConservativeStats {
        words_scanned: stats.bytes_swept / 8,
        pointers_seen: stats.caps_inspected,
        revoked: stats.caps_revoked,
    }
}

/// Scalar inner loop over one word window. Returns (pointers_seen,
/// revoked).
fn scan_scalar(words: &mut [u64], shadow: &ShadowMap) -> (u64, u64) {
    let (mut seen, mut revoked) = (0, 0);
    for w in words.iter_mut() {
        let capword = *w;
        if capword != 0 {
            seen += 1;
            if shadow.is_painted(capword) {
                *w = 0;
                revoked += 1;
            }
        }
    }
    (seen, revoked)
}

/// Unrolled inner loop: four words per iteration, tests hoisted.
fn scan_unrolled(words: &mut [u64], shadow: &ShadowMap) -> (u64, u64) {
    let (mut seen, mut revoked) = (0, 0);
    let n = words.len() & !3;
    let mut i = 0;
    while i < n {
        let (a, b, c, d) = (words[i], words[i + 1], words[i + 2], words[i + 3]);
        // Fast path: a whole iteration of zeros (common at low density).
        if a | b | c | d != 0 {
            for (k, w) in [a, b, c, d].into_iter().enumerate() {
                if w != 0 {
                    seen += 1;
                    if shadow.is_painted(w) {
                        words[i + k] = 0;
                        revoked += 1;
                    }
                }
            }
        }
        i += 4;
    }
    while i < words.len() {
        let w = words[i];
        if w != 0 {
            seen += 1;
            if shadow.is_painted(w) {
                words[i] = 0;
                revoked += 1;
            }
        }
        i += 1;
    }
    (seen, revoked)
}

/// AVX2 inner loop when available; the unrolled loop otherwise.
#[allow(unsafe_code)]
fn scan_avx2(words: &mut [u64], shadow: &ShadowMap) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime immediately above.
            return unsafe { simd::scan(words, shadow) };
        }
    }
    scan_unrolled(words, shadow)
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    //! One of the workspace's two `unsafe` islands (the other is the
    //! `Kernel::Simd` sweep kernel in `sweep.rs`): AVX2 intrinsics for the
    //! fig. 7 vector tier. Soundness rests on (a) the caller's runtime
    //! `is_x86_feature_detected!("avx2")` check and (b) `loadu` tolerating
    //! unaligned addresses, so any `&[u64]` chunk of ≥ 4 words is valid.

    use core::arch::x86_64::{
        __m256i, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_setzero_si256,
    };

    use crate::ShadowMap;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan(words: &mut [u64], shadow: &ShadowMap) -> (u64, u64) {
        let (mut seen, mut revoked) = (0, 0);
        let n = words.len() & !3;
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i < n {
            // SAFETY: i + 4 <= words.len(), and loadu has no alignment
            // requirement.
            let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i) };
            let eq = _mm256_cmpeq_epi64(v, zero);
            let mask = _mm256_movemask_epi8(eq) as u32;
            // All four lanes zero: skip (mask is all ones).
            if mask != u32::MAX {
                for k in 0..4 {
                    let w = words[i + k];
                    if w != 0 {
                        seen += 1;
                        if shadow.is_painted(w) {
                            words[i + k] = 0;
                            revoked += 1;
                        }
                    }
                }
            }
            i += 4;
        }
        while i < words.len() {
            let w = words[i];
            if w != 0 {
                seen += 1;
                if shadow.is_painted(w) {
                    words[i] = 0;
                    revoked += 1;
                }
            }
            i += 1;
        }
        (seen, revoked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 16;

    fn image_with(ptrs: &[(usize, u64)]) -> ConservativeImage {
        let mut words = vec![0u64; (LEN / 8) as usize];
        for &(slot, value) in ptrs {
            words[slot] = value;
        }
        ConservativeImage::from_words(HEAP, words)
    }

    fn all_sweeps(
        img: &ConservativeImage,
        shadow: &ShadowMap,
    ) -> Vec<(&'static str, ConservativeImage, ConservativeStats)> {
        let mut out = Vec::new();
        for (name, f) in [
            (
                "scalar",
                sweep_scalar as fn(&mut ConservativeImage, &ShadowMap) -> ConservativeStats,
            ),
            ("unrolled", sweep_unrolled),
            ("avx2", sweep_avx2),
        ] {
            let mut copy = img.clone();
            let stats = f(&mut copy, shadow);
            out.push((name, copy, stats));
        }
        out
    }

    #[test]
    fn preprocessing_zeroes_non_addresses() {
        let mut mem = tagmem::TaggedMemory::new(HEAP, 4096);
        mem.write_u64(HEAP, HEAP + 0x40).unwrap(); // a "pointer"
        mem.write_u64(HEAP + 8, 1234).unwrap(); // an integer
        mem.write_u64(HEAP + 16, HEAP + 4096).unwrap(); // out of range
        let img = ConservativeImage::from_memory(&mem, HEAP, HEAP + 4096);
        assert_eq!(img.words()[0], HEAP + 0x40);
        assert_eq!(img.words()[1], 0);
        assert_eq!(img.words()[2], 0);
        assert_eq!(img.pointer_count(), 1);
    }

    #[test]
    fn conservative_false_positives_are_kept() {
        // An integer that *looks* like a heap address survives
        // preprocessing — the §5.1 conservatism.
        let mut mem = tagmem::TaggedMemory::new(HEAP, 4096);
        mem.write_u64(HEAP, HEAP + 0x80).unwrap(); // data, but address-like
        let img = ConservativeImage::from_memory(&mem, HEAP, HEAP + 4096);
        assert_eq!(img.pointer_count(), 1);
    }

    #[test]
    fn all_kernels_agree() {
        let img = image_with(&[
            (0, HEAP + 0x40),  // dangling (painted below)
            (7, HEAP + 0x400), // live
            (63, HEAP + 0x50), // dangling
            (64, HEAP + 0x800),
            (4093, HEAP + 0x40),
        ]);
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 32);
        let results = all_sweeps(&img, &shadow);
        for (name, swept, stats) in &results {
            assert_eq!(stats.pointers_seen, 5, "{name}");
            assert_eq!(stats.revoked, 3, "{name}");
            assert_eq!(swept.words()[0], 0, "{name}");
            assert_eq!(swept.words()[7], HEAP + 0x400, "{name}");
            assert_eq!(swept.words()[63], 0, "{name}");
        }
        for (name, swept, _) in &results[1..] {
            assert_eq!(swept, &results[0].1, "{name} diverged from scalar");
        }
    }

    #[test]
    fn tag_exact_and_conservative_agree_when_no_false_positives() {
        // Plant genuine capabilities; the conservative sweep over the
        // preprocessed image revokes the same set the tag-exact sweep does.
        let mut mem = tagmem::TaggedMemory::new(HEAP, LEN);
        for i in 0..20u64 {
            let obj = HEAP + 0x4000 + i * 64;
            mem.write_cap(HEAP + i * 16, &Capability::root_rw(obj, 64))
                .unwrap();
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        for i in (0..20u64).step_by(2) {
            shadow.paint(HEAP + 0x4000 + i * 64, 64);
        }
        let mut img = ConservativeImage::from_memory(&mem, HEAP, HEAP + LEN);
        let cons = sweep_avx2(&mut img, &shadow);
        let exact = crate::Sweeper::new(crate::Kernel::Wide).sweep_segment(&mut mem, &shadow);
        assert_eq!(cons.revoked, exact.caps_revoked);
    }

    #[test]
    fn empty_image_sweeps_clean() {
        let img = image_with(&[]);
        let shadow = ShadowMap::new(HEAP, LEN);
        for (name, _, stats) in all_sweeps(&img, &shadow) {
            assert_eq!(stats.pointers_seen, 0, "{name}");
            assert_eq!(stats.words_scanned, LEN / 8, "{name}");
        }
    }

    #[test]
    fn line_probe_matches_word_content() {
        let img = image_with(&[(16, HEAP + 0x40)]); // word 16 = byte 128
        assert!(!img.probe_line(HEAP), "first line is empty");
        assert!(img.probe_line(HEAP + 128), "second line holds a pointer");
    }
}
