//! Pluggable **revocation backends**: the quarantine→sweep lifecycle
//! policy behind the [`SweepEngine`][crate::SweepEngine].
//!
//! Stock CHERIvoke sweeps *every* capability-bearing page once per
//! quarantine epoch. The related work shows the bigger win is sweeping
//! *less*: PICASSO partitions quarantine by capability color so a sweep
//! only visits memory that can hold matching colors, and PoisonCap
//! consults a coarse region poison map before any fine granule work. A
//! [`RevocationBackend`] owns exactly those decisions:
//!
//! * how freed chunks are **binned** into quarantine partitions
//!   ([`RevocationBackend::bin_of`]),
//! * which bins an epoch **seals** ([`RevocationBackend::select_bins`]),
//! * and which memory the sweep must **visit** ([`BackendFilter`], built
//!   by [`BackendFilter::for_epoch`] from the painted shadow map and the
//!   live page table).
//!
//! The three implementations:
//!
//! | backend | bins | sweep restriction |
//! |---|---|---|
//! | [`StockBackend`] | 1 | none (CapDirty pages as before) |
//! | [`ColoredBackend`] | [`cheri::NUM_COLORS`] | pages whose stored-capability **color summary** intersects the revoked color set |
//! | [`HierarchicalBackend`] | 1 | coarse 1 MiB **poison regions** first (clean regions fall through in O(1)), then per-page region summaries |
//!
//! Both restrictions are sound for the same reason CapDirty is: the
//! per-page summaries ([`tagmem::PageFlags::pointee_colors`] /
//! [`tagmem::PageFlags::pointee_regions`]) are maintained on the one
//! tagged-store choke point and only ever over-approximate, so a
//! non-intersecting page provably holds no capability into the revoked
//! set. Skipped work is reported as `pages_skipped` in
//! [`SweepStats`][crate::SweepStats], which is what the lab's
//! deterministic `swept_fraction` metric measures.

use crate::engine::{CapDirtyPages, FilterGranularity, GranuleFilter, SweepCost, TagProbe};
use crate::shadow::ShadowMap;
use tagmem::PageTable;

/// Selects one of the built-in [`RevocationBackend`] implementations —
/// the `RevocationPolicy::backend` / `CHERIVOKE_BACKEND` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Today's behaviour: one quarantine bin, full sweeps.
    #[default]
    Stock,
    /// PICASSO-style colored revocation.
    Colored,
    /// PoisonCap-style hierarchical (coarse-region-first) revocation.
    Hierarchical,
}

impl BackendKind {
    /// All backends, in the order the lab matrix compares them.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Stock,
        BackendKind::Colored,
        BackendKind::Hierarchical,
    ];

    /// The stable lowercase name (`stock` / `colored` / `hierarchical`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Stock => "stock",
            BackendKind::Colored => "colored",
            BackendKind::Hierarchical => "hierarchical",
        }
    }

    /// The backend implementation (stateless, shared).
    pub fn backend(self) -> &'static dyn RevocationBackend {
        match self {
            BackendKind::Stock => &StockBackend,
            BackendKind::Colored => &ColoredBackend,
            BackendKind::Hierarchical => &HierarchicalBackend,
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendKind, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "stock" => Ok(BackendKind::Stock),
            "colored" => Ok(BackendKind::Colored),
            "hierarchical" => Ok(BackendKind::Hierarchical),
            other => Err(format!(
                "unknown revocation backend {other:?} (expected stock, colored or hierarchical)"
            )),
        }
    }
}

/// Validates a raw `CHERIVOKE_BACKEND` value. Returns the backend to use
/// plus a human-readable warning when the value was not recognised
/// (unrecognised or empty values fall back to [`BackendKind::Stock`]) —
/// the same clamp-and-warn contract as
/// [`parse_workers`][crate::parse_workers].
pub fn parse_backend(raw: &str) -> (BackendKind, Option<String>) {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return (
            BackendKind::Stock,
            Some("CHERIVOKE_BACKEND is set but empty; using the stock backend".to_string()),
        );
    }
    match trimmed.parse() {
        Ok(kind) => (kind, None),
        Err(_) => (
            BackendKind::Stock,
            Some(format!(
                "CHERIVOKE_BACKEND={trimmed:?} is not recognised (expected stock, colored or \
                 hierarchical); using the stock backend"
            )),
        ),
    }
}

/// The revocation backend from the `CHERIVOKE_BACKEND` environment
/// variable (default [`BackendKind::Stock`]). Unrecognised values warn
/// once to stderr and keep the default.
pub fn backend_from_env() -> BackendKind {
    match std::env::var("CHERIVOKE_BACKEND") {
        Err(_) => BackendKind::Stock,
        Ok(raw) => {
            let (kind, warning) = parse_backend(&raw);
            if let Some(msg) = warning {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: {msg}"));
            }
            kind
        }
    }
}

/// Upper bound on quarantine partitions a backend may request (bins are
/// selected through a 64-bit mask).
pub const MAX_QUARANTINE_BINS: u8 = 64;

/// Lifecycle policy for one revocation strategy: how frees are binned,
/// which bins an epoch seals, and (via [`BackendFilter::for_epoch`]) what
/// a sweep may skip. Implementations are stateless — all state lives in
/// the allocator's bins, the page table's summaries and the shadow map —
/// so one `&'static dyn RevocationBackend` serves every heap.
pub trait RevocationBackend: Sync {
    /// Which built-in backend this is.
    fn kind(&self) -> BackendKind;

    /// Number of quarantine bins frees are partitioned into (1 ⇒ the
    /// stock single-buffer quarantine). At most [`MAX_QUARANTINE_BINS`].
    fn partitions(&self) -> u8;

    /// The quarantine bin for a freed chunk whose allocation starts at
    /// `base`. Must be `< self.partitions()`.
    fn bin_of(&self, base: u64) -> u8;

    /// Which bins the next epoch should seal, as a bit mask over
    /// `bin_bytes` (quarantined bytes per bin). Returning a superset of
    /// the non-empty bins is fine; the caller ignores empty bins. Must
    /// select at least every non-empty bin's share eventually — the
    /// built-ins guarantee each epoch seals at least half the quarantined
    /// bytes, so quarantine occupancy stays bounded.
    fn select_bins(&self, bin_bytes: &[u64]) -> u64;
}

/// The extracted stock lifecycle: one bin, every epoch seals everything,
/// sweeps are filtered exactly as before (CapDirty or nothing).
#[derive(Debug, Clone, Copy, Default)]
pub struct StockBackend;

impl RevocationBackend for StockBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Stock
    }

    fn partitions(&self) -> u8 {
        1
    }

    fn bin_of(&self, _base: u64) -> u8 {
        0
    }

    fn select_bins(&self, _bin_bytes: &[u64]) -> u64 {
        u64::MAX
    }
}

/// PICASSO-style colored revocation: quarantine is partitioned by the
/// freed chunk's [`cheri::color_of`] color, an epoch seals the richest
/// bins (at least half the quarantined bytes, so progress per epoch is
/// bounded below), and the sweep visits only pages whose stored
/// capabilities can carry one of the sealed colors.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoredBackend;

impl RevocationBackend for ColoredBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Colored
    }

    fn partitions(&self) -> u8 {
        cheri::NUM_COLORS
    }

    fn bin_of(&self, base: u64) -> u8 {
        cheri::color_of(base)
    }

    /// Greedily takes the richest bins until at least half the
    /// quarantined bytes are covered (allocation-free: bins are capped at
    /// [`MAX_QUARANTINE_BINS`]). Concentrated churn seals one color and
    /// sweeps almost nothing; uniform churn degrades gracefully towards
    /// the stock full seal.
    fn select_bins(&self, bin_bytes: &[u64]) -> u64 {
        let total: u64 = bin_bytes.iter().sum();
        if total == 0 {
            return u64::MAX;
        }
        let mut remaining = [0u64; MAX_QUARANTINE_BINS as usize];
        let n = bin_bytes.len().min(remaining.len());
        remaining[..n].copy_from_slice(&bin_bytes[..n]);
        let mut mask = 0u64;
        let mut covered = 0u64;
        while covered * 2 < total {
            // Richest remaining bin; ties break to the lowest index so the
            // selection is deterministic.
            let (best, &bytes) = remaining
                .iter()
                .enumerate()
                .max_by_key(|&(i, &b)| (b, usize::MAX - i))
                .expect("bins are non-empty");
            if bytes == 0 {
                break;
            }
            mask |= 1 << best;
            covered += bytes;
            remaining[best] = 0;
        }
        mask
    }
}

/// PoisonCap-style hierarchical revocation: one bin (epochs seal
/// everything, like stock), but the sweep consults a coarse poison map
/// first — [`poisoned_subspans`][crate::poisoned_subspans] drops whole
/// 1 MiB regions whose pages cannot point into any poisoned region, and
/// the [`BackendFilter::Poison`] page filter handles the rest.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalBackend;

impl RevocationBackend for HierarchicalBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hierarchical
    }

    fn partitions(&self) -> u8 {
        1
    }

    fn bin_of(&self, _base: u64) -> u8 {
        0
    }

    fn select_bins(&self, _bin_bytes: &[u64]) -> u64 {
        u64::MAX
    }
}

/// The backend-aware [`GranuleFilter`]: what one epoch's sweep may skip,
/// decided per page frame from the live [`PageTable`] summaries.
pub enum BackendFilter<'a> {
    /// Visit everything (stock with CapDirty disabled).
    Pass,
    /// Stock CapDirty page skipping (byte-identical to
    /// [`CapDirtyPages`]).
    CapDirty(CapDirtyPages<'a>),
    /// Colored: skip pages whose stored-capability color summary misses
    /// every revoked color.
    Colored {
        /// The live page table carrying per-page color summaries.
        table: &'a mut PageTable,
        /// The sealed epoch's revoked color set.
        revoked: u8,
    },
    /// Hierarchical: skip pages whose coarse-region summary misses every
    /// poisoned region.
    Poison {
        /// The live page table carrying per-page region summaries.
        table: &'a mut PageTable,
        /// The sealed epoch's poisoned coarse regions.
        poisoned: u64,
    },
}

impl<'a> BackendFilter<'a> {
    /// The filter for one epoch of `kind`'s lifecycle: the revoked color /
    /// poison-region sets are read from the painted `shadow`, so foreign
    /// sweeps (which only receive the painting heap's shadow map) restrict
    /// themselves exactly like local ones. `use_capdirty` is the stock
    /// policy's existing page-skip toggle and is ignored by the
    /// sweep-avoidance backends (their summaries subsume it).
    pub fn for_epoch(
        kind: BackendKind,
        use_capdirty: bool,
        table: &'a mut PageTable,
        shadow: &ShadowMap,
    ) -> BackendFilter<'a> {
        match kind {
            BackendKind::Stock => {
                if use_capdirty {
                    BackendFilter::CapDirty(CapDirtyPages::new(table))
                } else {
                    BackendFilter::Pass
                }
            }
            BackendKind::Colored => BackendFilter::Colored {
                table,
                revoked: shadow.painted_color_mask(),
            },
            BackendKind::Hierarchical => BackendFilter::Poison {
                table,
                poisoned: shadow.painted_poison_mask(),
            },
        }
    }
}

impl<M: TagProbe> GranuleFilter<M> for BackendFilter<'_> {
    fn granularity(&self) -> FilterGranularity {
        match self {
            BackendFilter::Pass => FilterGranularity::Region,
            BackendFilter::CapDirty(inner) => GranuleFilter::<M>::granularity(inner),
            BackendFilter::Colored { .. } | BackendFilter::Poison { .. } => FilterGranularity::Page,
        }
    }

    fn visit_page<C: SweepCost>(&mut self, page: u64, mem: &M, cost: &mut C) -> bool {
        match self {
            BackendFilter::Pass => true,
            BackendFilter::CapDirty(inner) => inner.visit_page(page, mem, cost),
            // A page whose summary misses the revoked set provably holds no
            // capability into it (summaries over-approximate); a clean page
            // has empty summaries, so CapDirty skipping is subsumed.
            BackendFilter::Colored { table, revoked } => table.pointee_colors(page) & *revoked != 0,
            BackendFilter::Poison { table, poisoned } => {
                table.pointee_regions(page) & *poisoned != 0
            }
        }
    }

    fn page_swept(&mut self, page: u64, caps_found: u64) {
        match self {
            BackendFilter::Pass => {}
            BackendFilter::CapDirty(inner) => {
                GranuleFilter::<M>::page_swept(inner, page, caps_found)
            }
            BackendFilter::Colored { table, .. } | BackendFilter::Poison { table, .. } => {
                if caps_found == 0 {
                    // Same false-positive purge as CapDirty: a visited page
                    // with no capabilities resets its summaries too.
                    table.clear_cap_dirty(page);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoCost;
    use tagmem::{TaggedMemory, PAGE_SIZE};

    #[test]
    fn kinds_parse_and_name_roundtrip() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.backend().kind(), kind);
        }
        assert_eq!(
            "  Colored ".parse::<BackendKind>().unwrap(),
            BackendKind::Colored
        );
        assert!("picasso".parse::<BackendKind>().is_err());
    }

    #[test]
    fn parse_backend_clamps_and_warns_like_the_workers_knob() {
        assert_eq!(
            parse_backend("hierarchical"),
            (BackendKind::Hierarchical, None)
        );
        let (kind, warning) = parse_backend("rainbow");
        assert_eq!(kind, BackendKind::Stock);
        assert!(warning.unwrap().contains("rainbow"));
        let (kind, warning) = parse_backend("   ");
        assert_eq!(kind, BackendKind::Stock);
        assert!(warning.unwrap().contains("empty"));
    }

    #[test]
    fn colored_bins_follow_the_address_color() {
        let b = ColoredBackend;
        assert_eq!(b.partitions(), cheri::NUM_COLORS);
        for stripe in 0..u64::from(2 * cheri::NUM_COLORS) {
            let base = stripe * cheri::COLOR_REGION_BYTES + 0x40;
            assert_eq!(b.bin_of(base), cheri::color_of(base));
            assert!(b.bin_of(base) < b.partitions());
        }
    }

    #[test]
    fn colored_seal_selection_covers_half_richest_first() {
        let b = ColoredBackend;
        // One dominant bin: it alone is sealed.
        assert_eq!(b.select_bins(&[10, 1000, 10, 0, 0, 0, 0, 0]), 1 << 1);
        // Uniform bins: half of them are sealed, lowest indices first.
        let mask = b.select_bins(&[100; 8]);
        assert_eq!(mask.count_ones(), 4);
        assert_eq!(mask, 0b1111);
        // Empty quarantine seals everything (harmless: nothing to paint).
        assert_eq!(b.select_bins(&[0; 8]), u64::MAX);
        // Selected bins always cover at least half the total.
        let bins = [5u64, 30, 1, 64, 8, 8, 2, 2];
        let mask = b.select_bins(&bins);
        let covered: u64 = (0..8)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| bins[i])
            .sum();
        assert!(covered * 2 >= bins.iter().sum::<u64>());
    }

    #[test]
    fn stock_and_hierarchical_are_single_bin_full_seal() {
        for backend in [
            &StockBackend as &dyn RevocationBackend,
            &HierarchicalBackend,
        ] {
            assert_eq!(backend.partitions(), 1);
            assert_eq!(backend.bin_of(0xdead_0000), 0);
            assert_eq!(backend.select_bins(&[123]), u64::MAX);
        }
    }

    #[test]
    fn backend_filters_skip_only_provably_clean_pages() {
        const BASE: u64 = 0x1000_0000;
        let mem = TaggedMemory::new(BASE, 4 * PAGE_SIZE);
        let mut table = PageTable::new();
        // Page 0 points into color 0 / region bit 16; page 1 into color 3;
        // page 2 is capability-free; page 3 untracked.
        table.note_cap_store(BASE).unwrap();
        table.note_cap_pointee(BASE, BASE);
        table.note_cap_store(BASE + PAGE_SIZE).unwrap();
        table.note_cap_pointee(BASE + PAGE_SIZE, 3 * cheri::COLOR_REGION_BYTES);
        table.note_cap_store(BASE + 2 * PAGE_SIZE).unwrap();

        let mut shadow = ShadowMap::new(BASE, 4 * PAGE_SIZE);
        shadow.paint(BASE + 0x40, 0x40); // revokes color_of(BASE), poison_bit(BASE)

        let mut colored = BackendFilter::for_epoch(BackendKind::Colored, true, &mut table, &shadow);
        let visit = |f: &mut BackendFilter, page: u64| {
            GranuleFilter::<TaggedMemory>::visit_page(f, page, &mem, &mut NoCost)
        };
        assert!(visit(&mut colored, BASE));
        assert!(
            !visit(&mut colored, BASE + PAGE_SIZE),
            "wrong color is skipped"
        );
        assert!(!visit(&mut colored, BASE + 2 * PAGE_SIZE), "no pointees");
        assert!(!visit(&mut colored, BASE + 3 * PAGE_SIZE), "untracked");
        // False-positive purge resets the page's summaries.
        GranuleFilter::<TaggedMemory>::page_swept(&mut colored, BASE, 0);
        assert!(!visit(&mut colored, BASE));

        let mut table = PageTable::new();
        table.note_cap_store(BASE).unwrap();
        table.note_cap_pointee(BASE, BASE);
        table.note_cap_store(BASE + PAGE_SIZE).unwrap();
        table.note_cap_pointee(BASE + PAGE_SIZE, BASE + 200 * cheri::POISON_REGION_BYTES);
        let mut poison =
            BackendFilter::for_epoch(BackendKind::Hierarchical, true, &mut table, &shadow);
        assert!(visit(&mut poison, BASE));
        assert!(
            !visit(&mut poison, BASE + PAGE_SIZE),
            "other region is skipped"
        );

        // Stock maps onto the existing filters.
        let mut table = PageTable::new();
        table.note_cap_store(BASE).unwrap();
        let mut stock = BackendFilter::for_epoch(BackendKind::Stock, true, &mut table, &shadow);
        assert!(visit(&mut stock, BASE));
        assert!(!visit(&mut stock, BASE + PAGE_SIZE));
        let mut table = PageTable::new();
        let mut pass = BackendFilter::for_epoch(BackendKind::Stock, false, &mut table, &shadow);
        assert!(visit(&mut pass, BASE + 3 * PAGE_SIZE));
    }
}
