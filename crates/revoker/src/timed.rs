//! Cycle-accounted sweeps on a modelled machine (paper Fig. 8b).
//!
//! [`timed_sweep`] replays the access stream a revocation sweep issues —
//! data-line reads, `CLoadTags` queries, shadow-map lookups, revocation
//! stores, and the inner loop's data-dependent branches — against a
//! [`simcache::Machine`], yielding the cycle cost of the sweep under each
//! hardware-assist mode. This reproduces the paper's FPGA measurements:
//! page-level skipping tracks the ideal line closely, while `CLoadTags` pays
//! a per-line tag-cache round trip and an unpredictable branch, so it can
//! *lose* to page skipping at high line density (§6.3).

use simcache::Machine;
use tagmem::{CoreDump, GRANULE_SIZE, LINE_SIZE, PAGE_SIZE};

use crate::ShadowMap;

/// The hardware configuration a timed sweep models (the four lines of
/// Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedMode {
    /// Read and inspect every line.
    Full,
    /// Skip CapDirty-clean pages; read every line of dirty pages (§3.4.2).
    PteCapDirty,
    /// Page skip + `CLoadTags` per line of dirty pages, reading only lines
    /// with tags (§3.4.1).
    CLoadTags,
    /// Oracle: read exactly the lines containing capabilities, with zero
    /// query overhead (the dotted x = y line of Fig. 8b).
    Ideal,
}

/// Cost accounting from one timed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedSweepReport {
    /// Core cycles consumed.
    pub cycles: u64,
    /// Seconds at the machine's clock.
    pub seconds: f64,
    /// Data bytes actually read.
    pub bytes_read: u64,
    /// `CLoadTags` queries issued.
    pub cloadtags_issued: u64,
    /// Tagged words inspected.
    pub caps_inspected: u64,
    /// Capabilities that would be revoked.
    pub caps_revoked: u64,
}

/// Cycles of pure compute per inspected granule (tag test + shift + mask,
/// §3.3's inner loop on a scalar core).
const INSPECT_CYCLES: u64 = 2;

/// Simulated placement of the shadow map in the machine's address space
/// (only locality matters, not the absolute value).
const SHADOW_BASE: u64 = 0x7000_0000_0000;

/// Replays a revocation sweep of `dump` on `machine` under `mode`,
/// returning its cost. The dump is not mutated (so one image can be timed
/// repeatedly, like the paper's 20-sweep averages, §5.3).
pub fn timed_sweep(
    dump: &CoreDump,
    shadow: &ShadowMap,
    machine: &mut Machine,
    mode: TimedMode,
) -> TimedSweepReport {
    let mut report = TimedSweepReport {
        cycles: 0,
        seconds: 0.0,
        bytes_read: 0,
        cloadtags_issued: 0,
        caps_inspected: 0,
        caps_revoked: 0,
    };
    let start_cycles = machine.cycles();

    for img in dump.segments() {
        let mem = &img.mem;
        let mut page = mem.base() & !(PAGE_SIZE - 1);
        while page < mem.end() {
            let page_start = page.max(mem.base());
            let page_end = (page + PAGE_SIZE).min(mem.end());
            page += PAGE_SIZE;

            let page_key = page_start & !(PAGE_SIZE - 1);
            let page_dirty = dump.cap_dirty_pages().binary_search(&page_key).is_ok();

            match mode {
                TimedMode::Full => {}
                TimedMode::PteCapDirty | TimedMode::CLoadTags | TimedMode::Ideal => {
                    if !page_dirty {
                        // Page skipped for free (the OS handed us only the
                        // dirty-page array, §5.3).
                        continue;
                    }
                }
            }

            let mut line = page_start;
            let mut prev_skipped = false;
            while line < page_end {
                let len = (page_end - line).min(LINE_SIZE);
                let mask = mem.load_tags(line).unwrap_or(0);

                let read_line = match mode {
                    TimedMode::Full | TimedMode::PteCapDirty => true,
                    TimedMode::CLoadTags => {
                        machine.cloadtags(line);
                        report.cloadtags_issued += 1;
                        // The skip decision is a data-dependent branch; a
                        // simple local predictor mispredicts on decision
                        // changes (§3.3, §6.3).
                        let skip = mask == 0;
                        if skip != prev_skipped {
                            machine.branch_mispredict();
                        }
                        prev_skipped = skip;
                        !skip
                    }
                    TimedMode::Ideal => mask != 0,
                };
                if read_line {
                    machine.read(line, len);
                    report.bytes_read += len;
                    machine.charge((len / GRANULE_SIZE) * INSPECT_CYCLES);
                    sweep_line_caps(mem, shadow, machine, line, len, &mut report);
                }
                line += len;
            }
        }
    }

    report.cycles = machine.cycles() - start_cycles;
    report.seconds = machine.config().cycles_to_seconds(report.cycles);
    report
}

/// Charges the per-capability work of one line: shadow lookup per tagged
/// word, revocation store per dangling word.
fn sweep_line_caps(
    mem: &tagmem::TaggedMemory,
    shadow: &ShadowMap,
    machine: &mut Machine,
    line: u64,
    len: u64,
    report: &mut TimedSweepReport,
) {
    let mut addr = line;
    while addr < line + len {
        if mem.tag_at(addr) {
            report.caps_inspected += 1;
            if let Ok(cap) = mem.read_cap(addr) {
                let base = cap.base();
                // Shadow-map lookup (usually LLC/L2-resident, §3.2).
                machine.read(shadow.shadow_addr(SHADOW_BASE, base), 1);
                if shadow.is_painted(base) {
                    // Revocation store (the data-dependent store, §3.3).
                    machine.write(addr, GRANULE_SIZE);
                    machine.branch_mispredict();
                    report.caps_revoked += 1;
                }
            }
        }
        addr += GRANULE_SIZE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;
    use simcache::MachineConfig;
    use tagmem::{AddressSpace, SegmentKind};

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 20; // 256 pages

    /// An image with `density` of its pages holding one capability line.
    fn image(page_density: f64) -> (CoreDump, ShadowMap) {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, LEN)
            .build();
        let cap = Capability::root_rw(HEAP + 0x40, 64);
        let pages = LEN / PAGE_SIZE;
        let dirty = (pages as f64 * page_density) as u64;
        for p in 0..dirty {
            space.store_cap(HEAP + p * PAGE_SIZE, &cap).unwrap();
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        (CoreDump::capture(&space), shadow)
    }

    fn run(mode: TimedMode, density: f64) -> TimedSweepReport {
        let (dump, shadow) = image(density);
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        timed_sweep(&dump, &shadow, &mut m, mode)
    }

    #[test]
    fn full_sweep_reads_everything() {
        let r = run(TimedMode::Full, 0.25);
        assert_eq!(r.bytes_read, LEN);
        assert!(r.cycles > 0);
        assert_eq!(r.caps_revoked, r.caps_inspected);
    }

    #[test]
    fn pte_skipping_scales_with_page_density() {
        let quarter = run(TimedMode::PteCapDirty, 0.25);
        let full = run(TimedMode::PteCapDirty, 1.0);
        assert_eq!(quarter.bytes_read, LEN / 4);
        assert_eq!(full.bytes_read, LEN);
        assert!(quarter.cycles < full.cycles / 2);
    }

    #[test]
    fn cloadtags_reads_least_but_pays_queries() {
        let r = run(TimedMode::CLoadTags, 0.25);
        // Only one line per dirty page actually holds tags.
        assert_eq!(r.bytes_read, (LEN / PAGE_SIZE / 4) * LINE_SIZE);
        assert_eq!(
            r.cloadtags_issued,
            (LEN / PAGE_SIZE / 4) * (PAGE_SIZE / LINE_SIZE)
        );
        // Still cheaper than reading the dirty pages wholesale here (lines
        // are very sparse inside pages).
        let pte = run(TimedMode::PteCapDirty, 0.25);
        assert!(r.cycles < pte.cycles);
    }

    #[test]
    fn cloadtags_can_lose_when_lines_are_dense() {
        // Build an image where *every* line of every page holds a pointer:
        // CLoadTags pays the query on top of reading everything (§6.3).
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 18)
            .build();
        let cap = Capability::root_rw(HEAP + 0x40, 64);
        let mut a = HEAP;
        while a < HEAP + (1 << 18) {
            space.store_cap(a, &cap).unwrap();
            a += LINE_SIZE;
        }
        let shadow = ShadowMap::new(HEAP, 1 << 18);
        let dump = CoreDump::capture(&space);
        let mut m1 = Machine::new(MachineConfig::cheri_fpga_like());
        let pte = timed_sweep(&dump, &shadow, &mut m1, TimedMode::PteCapDirty);
        let mut m2 = Machine::new(MachineConfig::cheri_fpga_like());
        let clt = timed_sweep(&dump, &shadow, &mut m2, TimedMode::CLoadTags);
        assert!(
            clt.cycles > pte.cycles,
            "CLoadTags {} <= PTE {}",
            clt.cycles,
            pte.cycles
        );
    }

    #[test]
    fn ideal_is_lower_bound() {
        for density in [0.1, 0.5, 1.0] {
            let ideal = run(TimedMode::Ideal, density);
            for mode in [
                TimedMode::Full,
                TimedMode::PteCapDirty,
                TimedMode::CLoadTags,
            ] {
                let r = run(mode, density);
                assert!(
                    ideal.cycles <= r.cycles,
                    "ideal {} > {mode:?} {} at density {density}",
                    ideal.cycles,
                    r.cycles
                );
            }
        }
    }

    #[test]
    fn revocation_counts_match_untimed_sweep() {
        let (dump, shadow) = image(0.5);
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        let timed = timed_sweep(&dump, &shadow, &mut m, TimedMode::Full);
        // Untimed reference sweep on a copy.
        let mut dump2 = dump.clone();
        let mut total = crate::SweepStats::default();
        for img in dump2.segments_mut() {
            total += crate::Sweeper::new(crate::Kernel::Wide).sweep_segment(&mut img.mem, &shadow);
        }
        assert_eq!(timed.caps_revoked, total.caps_revoked);
        assert_eq!(timed.caps_inspected, total.caps_inspected);
    }

    #[test]
    fn dump_is_not_mutated_by_timing() {
        let (dump, shadow) = image(0.5);
        let before = dump.stats();
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        timed_sweep(&dump, &shadow, &mut m, TimedMode::Full);
        assert_eq!(dump.stats(), before);
    }
}
