//! Cycle-accounted sweeps on a modelled machine (paper Fig. 8b).
//!
//! [`timed_sweep`] replays the access stream a revocation sweep issues —
//! data-line reads, `CLoadTags` queries, shadow-map lookups, revocation
//! stores, and the inner loop's data-dependent branches — against a
//! [`simcache::Machine`], yielding the cycle cost of the sweep under each
//! hardware-assist mode. This reproduces the paper's FPGA measurements:
//! page-level skipping tracks the ideal line closely, while `CLoadTags` pays
//! a per-line tag-cache round trip and an unpredictable branch, so it can
//! *lose* to page skipping at high line density (§6.3).
//!
//! The timed path is the *same walk* as the functional path: it runs the
//! [`SweepEngine`](crate::engine::SweepEngine) with a [`SweepCost`] hook
//! that charges each access to the machine, so the visitation order (and
//! therefore the revocation set) cannot diverge from an untimed sweep by
//! construction. Each [`TimedMode`] is just a different
//! [`GranuleFilter`](crate::engine::GranuleFilter) composition.

use simcache::Machine;
use tagmem::{CoreDump, GRANULE_SIZE};

use crate::engine::{
    CLoadTagsLines, DirtyPageList, DumpSource, EveryLine, IdealLines, SweepCost, SweepEngine,
};
use crate::{Kernel, ShadowMap, SweepStats};

/// The hardware configuration a timed sweep models (the four lines of
/// Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedMode {
    /// Read and inspect every line.
    Full,
    /// Skip CapDirty-clean pages; read every line of dirty pages (§3.4.2).
    PteCapDirty,
    /// Page skip + `CLoadTags` per line of dirty pages, reading only lines
    /// with tags (§3.4.1).
    CLoadTags,
    /// Oracle: read exactly the lines containing capabilities, with zero
    /// query overhead (the dotted x = y line of Fig. 8b).
    Ideal,
}

/// Cost accounting from one timed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedSweepReport {
    /// Core cycles consumed.
    pub cycles: u64,
    /// Seconds at the machine's clock.
    pub seconds: f64,
    /// Data bytes actually read.
    pub bytes_read: u64,
    /// `CLoadTags` queries issued.
    pub cloadtags_issued: u64,
    /// Tagged words inspected.
    pub caps_inspected: u64,
    /// Capabilities that would be revoked.
    pub caps_revoked: u64,
}

/// Cycles of pure compute per inspected granule (tag test + shift + mask,
/// §3.3's inner loop on a scalar core).
const INSPECT_CYCLES: u64 = 2;

/// Simulated placement of the shadow map in the machine's address space
/// (only locality matters, not the absolute value).
const SHADOW_BASE: u64 = 0x7000_0000_0000;

/// A [`SweepCost`] that charges every engine access to a
/// [`simcache::Machine`] in visitation order.
struct MachineCost<'a> {
    machine: &'a mut Machine,
    shadow: &'a ShadowMap,
    bytes_read: u64,
    cloadtags_issued: u64,
}

impl SweepCost for MachineCost<'_> {
    fn chunk_read(&mut self, addr: u64, len: u64) {
        self.machine.read(addr, len);
        self.bytes_read += len;
        self.machine.charge((len / GRANULE_SIZE) * INSPECT_CYCLES);
    }

    fn cloadtags(&mut self, addr: u64) {
        self.machine.cloadtags(addr);
        self.cloadtags_issued += 1;
    }

    fn shadow_lookup(&mut self, cap_base: u64) {
        // Shadow-map lookup (usually LLC/L2-resident, §3.2).
        self.machine
            .read(self.shadow.shadow_addr(SHADOW_BASE, cap_base), 1);
    }

    fn revoke_store(&mut self, addr: u64) {
        // Revocation store (the data-dependent store, §3.3).
        self.machine.write(addr, GRANULE_SIZE);
    }

    fn branch_mispredict(&mut self) {
        self.machine.branch_mispredict();
    }
}

/// Replays a revocation sweep of `dump` on `machine` under `mode`,
/// returning its cost. The dump is not mutated (so one image can be timed
/// repeatedly, like the paper's 20-sweep averages, §5.3): the sweep runs
/// on a scratch clone whose revocations are discarded.
///
/// Uses [`Kernel::Simple`] — the per-capability charge order of the scalar
/// loop the paper times. [`timed_sweep_with_kernel`] times other kernels;
/// because every kernel charges the same [`SweepCost`] events for the same
/// image, tier choice moves only the host-side inner-loop cost, never the
/// modelled access stream.
pub fn timed_sweep(
    dump: &CoreDump,
    shadow: &ShadowMap,
    machine: &mut Machine,
    mode: TimedMode,
) -> TimedSweepReport {
    timed_sweep_with_kernel(dump, shadow, machine, mode, Kernel::Simple)
}

/// [`timed_sweep`] with an explicit inner-loop [`Kernel`]. The fast
/// word-at-a-time kernel charges the identical cost events as the
/// reference tiers (its accounting-free shortcuts are disabled whenever a
/// cost model is attached), so swapping kernels never changes the modelled
/// cycle count's inputs.
pub fn timed_sweep_with_kernel(
    dump: &CoreDump,
    shadow: &ShadowMap,
    machine: &mut Machine,
    mode: TimedMode,
    kernel: Kernel,
) -> TimedSweepReport {
    let mut scratch = dump.clone();
    let start_cycles = machine.cycles();
    let mut cost = MachineCost {
        machine,
        shadow,
        bytes_read: 0,
        cloadtags_issued: 0,
    };
    let engine = SweepEngine::new(kernel);
    let dirty = dump.cap_dirty_pages();
    let stats: SweepStats = match mode {
        TimedMode::Full => engine.sweep_costed(
            DumpSource::new(scratch.segments_mut()),
            EveryLine,
            shadow,
            &mut cost,
        ),
        TimedMode::PteCapDirty => engine.sweep_costed(
            DumpSource::new(scratch.segments_mut()),
            (DirtyPageList::new(dirty), EveryLine),
            shadow,
            &mut cost,
        ),
        TimedMode::CLoadTags => engine.sweep_costed(
            DumpSource::new(scratch.segments_mut()),
            (DirtyPageList::new(dirty), CLoadTagsLines::new()),
            shadow,
            &mut cost,
        ),
        TimedMode::Ideal => engine.sweep_costed(
            DumpSource::new(scratch.segments_mut()),
            (DirtyPageList::new(dirty), IdealLines),
            shadow,
            &mut cost,
        ),
    };
    let (bytes_read, cloadtags_issued) = (cost.bytes_read, cost.cloadtags_issued);
    let cycles = machine.cycles() - start_cycles;
    TimedSweepReport {
        cycles,
        seconds: machine.config().cycles_to_seconds(cycles),
        bytes_read,
        cloadtags_issued,
        caps_inspected: stats.caps_inspected,
        caps_revoked: stats.caps_revoked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri::Capability;
    use simcache::MachineConfig;
    use tagmem::{AddressSpace, SegmentKind, LINE_SIZE, PAGE_SIZE};

    const HEAP: u64 = 0x1000_0000;
    const LEN: u64 = 1 << 20; // 256 pages

    /// An image with `density` of its pages holding one capability line.
    fn image(page_density: f64) -> (CoreDump, ShadowMap) {
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, LEN)
            .build();
        let cap = Capability::root_rw(HEAP + 0x40, 64);
        let pages = LEN / PAGE_SIZE;
        let dirty = (pages as f64 * page_density) as u64;
        for p in 0..dirty {
            space.store_cap(HEAP + p * PAGE_SIZE, &cap).unwrap();
        }
        let mut shadow = ShadowMap::new(HEAP, LEN);
        shadow.paint(HEAP + 0x40, 64);
        (CoreDump::capture(&space), shadow)
    }

    fn run(mode: TimedMode, density: f64) -> TimedSweepReport {
        let (dump, shadow) = image(density);
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        timed_sweep(&dump, &shadow, &mut m, mode)
    }

    #[test]
    fn full_sweep_reads_everything() {
        let r = run(TimedMode::Full, 0.25);
        assert_eq!(r.bytes_read, LEN);
        assert!(r.cycles > 0);
        assert_eq!(r.caps_revoked, r.caps_inspected);
    }

    #[test]
    fn pte_skipping_scales_with_page_density() {
        let quarter = run(TimedMode::PteCapDirty, 0.25);
        let full = run(TimedMode::PteCapDirty, 1.0);
        assert_eq!(quarter.bytes_read, LEN / 4);
        assert_eq!(full.bytes_read, LEN);
        assert!(quarter.cycles < full.cycles / 2);
    }

    #[test]
    fn cloadtags_reads_least_but_pays_queries() {
        let r = run(TimedMode::CLoadTags, 0.25);
        // Only one line per dirty page actually holds tags.
        assert_eq!(r.bytes_read, (LEN / PAGE_SIZE / 4) * LINE_SIZE);
        assert_eq!(
            r.cloadtags_issued,
            (LEN / PAGE_SIZE / 4) * (PAGE_SIZE / LINE_SIZE)
        );
        // Still cheaper than reading the dirty pages wholesale here (lines
        // are very sparse inside pages).
        let pte = run(TimedMode::PteCapDirty, 0.25);
        assert!(r.cycles < pte.cycles);
    }

    #[test]
    fn cloadtags_can_lose_when_lines_are_dense() {
        // Build an image where *every* line of every page holds a pointer:
        // CLoadTags pays the query on top of reading everything (§6.3).
        let mut space = AddressSpace::builder()
            .segment(SegmentKind::Heap, HEAP, 1 << 18)
            .build();
        let cap = Capability::root_rw(HEAP + 0x40, 64);
        let mut a = HEAP;
        while a < HEAP + (1 << 18) {
            space.store_cap(a, &cap).unwrap();
            a += LINE_SIZE;
        }
        let shadow = ShadowMap::new(HEAP, 1 << 18);
        let dump = CoreDump::capture(&space);
        let mut m1 = Machine::new(MachineConfig::cheri_fpga_like());
        let pte = timed_sweep(&dump, &shadow, &mut m1, TimedMode::PteCapDirty);
        let mut m2 = Machine::new(MachineConfig::cheri_fpga_like());
        let clt = timed_sweep(&dump, &shadow, &mut m2, TimedMode::CLoadTags);
        assert!(
            clt.cycles > pte.cycles,
            "CLoadTags {} <= PTE {}",
            clt.cycles,
            pte.cycles
        );
    }

    #[test]
    fn ideal_is_lower_bound() {
        for density in [0.1, 0.5, 1.0] {
            let ideal = run(TimedMode::Ideal, density);
            for mode in [
                TimedMode::Full,
                TimedMode::PteCapDirty,
                TimedMode::CLoadTags,
            ] {
                let r = run(mode, density);
                assert!(
                    ideal.cycles <= r.cycles,
                    "ideal {} > {mode:?} {} at density {density}",
                    ideal.cycles,
                    r.cycles
                );
            }
        }
    }

    #[test]
    fn revocation_counts_match_untimed_sweep() {
        let (dump, shadow) = image(0.5);
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        let timed = timed_sweep(&dump, &shadow, &mut m, TimedMode::Full);
        // Untimed reference sweep on a copy.
        let mut dump2 = dump.clone();
        let mut total = crate::SweepStats::default();
        for img in dump2.segments_mut() {
            total += crate::Sweeper::new(crate::Kernel::Wide).sweep_segment(&mut img.mem, &shadow);
        }
        assert_eq!(timed.caps_revoked, total.caps_revoked);
        assert_eq!(timed.caps_inspected, total.caps_inspected);
    }

    #[test]
    fn fast_kernel_charges_identical_costs() {
        // Wide and Fast issue the same two-pass event stream per tag word
        // (all shadow lookups, then all revocation stores, ascending), so
        // their timed reports must be bit-identical — the fast kernel's
        // shortcuts are host-side only, invisible to the machine model.
        for mode in [
            TimedMode::Full,
            TimedMode::PteCapDirty,
            TimedMode::CLoadTags,
            TimedMode::Ideal,
        ] {
            let (dump, shadow) = image(0.5);
            let mut m1 = Machine::new(MachineConfig::cheri_fpga_like());
            let wide = timed_sweep_with_kernel(&dump, &shadow, &mut m1, mode, Kernel::Wide);
            let mut m2 = Machine::new(MachineConfig::cheri_fpga_like());
            let fast = timed_sweep_with_kernel(&dump, &shadow, &mut m2, mode, Kernel::Fast);
            assert_eq!(wide, fast, "{mode:?}");
        }
    }

    #[test]
    fn dump_is_not_mutated_by_timing() {
        let (dump, shadow) = image(0.5);
        let before = dump.stats();
        let mut m = Machine::new(MachineConfig::cheri_fpga_like());
        timed_sweep(&dump, &shadow, &mut m, TimedMode::Full);
        assert_eq!(dump.stats(), before);
    }
}
