//! Property tests for the unified sweep engine: the parallel engine is
//! observationally identical to the sequential one for any worker count,
//! and the hardware-assist filters (PTE CapDirty pages, CLoadTags lines)
//! never change *what* a sweep revokes — only how much it reads.

use cheri::Capability;
use proptest::prelude::*;
use revoker::{
    BackendFilter, BackendKind, CLoadTagsLines, CapDirtyPages, EveryLine, IdealLines, Kernel,
    NoFilter, ParallelSweepEngine, SegmentSource, ShadowMap, SweepEngine, SweepStats,
};
use tagmem::{PageTable, TaggedMemory, GRANULE_SIZE, PAGE_SIZE};

const HEAP: u64 = 0x1000_0000;
const LEN: u64 = 1 << 16;

/// A wider image for the backend-filter tests: 2 MiB spans 32 of the
/// 64 KiB color windows (the 8 colors cycle four times) and two 1 MiB
/// poison regions, so the colored and hierarchical filters actually get
/// pages to skip. The paint window is confined to the first 128 KiB (two
/// color windows, one poison region) to keep the revoked sets narrow.
const BLEN: u64 = 1 << 21;
const PAINT_WINDOW: u64 = 1 << 17;

#[derive(Debug, Clone, Copy)]
struct PlantedCap {
    /// Granule slot the capability is stored in.
    slot: u64,
    /// The object (granule index) it points to.
    obj: u64,
}

fn planted() -> impl Strategy<Value = Vec<PlantedCap>> {
    proptest::collection::vec(
        (0u64..LEN / GRANULE_SIZE, 0u64..LEN / GRANULE_SIZE)
            .prop_map(|(slot, obj)| PlantedCap { slot, obj }),
        0..80,
    )
}

fn painted_granules() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..LEN / GRANULE_SIZE, 0..40)
}

fn kernels() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::Simple),
        Just(Kernel::Unrolled),
        Just(Kernel::Wide),
        Just(Kernel::Fast),
        Just(Kernel::Simd),
    ]
}

fn build_len(len: u64, plants: &[PlantedCap], paint: &[u64]) -> (TaggedMemory, ShadowMap) {
    let mut mem = TaggedMemory::new(HEAP, len);
    for p in plants {
        let cap = Capability::root_rw(HEAP + p.obj * GRANULE_SIZE, GRANULE_SIZE);
        mem.write_cap(HEAP + p.slot * GRANULE_SIZE, &cap)
            .expect("in range");
    }
    let mut shadow = ShadowMap::new(HEAP, len);
    // Dedupe: painting the same granule twice violates the shadow map's
    // strict paint/clear contract (each granule painted once per
    // quarantine generation).
    let paint: std::collections::BTreeSet<u64> = paint.iter().copied().collect();
    for &g in &paint {
        shadow.paint(HEAP + g * GRANULE_SIZE, GRANULE_SIZE);
    }
    (mem, shadow)
}

fn build(plants: &[PlantedCap], paint: &[u64]) -> (TaggedMemory, ShadowMap) {
    build_len(LEN, plants, paint)
}

/// Plants for the wide image: slots anywhere, pointees either anywhere or
/// biased into the paint window (so sweeps actually revoke something).
fn planted_wide() -> impl Strategy<Value = Vec<PlantedCap>> {
    let obj = prop_oneof![0u64..PAINT_WINDOW / GRANULE_SIZE, 0u64..BLEN / GRANULE_SIZE,];
    proptest::collection::vec(
        (0u64..BLEN / GRANULE_SIZE, obj).prop_map(|(slot, obj)| PlantedCap { slot, obj }),
        0..80,
    )
}

fn painted_window_granules() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..PAINT_WINDOW / GRANULE_SIZE, 0..40)
}

/// The page table a real heap would carry for this image: every stored
/// capability noted on the store choke point (CapDirty bit + pointee
/// color/region summaries). Overwritten slots keep their old pointee
/// noted — exactly the over-approximation the live table accumulates.
fn summaries(plants: &[PlantedCap]) -> PageTable {
    let mut table = PageTable::new();
    for p in plants {
        let slot = HEAP + p.slot * GRANULE_SIZE;
        table.note_cap_store(slot).expect("stores not inhibited");
        table.note_cap_pointee(slot, HEAP + p.obj * GRANULE_SIZE);
    }
    table
}

/// Sequential reference sweep of a fresh image.
fn sequential(plants: &[PlantedCap], paint: &[u64], kernel: Kernel) -> (TaggedMemory, SweepStats) {
    let (mut mem, shadow) = build(plants, paint);
    let stats = SweepEngine::new(kernel).sweep(SegmentSource::new(&mut mem), NoFilter, &shadow);
    (mem, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel engine with any worker count in 1..=8 produces
    /// byte-identical memory, tags and `SweepStats` to the sequential
    /// engine — both on the single-chunk (region) plan and on a
    /// line-granular plan large enough to actually split across workers.
    #[test]
    fn parallel_engine_matches_sequential(
        plants in planted(),
        paint in painted_granules(),
        kernel in kernels(),
    ) {
        let (seq_mem, seq_stats) = sequential(&plants, &paint, kernel);
        // Line-granular reference: same revocations, chunked plan.
        let (mut line_mem, shadow) = build(&plants, &paint);
        let line_stats = SweepEngine::new(kernel)
            .sweep(SegmentSource::new(&mut line_mem), EveryLine, &shadow);
        prop_assert_eq!(&seq_mem, &line_mem, "chunking changed the result");

        for workers in 1..=8usize {
            let engine = ParallelSweepEngine::new(kernel, workers);

            let (mut mem, shadow) = build(&plants, &paint);
            let stats = engine.sweep(SegmentSource::new(&mut mem), NoFilter, &shadow);
            prop_assert_eq!(&mem, &seq_mem, "memory diverged at {} workers", workers);
            prop_assert_eq!(stats, seq_stats, "stats diverged at {} workers", workers);

            let (mut mem, shadow) = build(&plants, &paint);
            let stats = engine.sweep(SegmentSource::new(&mut mem), EveryLine, &shadow);
            prop_assert_eq!(&mem, &seq_mem, "line-plan memory diverged at {} workers", workers);
            prop_assert_eq!(stats, line_stats, "line-plan stats diverged at {} workers", workers);
        }
    }

    /// PTE CapDirty page skipping (§3.4.2) revokes exactly the same
    /// capability set as an unfiltered sweep, provided the dirty set covers
    /// every page that took a capability store — which is what the page
    /// table guarantees by construction. Extra (false-positive) dirty
    /// pages are visited harmlessly and re-cleaned.
    #[test]
    fn capdirty_filter_revokes_same_set(
        plants in planted(),
        paint in painted_granules(),
        false_positives in proptest::collection::vec(0u64..LEN / PAGE_SIZE, 0..4),
        kernel in kernels(),
    ) {
        let (seq_mem, seq_stats) = sequential(&plants, &paint, kernel);

        let (mut mem, shadow) = build(&plants, &paint);
        let cap_pages: std::collections::BTreeSet<u64> = mem
            .tagged_addrs()
            .map(|addr| addr & !(PAGE_SIZE - 1))
            .collect();
        let mut table = PageTable::new();
        for addr in mem.tagged_addrs().collect::<Vec<_>>() {
            table.note_cap_store(addr).expect("stores not inhibited");
        }
        for &page in &false_positives {
            table.note_cap_store(HEAP + page * PAGE_SIZE).expect("stores not inhibited");
        }

        let stats = SweepEngine::new(kernel).sweep(
            SegmentSource::new(&mut mem),
            CapDirtyPages::new(&mut table),
            &shadow,
        );
        prop_assert_eq!(&mem, &seq_mem, "filtered sweep revoked a different set");
        prop_assert_eq!(stats.caps_revoked, seq_stats.caps_revoked);
        prop_assert_eq!(stats.caps_inspected, seq_stats.caps_inspected);
        prop_assert!(stats.bytes_swept <= seq_stats.bytes_swept);
        // Visited + skipped covers the whole image.
        prop_assert_eq!(
            stats.bytes_swept / PAGE_SIZE + stats.pages_skipped,
            LEN / PAGE_SIZE
        );
        // Every capability-free page the filter visited got re-cleaned:
        // whatever is still dirty held a capability before the sweep.
        for page in table.cap_dirty_pages() {
            prop_assert!(
                cap_pages.contains(&page),
                "false-positive page {page:#x} not re-cleaned"
            );
        }
    }

    /// CLoadTags line skipping (§3.4.1) — and the ideal-oracle variant —
    /// revoke exactly the same capability set as an unfiltered sweep: the
    /// skip decision reads the very tags the kernel would.
    #[test]
    fn line_filters_revoke_same_set(
        plants in planted(),
        paint in painted_granules(),
        kernel in kernels(),
    ) {
        let (seq_mem, seq_stats) = sequential(&plants, &paint, kernel);

        let (mut mem, shadow) = build(&plants, &paint);
        let stats = SweepEngine::new(kernel).sweep(
            SegmentSource::new(&mut mem),
            CLoadTagsLines::new(),
            &shadow,
        );
        prop_assert_eq!(&mem, &seq_mem, "CLoadTags sweep revoked a different set");
        prop_assert_eq!(stats.caps_revoked, seq_stats.caps_revoked);
        prop_assert_eq!(stats.caps_inspected, seq_stats.caps_inspected);

        let (mut mem, shadow) = build(&plants, &paint);
        let ideal = SweepEngine::new(kernel).sweep(
            SegmentSource::new(&mut mem),
            IdealLines,
            &shadow,
        );
        prop_assert_eq!(&mem, &seq_mem, "ideal-lines sweep revoked a different set");
        prop_assert_eq!(ideal.caps_revoked, seq_stats.caps_revoked);
        // The oracle reads exactly the capability-bearing lines.
        prop_assert_eq!(
            ideal.lines_skipped + ideal.bytes_swept / tagmem::LINE_SIZE,
            LEN / tagmem::LINE_SIZE
        );
    }

    /// Filtered sweeps behave identically under the parallel engine too:
    /// the plan is built by the same filter walk, so worker count cannot
    /// change which chunks are skipped.
    #[test]
    fn parallel_filtered_matches_sequential_filtered(
        plants in planted(),
        paint in painted_granules(),
        workers in 2..=8usize,
    ) {
        let (mut seq_mem, shadow) = build(&plants, &paint);
        let seq = SweepEngine::new(Kernel::Wide).sweep(
            SegmentSource::new(&mut seq_mem),
            CLoadTagsLines::new(),
            &shadow,
        );

        let (mut par_mem, shadow) = build(&plants, &paint);
        let par = ParallelSweepEngine::new(Kernel::Wide, workers).sweep(
            SegmentSource::new(&mut par_mem),
            CLoadTagsLines::new(),
            &shadow,
        );
        prop_assert_eq!(&par_mem, &seq_mem);
        prop_assert_eq!(par, seq);
    }

    /// The no-tagged-cap-to-reused-granule invariant is backend-blind:
    /// every [`BackendFilter`] (stock CapDirty, colored page summaries,
    /// hierarchical region summaries) leaves byte-identical memory to the
    /// unfiltered sweep — the skipped pages provably held no capability
    /// into the painted set — for any kernel and any worker count.
    #[test]
    fn backend_filters_revoke_same_set(
        plants in planted_wide(),
        paint in painted_window_granules(),
        kernel in kernels(),
        workers in 1..=8usize,
    ) {
        let (mut seq_mem, shadow) = build_len(BLEN, &plants, &paint);
        let seq_stats = SweepEngine::new(kernel)
            .sweep(SegmentSource::new(&mut seq_mem), NoFilter, &shadow);

        for kind in BackendKind::ALL {
            // Sequential, through the backend's epoch filter.
            let (mut mem, shadow) = build_len(BLEN, &plants, &paint);
            let mut table = summaries(&plants);
            let filter = BackendFilter::for_epoch(kind, true, &mut table, &shadow);
            let stats = SweepEngine::new(kernel)
                .sweep(SegmentSource::new(&mut mem), filter, &shadow);
            prop_assert_eq!(
                &mem, &seq_mem,
                "{:?} backend revoked a different set", kind
            );
            prop_assert_eq!(stats.caps_revoked, seq_stats.caps_revoked);
            prop_assert!(stats.caps_inspected <= seq_stats.caps_inspected);
            prop_assert!(stats.bytes_swept <= seq_stats.bytes_swept);
            // Pages the filter visited but found capability-free had their
            // summaries purged: whatever stayed dirty really holds caps.
            for page in table.cap_dirty_pages() {
                prop_assert!(
                    plants.iter().any(|p| (HEAP + p.slot * GRANULE_SIZE)
                        & !(PAGE_SIZE - 1) == page),
                    "{:?}: dirty page {page:#x} holds no capability", kind
                );
            }

            // Parallel at the sampled worker count: same memory, same
            // revocations (the plan is built by the same filter walk).
            let (mut mem, shadow) = build_len(BLEN, &plants, &paint);
            let mut table = summaries(&plants);
            let filter = BackendFilter::for_epoch(kind, true, &mut table, &shadow);
            let par = ParallelSweepEngine::new(kernel, workers)
                .sweep(SegmentSource::new(&mut mem), filter, &shadow);
            prop_assert_eq!(
                &mem, &seq_mem,
                "{:?} backend diverged at {} workers", kind, workers
            );
            prop_assert_eq!(par, stats, "{:?} stats diverged at {} workers", kind, workers);
        }
    }
}
