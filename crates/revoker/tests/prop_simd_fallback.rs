//! Property tests for [`Kernel::Simd`]'s guaranteed-equivalent fallbacks.
//!
//! Two guarantees live here:
//!
//! * **Forced scalar fallback** — with the `force_scalar_kernel` test hook
//!   armed, the simd kernel must produce byte-identical memory and stats
//!   to its own vector path (and to [`Kernel::Wide`]), across filters and
//!   worker counts. The hook is process-global (the parallel engine's
//!   scoped workers must observe it), so this lives in its own integration
//!   binary: no other test in this process runs concurrently and the hook
//!   cannot leak into unrelated equivalence tests.
//! * **Identical `SweepCost` charges** — a costed simd sweep must replay
//!   the exact scalar access stream: every `SweepCost` hook invocation, in
//!   order, with the same operands as [`Kernel::Fast`].
//!
//! Together these pin the dispatch contract in `kernel_simd`: costed or
//! forced-scalar sweeps are the fast kernel, bit for bit and charge for
//! charge.

use cheri::Capability;
use proptest::prelude::*;
use revoker::{
    force_scalar_kernel, BackendFilter, BackendKind, EveryLine, Kernel, NoFilter,
    ParallelSweepEngine, SegmentSource, ShadowMap, SweepCost, SweepEngine,
};
use tagmem::{PageTable, TaggedMemory, GRANULE_SIZE};

const HEAP: u64 = 0x1000_0000;
const LEN: u64 = 1 << 17;

#[derive(Debug, Clone, Copy)]
struct PlantedCap {
    slot: u64,
    obj: u64,
}

fn planted() -> impl Strategy<Value = Vec<PlantedCap>> {
    proptest::collection::vec(
        (0u64..LEN / GRANULE_SIZE, 0u64..LEN / GRANULE_SIZE)
            .prop_map(|(slot, obj)| PlantedCap { slot, obj }),
        0..80,
    )
}

fn painted_granules() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..LEN / GRANULE_SIZE, 0..40)
}

fn build(plants: &[PlantedCap], paint: &[u64]) -> (TaggedMemory, ShadowMap) {
    let mut mem = TaggedMemory::new(HEAP, LEN);
    for p in plants {
        let cap = Capability::root_rw(HEAP + p.obj * GRANULE_SIZE, GRANULE_SIZE);
        mem.write_cap(HEAP + p.slot * GRANULE_SIZE, &cap)
            .expect("in range");
    }
    let mut shadow = ShadowMap::new(HEAP, LEN);
    let paint: std::collections::BTreeSet<u64> = paint.iter().copied().collect();
    for &g in &paint {
        shadow.paint(HEAP + g * GRANULE_SIZE, GRANULE_SIZE);
    }
    (mem, shadow)
}

fn summaries(plants: &[PlantedCap]) -> PageTable {
    let mut table = PageTable::new();
    for p in plants {
        let slot = HEAP + p.slot * GRANULE_SIZE;
        table.note_cap_store(slot).expect("stores not inhibited");
        table.note_cap_pointee(slot, HEAP + p.obj * GRANULE_SIZE);
    }
    table
}

/// Records every [`SweepCost`] hook invocation, in order, with operands.
#[derive(Debug, Default, PartialEq, Eq)]
struct RecordingCost(Vec<(&'static str, u64, u64)>);

impl SweepCost for RecordingCost {
    fn chunk_read(&mut self, addr: u64, len: u64) {
        self.0.push(("chunk_read", addr, len));
    }
    fn cloadtags(&mut self, addr: u64) {
        self.0.push(("cloadtags", addr, 0));
    }
    fn shadow_lookup(&mut self, cap_base: u64) {
        self.0.push(("shadow_lookup", cap_base, 0));
    }
    fn revoke_store(&mut self, addr: u64) {
        self.0.push(("revoke_store", addr, 0));
    }
    fn branch_mispredict(&mut self) {
        self.0.push(("branch_mispredict", 0, 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With the scalar fallback forced, simd still matches wide (and its
    /// own unforced vector results) bit for bit — sequentially, in
    /// parallel at 1..=8 workers, and under every backend filter.
    #[test]
    fn forced_scalar_simd_matches_wide(
        plants in planted(),
        paint in painted_granules(),
        workers in 1..=8usize,
    ) {
        let (mut wide_mem, shadow) = build(&plants, &paint);
        let wide_stats = SweepEngine::new(Kernel::Wide)
            .sweep(SegmentSource::new(&mut wide_mem), NoFilter, &shadow);

        // Unforced simd first (vector path where the host supports it).
        let (mut vec_mem, shadow) = build(&plants, &paint);
        let vec_stats = SweepEngine::new(Kernel::Simd)
            .sweep(SegmentSource::new(&mut vec_mem), NoFilter, &shadow);
        prop_assert_eq!(&vec_mem, &wide_mem, "vector simd diverged from wide");
        prop_assert_eq!(vec_stats, wide_stats);

        force_scalar_kernel(true);
        let outcome = (|| -> Result<(), proptest::test_runner::TestCaseError> {
            let (mut mem, shadow) = build(&plants, &paint);
            let stats = SweepEngine::new(Kernel::Simd)
                .sweep(SegmentSource::new(&mut mem), NoFilter, &shadow);
            prop_assert_eq!(&mem, &wide_mem, "forced-scalar simd diverged from wide");
            prop_assert_eq!(stats, wide_stats);

            let (mut mem, shadow) = build(&plants, &paint);
            let stats = ParallelSweepEngine::new(Kernel::Simd, workers)
                .sweep(SegmentSource::new(&mut mem), EveryLine, &shadow);
            prop_assert_eq!(
                &mem, &wide_mem,
                "forced-scalar parallel simd diverged at {} workers", workers
            );
            prop_assert_eq!(stats.caps_revoked, wide_stats.caps_revoked);
            prop_assert_eq!(stats.caps_inspected, wide_stats.caps_inspected);

            for kind in BackendKind::ALL {
                let (mut ref_mem, shadow) = build(&plants, &paint);
                let mut ref_table = summaries(&plants);
                let ref_stats = SweepEngine::new(Kernel::Wide).sweep(
                    SegmentSource::new(&mut ref_mem),
                    BackendFilter::for_epoch(kind, true, &mut ref_table, &shadow),
                    &shadow,
                );
                let (mut mem, shadow) = build(&plants, &paint);
                let mut table = summaries(&plants);
                let stats = SweepEngine::new(Kernel::Simd).sweep(
                    SegmentSource::new(&mut mem),
                    BackendFilter::for_epoch(kind, true, &mut table, &shadow),
                    &shadow,
                );
                prop_assert_eq!(&mem, &ref_mem, "forced-scalar {:?} simd diverged", kind);
                prop_assert_eq!(stats, ref_stats);
            }
            Ok(())
        })();
        force_scalar_kernel(false);
        outcome?;
    }

    /// A costed simd sweep charges exactly the hooks, in exactly the
    /// order, with exactly the operands of a costed fast sweep (and both
    /// report the stats the wide reference does).
    #[test]
    fn costed_simd_charges_match_fast(
        plants in planted(),
        paint in painted_granules(),
    ) {
        let (mut fast_mem, shadow) = build(&plants, &paint);
        let mut fast_cost = RecordingCost::default();
        let fast_stats = SweepEngine::new(Kernel::Fast).sweep_costed(
            SegmentSource::new(&mut fast_mem),
            EveryLine,
            &shadow,
            &mut fast_cost,
        );

        let (mut simd_mem, shadow) = build(&plants, &paint);
        let mut simd_cost = RecordingCost::default();
        let simd_stats = SweepEngine::new(Kernel::Simd).sweep_costed(
            SegmentSource::new(&mut simd_mem),
            EveryLine,
            &shadow,
            &mut simd_cost,
        );

        prop_assert_eq!(&simd_mem, &fast_mem, "costed simd revoked a different set");
        prop_assert_eq!(simd_stats, fast_stats);
        prop_assert_eq!(
            simd_cost, fast_cost,
            "costed simd charged a different access stream"
        );
    }
}
