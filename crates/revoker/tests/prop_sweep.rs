//! Property tests for the revocation machinery: all kernels compute the
//! same result, sweeps are precise (revoke exactly the painted bases), and
//! shadow-map painting matches a reference implementation.

use cheri::Capability;
use proptest::prelude::*;
use revoker::{Kernel, ShadowMap, Sweeper};
use tagmem::{TaggedMemory, GRANULE_SIZE};

const HEAP: u64 = 0x1000_0000;
const LEN: u64 = 1 << 16;

#[derive(Debug, Clone, Copy)]
struct PlantedCap {
    /// Granule slot the capability is stored in.
    slot: u64,
    /// The object (granule index) it points to.
    obj: u64,
}

fn planted() -> impl Strategy<Value = Vec<PlantedCap>> {
    proptest::collection::vec(
        (0u64..LEN / GRANULE_SIZE, 0u64..LEN / GRANULE_SIZE)
            .prop_map(|(slot, obj)| PlantedCap { slot, obj }),
        0..80,
    )
}

fn painted_granules() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..LEN / GRANULE_SIZE, 0..40)
}

fn build(plants: &[PlantedCap], paint: &[u64]) -> (TaggedMemory, ShadowMap) {
    let mut mem = TaggedMemory::new(HEAP, LEN);
    for p in plants {
        let cap = Capability::root_rw(HEAP + p.obj * GRANULE_SIZE, GRANULE_SIZE);
        mem.write_cap(HEAP + p.slot * GRANULE_SIZE, &cap)
            .expect("in range");
    }
    let mut shadow = ShadowMap::new(HEAP, LEN);
    // Dedupe: painting the same granule twice violates the shadow map's
    // strict paint/clear contract (each granule painted once per
    // quarantine generation).
    let paint: std::collections::BTreeSet<u64> = paint.iter().copied().collect();
    for &g in &paint {
        shadow.paint(HEAP + g * GRANULE_SIZE, GRANULE_SIZE);
    }
    (mem, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every kernel produces byte-identical post-sweep memory and identical
    /// statistics.
    #[test]
    fn kernels_are_equivalent(plants in planted(), paint in painted_granules()) {
        let kernels = [
            Kernel::Simple,
            Kernel::Unrolled,
            Kernel::Wide,
            Kernel::Parallel { threads: 3 },
        ];
        let mut outcomes = Vec::new();
        for kernel in kernels {
            let (mut mem, shadow) = build(&plants, &paint);
            let stats = Sweeper::new(kernel).sweep_segment(&mut mem, &shadow);
            outcomes.push((mem, stats.caps_inspected, stats.caps_revoked));
        }
        for other in &outcomes[1..] {
            prop_assert_eq!(&outcomes[0].0, &other.0, "memory diverged");
            prop_assert_eq!(outcomes[0].1, other.1);
            prop_assert_eq!(outcomes[0].2, other.2);
        }
    }

    /// Precision: the sweep revokes exactly the capabilities whose base is
    /// painted — no false positives, no false negatives.
    #[test]
    fn sweep_is_precise(plants in planted(), paint in painted_granules()) {
        let (mut mem, shadow) = build(&plants, &paint);
        // Note: later plants may overwrite earlier slots; read ground truth
        // from memory, not from the plant list.
        let ground_truth: Vec<(u64, bool)> = mem
            .tagged_addrs()
            .map(|addr| {
                let cap = mem.read_cap(addr).expect("tagged");
                (addr, shadow.is_painted(cap.base()))
            })
            .collect();
        let expect_revoked = ground_truth.iter().filter(|&&(_, dangling)| dangling).count();

        let stats = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        prop_assert_eq!(stats.caps_revoked as usize, expect_revoked);
        prop_assert_eq!(stats.caps_inspected as usize, ground_truth.len());
        for (addr, dangling) in ground_truth {
            let (word, tag) = mem.read_cap_word(addr).expect("aligned");
            if dangling {
                prop_assert!(!tag, "dangling cap at {addr:#x} survived");
                prop_assert_eq!(word.bits(), 0, "revoked word not zeroed");
            } else {
                prop_assert!(tag, "live cap at {addr:#x} was wrongly revoked");
            }
        }
    }

    /// Sweeping is idempotent: a second sweep finds nothing new.
    #[test]
    fn sweep_is_idempotent(plants in planted(), paint in painted_granules()) {
        let (mut mem, shadow) = build(&plants, &paint);
        Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        let snapshot = mem.clone();
        let again = Sweeper::new(Kernel::Wide).sweep_segment(&mut mem, &shadow);
        prop_assert_eq!(again.caps_revoked, 0);
        prop_assert_eq!(mem, snapshot);
    }

    /// Shadow painting with the optimised wide-store path equals the
    /// bit-at-a-time reference for arbitrary **disjoint** (aligned) range
    /// sets — disjoint because the strict paint/clear contract forbids
    /// repainting a painted granule.
    #[test]
    fn painting_matches_bitwise_reference(
        gaps_lens in proptest::collection::vec((0u64..64, 1u64..512), 0..20)
    ) {
        // Turn (gap, len) pairs into non-overlapping granule runs.
        let mut ranges = Vec::new();
        let mut g = 0u64;
        for &(gap, n) in &gaps_lens {
            let start = g + gap;
            let end = start + n;
            if end > LEN / GRANULE_SIZE {
                break;
            }
            ranges.push((HEAP + start * GRANULE_SIZE, n * GRANULE_SIZE));
            g = end;
        }
        let mut fast = ShadowMap::new(HEAP, LEN);
        let mut slow = ShadowMap::new(HEAP, LEN);
        for &(addr, len) in &ranges {
            fast.paint(addr, len);
            slow.paint_bitwise(addr, len);
        }
        prop_assert_eq!(fast.as_words(), slow.as_words());
        prop_assert_eq!(fast.painted_bytes(), slow.painted_bytes());
        // And clearing with the fast path empties both identically.
        for &(addr, len) in &ranges {
            fast.clear(addr, len);
            slow.clear(addr, len);
        }
        prop_assert_eq!(fast.painted_bytes(), 0);
        prop_assert_eq!(slow.painted_bytes(), 0);
    }
}
