//! Proves the "allocation-free sweep scratch" claim: once a
//! [`revoker::SweepScratch`] has been warmed by one sweep, further
//! steady-state sweeps through the sequential [`revoker::SweepEngine`]
//! perform **zero** heap allocations — the walk, the per-page capability
//! accounting and the revoke inner loop all reuse the scratch's buffers.
//!
//! The proof is a counting `#[global_allocator]`: every `alloc`/`realloc`
//! bumps an atomic, and the measured region asserts the counter does not
//! move. The parallel engine is deliberately out of scope — spawning its
//! scoped worker threads allocates O(workers) per sweep by design (see
//! `ParallelSweepEngine::sweep_scratched` docs).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cheri::Capability;
use revoker::{
    BackendFilter, BackendKind, CLoadTagsLines, EveryLine, Kernel, NoFilter, SegmentSource,
    ShadowMap, SweepEngine, SweepScratch,
};
use tagmem::{PageTable, TaggedMemory};

struct CountingAlloc;

// Per-thread, const-initialised (so reading it from inside the allocator
// never itself allocates): the libtest harness thread allocates
// concurrently with the test thread, so a process-global counter would
// pick up its noise.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations made by *this* thread so far.
fn allocations() -> u64 {
    ALLOCS.with(Cell::get)
}

const BASE: u64 = 0x1000_0000;
const LEN: u64 = 1 << 20;

/// A 1 MiB image with a capability every 256 bytes, a painted stripe in
/// the shadow, and one warm-up sweep already absorbed by `scratch`.
fn warmed(kernel: Kernel, scratch: &mut SweepScratch) -> (TaggedMemory, ShadowMap) {
    let mut mem = TaggedMemory::new(BASE, LEN);
    let cap = Capability::root_rw(BASE, 64);
    let mut addr = BASE;
    while addr < BASE + LEN {
        mem.write_cap(addr, &cap).expect("inside image");
        addr += 256;
    }
    let mut shadow = ShadowMap::new(BASE, LEN);
    // Paint a stripe that does NOT cover the capabilities' base granule,
    // so sweeps keep finding live capabilities to inspect every pass
    // (nothing is revoked, the inner loop stays hot).
    shadow.paint(BASE + 4096, 4096);
    let engine = SweepEngine::new(kernel);
    engine.sweep_scratched(SegmentSource::new(&mut mem), NoFilter, &shadow, scratch);
    (mem, shadow)
}

/// One test function (not several) so no concurrently-running sibling test
/// can bump the process-global counter inside a measured region.
#[test]
fn steady_state_scratched_sweeps_allocate_nothing() {
    for kernel in [Kernel::Wide, Kernel::Fast, Kernel::Simd] {
        let mut scratch = SweepScratch::new();
        let (mut mem, shadow) = warmed(kernel, &mut scratch);
        let engine = SweepEngine::new(kernel);

        // NoFilter steady state.
        let before = allocations();
        let mut inspected = 0u64;
        for _ in 0..8 {
            let stats = engine.sweep_scratched(
                SegmentSource::new(&mut mem),
                NoFilter,
                &shadow,
                &mut scratch,
            );
            inspected += stats.caps_inspected;
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "steady-state NoFilter sweep allocated ({kernel:?})"
        );
        assert!(inspected > 0, "sweeps must have inspected capabilities");

        // Filtered steady state: the line/page span consumers must reuse
        // the scratch too (the hoisted per-page buffers).
        engine.sweep_scratched(
            SegmentSource::new(&mut mem),
            (EveryLine, CLoadTagsLines::new()),
            &shadow,
            &mut scratch,
        );
        let before = allocations();
        for _ in 0..8 {
            engine.sweep_scratched(
                SegmentSource::new(&mut mem),
                (EveryLine, CLoadTagsLines::new()),
                &shadow,
                &mut scratch,
            );
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "steady-state filtered sweep allocated ({kernel:?})"
        );

        // Backend filters (the colored / hierarchical sweep-avoidance page
        // skipping): building the filter from the painted shadow map reads
        // the color/poison masks without allocating, and the page-granular
        // summary checks reuse the same scratch as CapDirty.
        let mut table = PageTable::new();
        let mut addr = BASE;
        while addr < BASE + LEN {
            table.note_cap_store(addr).expect("stores not inhibited");
            table.note_cap_pointee(addr, BASE);
            addr += 256;
        }
        for kind in [BackendKind::Colored, BackendKind::Hierarchical] {
            engine.sweep_scratched(
                SegmentSource::new(&mut mem),
                BackendFilter::for_epoch(kind, true, &mut table, &shadow),
                &shadow,
                &mut scratch,
            );
            let before = allocations();
            let mut inspected = 0u64;
            for _ in 0..8 {
                let stats = engine.sweep_scratched(
                    SegmentSource::new(&mut mem),
                    BackendFilter::for_epoch(kind, true, &mut table, &shadow),
                    &shadow,
                    &mut scratch,
                );
                inspected += stats.caps_inspected;
            }
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "steady-state {kind:?} backend sweep allocated ({kernel:?})"
            );
            assert!(inspected > 0, "backend sweeps must stay on the hot path");
        }
    }
}
