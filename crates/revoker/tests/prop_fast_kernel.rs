//! Property tests pinning the word-at-a-time fast kernel and the vector
//! kernel to the wide reference tier: for any random heap image, paint
//! set, filter and worker count, [`Kernel::Fast`] and [`Kernel::Simd`]
//! revoke exactly the same capability set with exactly the same
//! [`SweepStats`] as [`Kernel::Wide`]. The fast path's shortcuts —
//! partial base-only decode, shadow-word screening, the empty-shadow bulk
//! fall-through — and the simd tier's lane-parallel decode, clean-span
//! skip, and prefetching must be invisible except in time. (The simd
//! tier's *forced scalar fallback* is pinned separately in
//! `prop_simd_fallback.rs`, which owns the process-global test hook.)

use cheri::Capability;
use proptest::prelude::*;
use revoker::{
    BackendFilter, BackendKind, CLoadTagsLines, CapDirtyPages, EveryLine, Kernel, NoFilter,
    ParallelSweepEngine, SegmentSource, ShadowMap, SweepEngine, SweepStats,
};
use tagmem::{PageTable, TaggedMemory, GRANULE_SIZE};

const HEAP: u64 = 0x1000_0000;
const LEN: u64 = 1 << 16;

/// Wider image for the backend-filter pinning test: 2 MiB crosses all 8
/// colors four times and two 1 MiB poison regions; paint stays in the
/// first 128 KiB so the colored/hierarchical filters have pages to skip.
const BLEN: u64 = 1 << 21;
const PAINT_WINDOW: u64 = 1 << 17;

#[derive(Debug, Clone, Copy)]
struct PlantedCap {
    /// Granule slot the capability is stored in.
    slot: u64,
    /// The object (granule index) it points to.
    obj: u64,
}

fn planted() -> impl Strategy<Value = Vec<PlantedCap>> {
    proptest::collection::vec(
        (0u64..LEN / GRANULE_SIZE, 0u64..LEN / GRANULE_SIZE)
            .prop_map(|(slot, obj)| PlantedCap { slot, obj }),
        0..80,
    )
}

fn painted_granules() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..LEN / GRANULE_SIZE, 0..40)
}

/// Plants for the wide image: slots anywhere, pointees either anywhere
/// or biased into the paint window.
fn planted_wide() -> impl Strategy<Value = Vec<PlantedCap>> {
    let obj = prop_oneof![0u64..PAINT_WINDOW / GRANULE_SIZE, 0u64..BLEN / GRANULE_SIZE,];
    proptest::collection::vec(
        (0u64..BLEN / GRANULE_SIZE, obj).prop_map(|(slot, obj)| PlantedCap { slot, obj }),
        0..80,
    )
}

fn painted_window_granules() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..PAINT_WINDOW / GRANULE_SIZE, 0..40)
}

fn build_wide(plants: &[PlantedCap], paint: &[u64]) -> (TaggedMemory, ShadowMap) {
    let mut mem = TaggedMemory::new(HEAP, BLEN);
    for p in plants {
        let cap = Capability::root_rw(HEAP + p.obj * GRANULE_SIZE, GRANULE_SIZE);
        mem.write_cap(HEAP + p.slot * GRANULE_SIZE, &cap)
            .expect("in range");
    }
    let mut shadow = ShadowMap::new(HEAP, BLEN);
    let paint: std::collections::BTreeSet<u64> = paint.iter().copied().collect();
    for &g in &paint {
        shadow.paint(HEAP + g * GRANULE_SIZE, GRANULE_SIZE);
    }
    (mem, shadow)
}

/// The page table a real heap would carry: each stored capability noted
/// at the store choke point (CapDirty bit + pointee summaries).
fn summaries(plants: &[PlantedCap]) -> PageTable {
    let mut table = PageTable::new();
    for p in plants {
        let slot = HEAP + p.slot * GRANULE_SIZE;
        table.note_cap_store(slot).expect("stores not inhibited");
        table.note_cap_pointee(slot, HEAP + p.obj * GRANULE_SIZE);
    }
    table
}

fn build(plants: &[PlantedCap], paint: &[u64]) -> (TaggedMemory, ShadowMap) {
    let mut mem = TaggedMemory::new(HEAP, LEN);
    for p in plants {
        let cap = Capability::root_rw(HEAP + p.obj * GRANULE_SIZE, GRANULE_SIZE);
        mem.write_cap(HEAP + p.slot * GRANULE_SIZE, &cap)
            .expect("in range");
    }
    let mut shadow = ShadowMap::new(HEAP, LEN);
    // Dedupe: the shadow map's strict contract paints each granule once
    // per quarantine generation.
    let paint: std::collections::BTreeSet<u64> = paint.iter().copied().collect();
    for &g in &paint {
        shadow.paint(HEAP + g * GRANULE_SIZE, GRANULE_SIZE);
    }
    (mem, shadow)
}

/// Wide-tier reference sweep of a fresh image under `filter`.
fn reference<F>(plants: &[PlantedCap], paint: &[u64], filter: F) -> (TaggedMemory, SweepStats)
where
    F: revoker::GranuleFilter<TaggedMemory>,
{
    let (mut mem, shadow) = build(plants, paint);
    let stats = SweepEngine::new(Kernel::Wide).sweep(SegmentSource::new(&mut mem), filter, &shadow);
    (mem, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unfiltered and line-granular sweeps: fast == simd == wide, bit for
    /// bit — memory, tags and every stats counter.
    #[test]
    fn fast_matches_wide_sequential(
        plants in planted(),
        paint in painted_granules(),
    ) {
        for kernel in [Kernel::Fast, Kernel::Simd] {
            let (wide_mem, wide_stats) = reference(&plants, &paint, NoFilter);
            let (mut mem, shadow) = build(&plants, &paint);
            let stats = SweepEngine::new(kernel)
                .sweep(SegmentSource::new(&mut mem), NoFilter, &shadow);
            prop_assert_eq!(&mem, &wide_mem, "{:?} kernel revoked a different set", kernel);
            prop_assert_eq!(stats, wide_stats);

            let (wide_mem, wide_stats) = reference(&plants, &paint, EveryLine);
            let (mut mem, shadow) = build(&plants, &paint);
            let stats = SweepEngine::new(kernel)
                .sweep(SegmentSource::new(&mut mem), EveryLine, &shadow);
            prop_assert_eq!(&mem, &wide_mem, "line-granular {:?} sweep diverged", kernel);
            prop_assert_eq!(stats, wide_stats);

            let (wide_mem, wide_stats) = reference(&plants, &paint, CLoadTagsLines::new());
            let (mut mem, shadow) = build(&plants, &paint);
            let stats = SweepEngine::new(kernel)
                .sweep(SegmentSource::new(&mut mem), CLoadTagsLines::new(), &shadow);
            prop_assert_eq!(&mem, &wide_mem, "CLoadTags {:?} sweep diverged", kernel);
            prop_assert_eq!(stats, wide_stats);
        }
    }

    /// CapDirty page filtering composes with the fast kernel exactly as
    /// with the wide one (same dirty set in ⇒ same revocations and same
    /// re-cleaned pages out).
    #[test]
    fn fast_matches_wide_under_capdirty(
        plants in planted(),
        paint in painted_granules(),
    ) {
        let dirty = |mem: &TaggedMemory| {
            let mut table = PageTable::new();
            for addr in mem.tagged_addrs().collect::<Vec<_>>() {
                table.note_cap_store(addr).expect("stores not inhibited");
            }
            table
        };

        let (mut wide_mem, shadow) = build(&plants, &paint);
        let mut wide_table = dirty(&wide_mem);
        let wide_stats = SweepEngine::new(Kernel::Wide).sweep(
            SegmentSource::new(&mut wide_mem),
            CapDirtyPages::new(&mut wide_table),
            &shadow,
        );

        for kernel in [Kernel::Fast, Kernel::Simd] {
            let (mut mem, shadow) = build(&plants, &paint);
            let mut table = dirty(&mem);
            let stats = SweepEngine::new(kernel).sweep(
                SegmentSource::new(&mut mem),
                CapDirtyPages::new(&mut table),
                &shadow,
            );
            prop_assert_eq!(&mem, &wide_mem, "CapDirty {:?} sweep diverged", kernel);
            prop_assert_eq!(stats, wide_stats);
            prop_assert_eq!(
                wide_table.cap_dirty_pages(),
                table.cap_dirty_pages(),
                "{:?} page re-cleaning diverged", kernel
            );
        }
    }

    /// The parallel engine running the fast or simd kernel at any worker
    /// count in 1..=8 matches the sequential wide reference — both
    /// unfiltered and on a chunked line-granular plan.
    #[test]
    fn parallel_fast_matches_wide(
        plants in planted(),
        paint in painted_granules(),
        workers in 1..=8usize,
    ) {
        for kernel in [Kernel::Fast, Kernel::Simd] {
            let (wide_mem, wide_stats) = reference(&plants, &paint, NoFilter);
            let engine = ParallelSweepEngine::new(kernel, workers);

            let (mut mem, shadow) = build(&plants, &paint);
            let stats = engine.sweep(SegmentSource::new(&mut mem), NoFilter, &shadow);
            prop_assert_eq!(
                &mem, &wide_mem,
                "parallel {:?} diverged at {} workers", kernel, workers
            );
            prop_assert_eq!(stats, wide_stats);

            let (line_mem, line_stats) = reference(&plants, &paint, EveryLine);
            let (mut mem, shadow) = build(&plants, &paint);
            let stats = engine.sweep(SegmentSource::new(&mut mem), EveryLine, &shadow);
            prop_assert_eq!(
                &mem, &line_mem,
                "parallel line-plan {:?} diverged at {} workers", kernel, workers
            );
            prop_assert_eq!(stats, line_stats);
        }
    }

    /// The fast and simd kernels behind every [`BackendFilter`] (stock
    /// CapDirty, colored, hierarchical) match the wide reference bit for
    /// bit — memory, stats, and which pages stayed summary-dirty
    /// afterwards — sequentially and at any worker count in 1..=8.
    #[test]
    fn fast_matches_wide_under_backend_filters(
        plants in planted_wide(),
        paint in painted_window_granules(),
        workers in 1..=8usize,
    ) {
        for kind in BackendKind::ALL {
            let (mut wide_mem, shadow) = build_wide(&plants, &paint);
            let mut wide_table = summaries(&plants);
            let wide_stats = SweepEngine::new(Kernel::Wide).sweep(
                SegmentSource::new(&mut wide_mem),
                BackendFilter::for_epoch(kind, true, &mut wide_table, &shadow),
                &shadow,
            );

            for kernel in [Kernel::Fast, Kernel::Simd] {
                let (mut mem, shadow) = build_wide(&plants, &paint);
                let mut table = summaries(&plants);
                let stats = SweepEngine::new(kernel).sweep(
                    SegmentSource::new(&mut mem),
                    BackendFilter::for_epoch(kind, true, &mut table, &shadow),
                    &shadow,
                );
                prop_assert_eq!(&mem, &wide_mem, "{:?} {:?} sweep diverged", kind, kernel);
                prop_assert_eq!(stats, wide_stats);
                prop_assert_eq!(
                    wide_table.cap_dirty_pages(),
                    table.cap_dirty_pages(),
                    "{:?} {:?} summary purging diverged", kind, kernel
                );

                let (mut mem, shadow) = build_wide(&plants, &paint);
                let mut table = summaries(&plants);
                let par = ParallelSweepEngine::new(kernel, workers).sweep(
                    SegmentSource::new(&mut mem),
                    BackendFilter::for_epoch(kind, true, &mut table, &shadow),
                    &shadow,
                );
                prop_assert_eq!(
                    &mem, &wide_mem,
                    "{:?} parallel {:?} diverged at {} workers", kind, kernel, workers
                );
                prop_assert_eq!(par, wide_stats);
            }
        }
    }
}
