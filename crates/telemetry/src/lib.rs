//! Continuous, low-overhead observability for the CHERIvoke runtime.
//!
//! The paper's entire evaluation is a measurement story — free rate,
//! pointer density, sweep rate and quarantine occupancy drive the §6.1.3
//! overhead model — and a revocation service under production traffic is
//! only understandable if exactly those quantities are observable on a
//! *live* run. This crate provides the three layers:
//!
//! * **[`Registry`]** — a lock-free metrics registry. Recording a
//!   [`Counter`], [`Gauge`] or [`LogHistogram`] sample is a single relaxed
//!   atomic RMW; registration (naming a metric) takes a lock once, after
//!   which handles are plain `Arc`s shared by any number of threads.
//!   Handles from a *disabled* registry are `None`-backed: every record
//!   call is one branch and no memory traffic, so instrumentation can stay
//!   compiled into the hot paths permanently.
//! * **Event tracing** — a fixed-capacity ring of structured
//!   [`TelemetryEvent`]s ([`EventKind`]: sweeps, epoch lifecycle,
//!   quarantine seals/drains, foreign sweeps, OOM revocations) for
//!   tailing what the revocation machinery *did*, not just how much.
//! * **Exporters** — deterministic Prometheus text format and JSON
//!   renderings of a [`MetricsSnapshot`], plus a [`PeriodicExporter`]
//!   thread that snapshots a registry on an interval.
//!
//! Snapshots support **delta semantics**: `later.delta(&earlier)` subtracts
//! monotonic counters and histogram buckets while keeping the latest gauge
//! values, which is how a `top`-style viewer derives rates.
//!
//! # Example
//!
//! ```
//! use telemetry::{EventKind, Registry};
//!
//! let registry = Registry::new(64);
//! let sweeps = registry.counter("cvk_sweeps_total");
//! let pause = registry.histogram("cvk_pause_ns");
//! sweeps.inc();
//! pause.record(1500);
//! registry.event(EventKind::Sweep {
//!     bytes_swept: 4096,
//!     caps_inspected: 12,
//!     caps_revoked: 3,
//!     duration_ns: 1500,
//!     workers: 1,
//!     kernel: "wide",
//! });
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["cvk_sweeps_total"], 1);
//! assert!(snap.to_prometheus().contains("cvk_sweeps_total 1"));
//! assert_eq!(registry.recent_events(8).len(), 1);
//!
//! // Disabled telemetry: same call sites, near-zero cost.
//! let off = Registry::disabled();
//! off.counter("cvk_sweeps_total").inc(); // no-op
//! assert!(off.snapshot().counters.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod export;
mod registry;

pub use events::{EventKind, TelemetryEvent};
pub use export::PeriodicExporter;
pub use registry::{
    labeled_name, Counter, Gauge, HistogramSnapshot, LogHistogram, MetricsSnapshot, Registry,
    HIST_BUCKETS,
};
