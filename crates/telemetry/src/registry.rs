//! The lock-free metrics registry: counters, gauges, log2 histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::events::{EventKind, EventRing, TelemetryEvent};

/// Number of log2 buckets in a [`LogHistogram`]: bucket `i` counts samples
/// with `2^i ≤ value < 2^(i+1)` (bucket 0 also absorbs 0), covering the
/// whole `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// Folds one label into a Prometheus-style series name:
/// `labeled_name("cvk_fleet_mallocs_total", "tenant", "17")` →
/// `cvk_fleet_mallocs_total{tenant="17"}`. The registry keys metrics by
/// this full series name, so each label value gets its own cell while
/// the exporters render it as a conventionally-labelled series.
pub fn labeled_name(name: &str, label: &str, value: &str) -> String {
    format!("{name}{{{label}=\"{value}\"}}")
}

/// A monotonically increasing counter. Cheap to clone; clones share the
/// same cell. A default-constructed (or disabled-registry) handle is a
/// no-op whose `add` is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An enabled counter not attached to any registry.
    pub fn standalone() -> Counter {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A permanently disabled handle (same as `Counter::default()`).
    pub fn disabled() -> Counter {
        Counter(None)
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// An instantaneous quantity. Updates are *deltas* (`add`/`sub`), so
/// several instrumented components — e.g. every shard of a sharded heap —
/// can share one gauge and the reading aggregates correctly.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// An enabled gauge not attached to any registry.
    pub fn standalone() -> Gauge {
        Gauge(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A permanently disabled handle (same as `Gauge::default()`).
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Raises the gauge by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lowers the gauge by `n`. Balanced add/sub sequences keep the value
    /// exact under concurrency (wrapping two's-complement arithmetic, no
    /// lost updates).
    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Applies a signed delta.
    #[inline]
    pub fn offset(&self, delta: i64) {
        if delta >= 0 {
            self.add(delta as u64);
        } else {
            self.sub(delta.unsigned_abs());
        }
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A lock-free log2-bucketed histogram: recording is two relaxed atomic
/// adds (bucket + sum). Values are unit-agnostic; the revocation runtime
/// records pause/sweep durations in nanoseconds and sizes in bytes.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram(Option<Arc<HistCells>>);

impl LogHistogram {
    /// An enabled histogram not attached to any registry.
    pub fn standalone() -> LogHistogram {
        LogHistogram(Some(Arc::new(HistCells::default())))
    }

    /// An enabled histogram (alias of [`LogHistogram::standalone`], kept
    /// for call sites that predate the registry).
    pub fn new() -> LogHistogram {
        LogHistogram::standalone()
    }

    /// A permanently disabled handle (same as `LogHistogram::default()`).
    pub fn disabled() -> LogHistogram {
        LogHistogram(None)
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cells) = &self.0 {
            let bucket = 63 - value.max(1).leading_zeros() as usize;
            cells.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        if let Some(cells) = &self.0 {
            for (c, b) in snap.counts.iter_mut().zip(&cells.buckets) {
                *c = b.load(Ordering::Relaxed);
            }
            snap.sum = cells.sum.load(Ordering::Relaxed);
        }
        snap
    }
}

/// An immutable copy of a [`LogHistogram`]'s buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `counts[i]` samples fell in `[2^i, 2^(i+1))`.
    pub counts: [u64; HIST_BUCKETS],
    /// Sum of all recorded values (exact, unlike the bucket ceilings).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded value (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// An upper bound (bucket ceiling) on the `p`-th percentile sample.
    /// `p` in `[0, 100]`. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_ceiling(i);
            }
        }
        u64::MAX
    }

    /// Nanosecond-flavoured alias of [`HistogramSnapshot::percentile`]
    /// (the revocation runtime records pauses in ns).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.percentile(p)
    }

    /// Ceiling of the largest recorded sample.
    pub fn max_value(&self) -> u64 {
        self.percentile(100.0)
    }

    /// Nanosecond-flavoured alias of [`HistogramSnapshot::max_value`].
    pub fn max_ns(&self) -> u64 {
        self.max_value()
    }

    /// The samples recorded *since* `earlier` (per-bucket and sum
    /// saturating subtraction).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (o, e) in out.counts.iter_mut().zip(&earlier.counts) {
            *o = o.saturating_sub(*e);
        }
        out.sum = out.sum.saturating_sub(earlier.sum);
        out
    }
}

/// The inclusive upper bound of histogram bucket `i`.
pub(crate) fn bucket_ceiling(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LogHistogram>,
}

#[derive(Debug)]
struct RegistryInner {
    metrics: Mutex<Metrics>,
    events: EventRing,
    started: Instant,
}

/// The metrics registry. Cheap to clone (an `Arc`); a
/// default-constructed registry is **disabled**: every handle it returns
/// is a no-op and [`Registry::snapshot`] is empty, so instrumented
/// components carry their telemetry unconditionally and pay one branch
/// per record when nobody is watching.
///
/// Metric registration is idempotent: asking twice for the same name
/// returns handles sharing one cell — which is how the service's shards
/// aggregate into service-wide metrics without coordination.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled registry whose event ring keeps the most recent
    /// `event_capacity` events.
    pub fn new(event_capacity: usize) -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                metrics: Mutex::new(Metrics::default()),
                events: EventRing::new(event_capacity),
                started: Instant::now(),
            })),
        }
    }

    /// A disabled registry (same as `Registry::default()`).
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn metrics(&self) -> Option<MutexGuard<'_, Metrics>> {
        let inner = self.inner.as_ref()?;
        Some(match inner.metrics.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        })
    }

    /// The counter for the labelled series `name{label="value"}`,
    /// registering it on first use. Labelled registration is the same
    /// idempotent named registration — the label is folded into the
    /// series name ([`labeled_name`]), so two handles for the same
    /// `(name, label, value)` share one cell and snapshots/exports key
    /// each label value separately (the fleet's per-tenant metrics).
    pub fn counter_labeled(&self, name: &str, label: &str, value: &str) -> Counter {
        self.counter(&labeled_name(name, label, value))
    }

    /// The gauge for the labelled series `name{label="value"}` (see
    /// [`Registry::counter_labeled`] for the label semantics).
    pub fn gauge_labeled(&self, name: &str, label: &str, value: &str) -> Gauge {
        self.gauge(&labeled_name(name, label, value))
    }

    /// The histogram for the labelled series `name{label="value"}` (see
    /// [`Registry::counter_labeled`] for the label semantics).
    pub fn histogram_labeled(&self, name: &str, label: &str, value: &str) -> LogHistogram {
        self.histogram(&labeled_name(name, label, value))
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        match self.metrics() {
            None => Counter::disabled(),
            Some(mut m) => m
                .counters
                .entry(name.to_string())
                .or_insert_with(Counter::standalone)
                .clone(),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.metrics() {
            None => Gauge::disabled(),
            Some(mut m) => m
                .gauges
                .entry(name.to_string())
                .or_insert_with(Gauge::standalone)
                .clone(),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> LogHistogram {
        match self.metrics() {
            None => LogHistogram::disabled(),
            Some(mut m) => m
                .histograms
                .entry(name.to_string())
                .or_insert_with(LogHistogram::standalone)
                .clone(),
        }
    }

    /// Records a structured event (dropped when disabled; the ring drops
    /// its oldest event when full).
    pub fn event(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let at_ns = inner.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            inner.events.record(at_ns, kind);
        }
    }

    /// The most recent `n` events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<TelemetryEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.events.recent(n))
    }

    /// Events with sequence number `> seq`, oldest first (tailing API:
    /// pass the last sequence number you saw).
    pub fn events_since(&self, seq: u64) -> Vec<TelemetryEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.events.since(seq))
    }

    /// Events dropped because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.events.dropped())
    }

    /// A point-in-time copy of every registered metric (empty when
    /// disabled). Deterministic: metrics are keyed by name in sorted
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(m) = self.metrics() {
            for (name, c) in &m.counters {
                snap.counters.insert(name.clone(), c.get());
            }
            for (name, g) in &m.gauges {
                snap.gauges.insert(name.clone(), g.get());
            }
            for (name, h) in &m.histograms {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
        }
        snap
    }
}

/// A point-in-time copy of a [`Registry`]'s metrics, keyed by name in
/// sorted order (snapshots of the same state render identically).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram buckets.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// What happened *between* `earlier` and `self`: counters and
    /// histograms subtract (saturating; a metric absent from `earlier`
    /// keeps its full value), gauges keep their latest reading.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &mut out.counters {
            if let Some(e) = earlier.counters.get(name) {
                *v = v.saturating_sub(*e);
            }
        }
        for (name, h) in &mut out.histograms {
            if let Some(e) = earlier.histograms.get(name) {
                *h = h.delta(e);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let r = Registry::new(8);
        let c = r.counter("c");
        let g = r.gauge("g");
        c.inc();
        c.add(4);
        g.add(100);
        g.sub(30);
        g.offset(-20);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 50);
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 50);
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new(8);
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 2);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let r = Registry::disabled();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.inc();
        h.record(42);
        r.event(EventKind::OomRevocation { shard: 0 });
        assert!(!c.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(r.snapshot().counters.is_empty());
        assert!(r.recent_events(10).is_empty());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LogHistogram::new();
        h.record(0); // bucket 0 (absorbs 0)
        h.record(1); // bucket 0
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // bucket 63
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[10], 1);
        assert_eq!(s.counts[63], 1);
        assert_eq!(s.sum, 1028u64.wrapping_add(u64::MAX)); // sum wraps at u64
    }

    #[test]
    fn percentiles_are_bucket_ceilings() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(100_000); // bucket 16
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 128);
        assert_eq!(s.percentile(99.0), 128);
        assert_eq!(s.percentile(100.0), 1 << 17);
        assert_eq!(s.max_value(), 1 << 17);
        assert_eq!(s.max_ns(), 1 << 17);
        // Top bucket's ceiling saturates instead of overflowing.
        let top = LogHistogram::new();
        top.record(u64::MAX);
        assert_eq!(top.snapshot().max_value(), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_delta_subtracts_monotonics_keeps_gauges() {
        let r = Registry::new(8);
        let c = r.counter("ops");
        let g = r.gauge("live");
        let h = r.histogram("lat");
        c.add(10);
        g.add(100);
        h.record(5);
        let t0 = r.snapshot();
        c.add(7);
        g.sub(40);
        h.record(5);
        h.record(900);
        let d = r.snapshot().delta(&t0);
        assert_eq!(d.counters["ops"], 7);
        assert_eq!(d.gauges["live"], 60);
        assert_eq!(d.histograms["lat"].count(), 2);
    }

    #[test]
    fn handles_share_cells_across_clones_and_threads() {
        let r = Registry::new(8);
        let c = r.counter("shared");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("shared").get(), 4000);
    }
}
