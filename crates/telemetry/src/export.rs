//! Deterministic exporters: Prometheus text format, JSON, and a periodic
//! exporter thread.
//!
//! Both renderings iterate the snapshot's sorted maps and emit only
//! integer values, so two snapshots of the same state produce *identical*
//! text — the property the exporter unit tests and the CI metrics
//! artifact rely on.

use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::{bucket_ceiling, HistogramSnapshot, MetricsSnapshot, Registry, HIST_BUCKETS};

/// Splits a registry series name into its metric base name and the inner
/// label list, if the series was registered through
/// [`crate::labeled_name`]: `cvk_x{tenant="3"}` → `("cvk_x",
/// Some("tenant=\"3\""))`, a plain `cvk_x` → `("cvk_x", None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(open), true) => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Counters and gauges are plain samples; histograms expand to
    /// cumulative `_bucket{le="..."}` samples (only non-empty buckets,
    /// plus the `+Inf` catch-all) with `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let (base, _) = split_labels(name);
            out.push_str(&format!("# TYPE {base} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let (base, _) = split_labels(name);
            out.push_str(&format!("# TYPE {base} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            // A labelled histogram series (`crate::labeled_name`) folds
            // its labels in front of the exposition `le` label.
            let le_prefix = labels.map_or(String::new(), |l| format!("{l},"));
            out.push_str(&format!("# TYPE {base} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let le = bucket_ceiling(i);
                out.push_str(&format!(
                    "{base}_bucket{{{le_prefix}le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "{base}_bucket{{{le_prefix}le=\"+Inf\"}} {cumulative}\n{base}_sum{labels} {}\n\
                 {base}_count{labels} {cumulative}\n",
                h.sum,
                labels = labels.map_or(String::new(), |l| format!("{{{l}}}")),
            ));
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`
    /// and `histograms` members (histograms carry sparse `buckets` keyed
    /// by ceiling, plus `sum` and `count`). Keys are emitted in sorted
    /// order and all values are integers, so the rendering is
    /// deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_scalar_map(&mut out, self.counters.iter());
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(&mut out, self.gauges.iter());
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json_string(name), hist_json(h)));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_scalar_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, &'a u64)>) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {v}", json_string(name)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn hist_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{\"buckets\": {");
    let mut first = true;
    for i in 0..HIST_BUCKETS {
        if h.counts[i] == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{}\": {}", bucket_ceiling(i), h.counts[i]));
    }
    out.push_str(&format!(
        "}}, \"sum\": {}, \"count\": {}}}",
        h.sum,
        h.count()
    ));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A background thread that snapshots a [`Registry`] on a fixed interval
/// and hands each snapshot to a callback (write to a file, push to a
/// socket, print). The thread stops when the exporter is dropped.
#[derive(Debug)]
pub struct PeriodicExporter {
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl PeriodicExporter {
    /// Spawns the exporter thread. `emit` runs on that thread once per
    /// `interval` (and once more on shutdown with the final snapshot).
    pub fn spawn<F>(registry: Registry, interval: Duration, mut emit: F) -> PeriodicExporter
    where
        F: FnMut(MetricsSnapshot) + Send + 'static,
    {
        let (stop, stopped) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("cvk-telemetry-export".into())
            .spawn(move || loop {
                match stopped.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => emit(registry.snapshot()),
                    _ => {
                        emit(registry.snapshot());
                        return;
                    }
                }
            })
            .expect("spawn telemetry exporter thread");
        PeriodicExporter {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for PeriodicExporter {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn sample_registry() -> Registry {
        let r = Registry::new(16);
        r.counter("cvk_sweeps_total").add(3);
        r.counter("cvk_mallocs_total").add(100);
        r.gauge("cvk_quarantined_bytes").add(4096);
        let h = r.histogram("cvk_pause_ns");
        h.record(100);
        h.record(100);
        h.record(70_000);
        r
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_complete() {
        let r = sample_registry();
        let a = r.snapshot().to_prometheus();
        let b = r.snapshot().to_prometheus();
        assert_eq!(a, b, "same state must render identically");
        assert!(a.contains("# TYPE cvk_sweeps_total counter\ncvk_sweeps_total 3\n"));
        assert!(a.contains("# TYPE cvk_quarantined_bytes gauge\ncvk_quarantined_bytes 4096\n"));
        // 100 falls in [64,128) -> le=128 (x2); 70_000 in [65536,131072).
        assert!(a.contains("cvk_pause_ns_bucket{le=\"128\"} 2\n"), "{a}");
        assert!(a.contains("cvk_pause_ns_bucket{le=\"131072\"} 3\n"), "{a}");
        assert!(a.contains("cvk_pause_ns_bucket{le=\"+Inf\"} 3\n"), "{a}");
        assert!(a.contains("cvk_pause_ns_sum 70200\n"), "{a}");
        assert!(a.contains("cvk_pause_ns_count 3\n"), "{a}");
        // Counters render before gauges, sorted by name within each kind.
        let mallocs = a.find("cvk_mallocs_total 100").unwrap();
        let sweeps = a.find("cvk_sweeps_total 3").unwrap();
        assert!(mallocs < sweeps);
    }

    #[test]
    fn labelled_series_render_as_labelled_prometheus_samples() {
        let r = Registry::new(16);
        r.counter_labeled("cvk_fleet_mallocs_total", "tenant", "3")
            .add(7);
        r.counter_labeled("cvk_fleet_mallocs_total", "tenant", "11")
            .add(2);
        r.gauge_labeled("cvk_fleet_quarantined_bytes", "tenant", "3")
            .add(512);
        r.histogram_labeled("cvk_fleet_pause_ns", "tenant", "3")
            .record(100);
        let out = r.snapshot().to_prometheus();
        // One TYPE line per series, base name only; samples keep labels.
        assert!(
            out.contains("# TYPE cvk_fleet_mallocs_total counter\ncvk_fleet_mallocs_total{tenant=\"11\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("cvk_fleet_mallocs_total{tenant=\"3\"} 7\n"),
            "{out}"
        );
        assert!(
            out.contains("cvk_fleet_quarantined_bytes{tenant=\"3\"} 512\n"),
            "{out}"
        );
        // Histogram labels fold in front of the exposition `le` label.
        assert!(
            out.contains("cvk_fleet_pause_ns_bucket{tenant=\"3\",le=\"128\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("cvk_fleet_pause_ns_sum{tenant=\"3\"} 100\n"),
            "{out}"
        );
        assert!(
            out.contains("cvk_fleet_pause_ns_count{tenant=\"3\"} 1\n"),
            "{out}"
        );
        // Same (name, label, value) shares one cell.
        assert_eq!(
            r.counter_labeled("cvk_fleet_mallocs_total", "tenant", "3")
                .get(),
            7
        );
    }

    #[test]
    fn json_rendering_is_deterministic_and_sorted() {
        let r = sample_registry();
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b, "same state must render identically");
        assert!(a.contains("\"cvk_sweeps_total\": 3"), "{a}");
        assert!(a.contains("\"cvk_quarantined_bytes\": 4096"), "{a}");
        assert!(a.contains("\"128\": 2"), "{a}");
        assert!(a.contains("\"sum\": 70200, \"count\": 3"), "{a}");
        let mallocs = a.find("cvk_mallocs_total").unwrap();
        let sweeps = a.find("cvk_sweeps_total").unwrap();
        assert!(mallocs < sweeps, "keys must be sorted: {a}");
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let snap = Registry::disabled().snapshot();
        assert_eq!(snap.to_prometheus(), "");
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"histograms\": {}"), "{json}");
    }

    #[test]
    fn json_escapes_metric_names() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn periodic_exporter_emits_and_stops() {
        let r = Registry::new(4);
        r.counter("ticks").inc();
        let emitted = Arc::new(AtomicUsize::new(0));
        let seen = emitted.clone();
        let exporter = PeriodicExporter::spawn(r, Duration::from_millis(5), move |snap| {
            assert_eq!(snap.counters["ticks"], 1);
            seen.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(exporter); // joins the thread; final emit on shutdown
        assert!(emitted.load(Ordering::SeqCst) >= 1);
    }
}
