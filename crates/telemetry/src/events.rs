//! Structured lifecycle events from the revocation machinery.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What happened: one structured record per interesting action of the
/// revocation machinery. Marked `non_exhaustive` so new lifecycle events
/// can be added without breaking downstream matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A sweep pass completed.
    Sweep {
        /// Bytes of address space inspected.
        bytes_swept: u64,
        /// Capabilities examined.
        caps_inspected: u64,
        /// Capabilities found pointing into painted shadow and cleared.
        caps_revoked: u64,
        /// Wall-clock duration of the sweep in nanoseconds.
        duration_ns: u64,
        /// Worker threads the sweep ran on.
        workers: usize,
        /// Stable name of the revoke kernel that executed the sweep
        /// (e.g. `"wide"`, `"fast"`).
        kernel: &'static str,
    },
    /// A revocation epoch opened: quarantine sealed and shadow painted.
    EpochOpened {
        /// Shard the epoch belongs to (0 for a single-heap run).
        shard: usize,
        /// Bytes of quarantine painted into the shadow map.
        painted_bytes: u64,
    },
    /// A revocation epoch retired: sweep done, quarantine returned to
    /// the free bins.
    EpochRetired {
        /// Shard the epoch belonged to (0 for a single-heap run).
        shard: usize,
        /// End-to-end epoch duration in nanoseconds.
        duration_ns: u64,
    },
    /// A shard's open quarantine was sealed for the next epoch.
    QuarantineSealed {
        /// Shard whose quarantine was sealed.
        shard: usize,
        /// Bytes sealed.
        bytes: u64,
        /// Distinct address ranges sealed.
        ranges: u64,
    },
    /// One shard's paint was swept out of *another* shard's memory
    /// (cross-shard capability flow).
    ForeignSweep {
        /// Shard whose quarantine was painted.
        painting_shard: usize,
        /// Shard whose memory was swept.
        swept_shard: usize,
        /// Capabilities revoked in the foreign shard.
        caps_revoked: u64,
    },
    /// Allocation pressure forced a synchronous revocation.
    OomRevocation {
        /// Shard that ran out of memory.
        shard: usize,
    },
    /// A fault-injection point fired (chaos testing; see the
    /// `faultinject` crate).
    FaultInjected {
        /// Stable name of the fault point (`faultinject::FaultPoint::name`).
        point: &'static str,
        /// Shard the fault was injected into (0 when not shard-scoped).
        shard: usize,
    },
    /// A sweep recovered from panicking chunks by retrying them on the
    /// sequential reference kernel.
    SweepRetried {
        /// Chunks that panicked and were retried.
        chunks: u64,
        /// Kernel whose chunks panicked (the retry always runs `"wide"`).
        kernel: &'static str,
    },
    /// The supervisor restarted a dead or stalled background revoker.
    RevokerRestarted {
        /// Generation number of the replacement revoker thread.
        generation: u64,
        /// Why: `"death"` (thread exited) or `"stall"` (watchdog deadline
        /// missed).
        cause: &'static str,
    },
    /// Quarantine overflow or allocation failure forced an emergency
    /// synchronous sweep.
    EmergencySweep {
        /// Shard under memory pressure.
        shard: usize,
    },
    /// A crashed heap was rebuilt from its persisted image and epoch
    /// journal (see the `cherivoke` crate's recovery module).
    Recovery {
        /// Shard that recovered (0 for a standalone heap).
        shard: usize,
        /// The recovery decision: `"none"`, `"reopen-seal"` or
        /// `"roll-forward"`.
        action: &'static str,
        /// Dangling capabilities the roll-forward sweep revoked.
        caps_revoked: u64,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Sweep {
                bytes_swept,
                caps_inspected,
                caps_revoked,
                duration_ns,
                workers,
                kernel,
            } => write!(
                f,
                "sweep {bytes_swept}B inspected={caps_inspected} revoked={caps_revoked} \
                 {duration_ns}ns workers={workers} kernel={kernel}"
            ),
            EventKind::EpochOpened {
                shard,
                painted_bytes,
            } => write!(f, "epoch-open shard={shard} painted={painted_bytes}B"),
            EventKind::EpochRetired { shard, duration_ns } => {
                write!(f, "epoch-retire shard={shard} {duration_ns}ns")
            }
            EventKind::QuarantineSealed {
                shard,
                bytes,
                ranges,
            } => write!(f, "quarantine-seal shard={shard} {bytes}B ranges={ranges}"),
            EventKind::ForeignSweep {
                painting_shard,
                swept_shard,
                caps_revoked,
            } => write!(
                f,
                "foreign-sweep paint={painting_shard} swept={swept_shard} revoked={caps_revoked}"
            ),
            EventKind::OomRevocation { shard } => write!(f, "oom-revocation shard={shard}"),
            EventKind::FaultInjected { point, shard } => {
                write!(f, "fault-injected point={point} shard={shard}")
            }
            EventKind::SweepRetried { chunks, kernel } => {
                write!(f, "sweep-retried chunks={chunks} kernel={kernel}")
            }
            EventKind::RevokerRestarted { generation, cause } => {
                write!(f, "revoker-restarted gen={generation} cause={cause}")
            }
            EventKind::EmergencySweep { shard } => write!(f, "emergency-sweep shard={shard}"),
            EventKind::Recovery {
                shard,
                action,
                caps_revoked,
            } => write!(
                f,
                "recovery shard={shard} action={action} revoked={caps_revoked}"
            ),
        }
    }
}

/// One recorded event: a monotonically increasing sequence number, a
/// registry-relative timestamp, and the [`EventKind`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Sequence number, 1-based and gap-free per registry; use with
    /// `Registry::events_since` to tail without missing or re-reading.
    pub seq: u64,
    /// Nanoseconds since the registry was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}ns #{}] {}", self.at_ns, self.seq, self.kind)
    }
}

/// Fixed-capacity ring of recent events. Writers take a short mutex (the
/// event path is rare — per sweep/epoch, not per alloc); when full the
/// oldest event is dropped and a drop counter incremented.
#[derive(Debug)]
pub(crate) struct EventRing {
    buf: Mutex<VecDeque<TelemetryEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TelemetryEvent>> {
        match self.buf.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub(crate) fn record(&self, at_ns: u64, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut buf = self.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(TelemetryEvent { seq, at_ns, kind });
    }

    pub(crate) fn recent(&self, n: usize) -> Vec<TelemetryEvent> {
        let buf = self.lock();
        let skip = buf.len().saturating_sub(n);
        buf.iter().skip(skip).copied().collect()
    }

    pub(crate) fn since(&self, seq: u64) -> Vec<TelemetryEvent> {
        let buf = self.lock();
        buf.iter().filter(|e| e.seq > seq).copied().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oom(shard: usize) -> EventKind {
        EventKind::OomRevocation { shard }
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.record(i, oom(i as usize));
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[2].seq, 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn recent_returns_tail_oldest_first() {
        let ring = EventRing::new(8);
        for i in 0..4 {
            ring.record(i, oom(0));
        }
        let two = ring.recent(2);
        assert_eq!(two.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn since_tails_by_sequence_number() {
        let ring = EventRing::new(8);
        for i in 0..4 {
            ring.record(i, oom(0));
        }
        let tail = ring.since(2);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
        assert!(ring.since(4).is_empty());
    }

    #[test]
    fn events_render_human_readably() {
        let e = TelemetryEvent {
            seq: 7,
            at_ns: 1234,
            kind: EventKind::Sweep {
                bytes_swept: 4096,
                caps_inspected: 12,
                caps_revoked: 3,
                duration_ns: 1500,
                workers: 2,
                kernel: "fast",
            },
        };
        let s = e.to_string();
        assert!(s.contains("#7"), "{s}");
        assert!(s.contains("sweep 4096B"), "{s}");
        assert!(s.contains("workers=2"), "{s}");
        assert!(s.contains("kernel=fast"), "{s}");
    }
}
