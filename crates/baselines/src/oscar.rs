//! Oscar-style page-permission protection (§7.2).

use workloads::{MechanismBreakdown, Trace, WorkloadHeap};

use crate::common::{BaseAlloc, BaselineCosts};

/// An Oscar-style page-permissions heap.
///
/// Every allocation receives its own **virtual page alias** (so the
/// physical memory can be reused while the stale virtual page is poisoned
/// on free). Faithful consequences (paper §7.2):
///
/// * Costs are **per allocation event** (map an alias) and **per free**
///   (poison/unmap), syscall-scale — so "frequent small allocations can
///   cause performance … overheads to increase enormously".
/// * Each live allocation consumes at least one virtual page plus a page
///   table entry; physical memory is shared via aliasing, so the
///   *physical* footprint overhead is the PTE/VA bookkeeping, not the
///   rounding.
/// * TLB pressure grows with live-allocation count; the model charges a
///   per-event surcharge once the live-object count exceeds TLB reach.
pub struct OscarHeap {
    base: BaseAlloc,
    costs: BaselineCosts,
    mech_seconds: f64,
    live_objects: u64,
    peak_pte_bytes: u64,
}

/// Approximate per-allocation page-table/VA bookkeeping bytes.
const PTE_BYTES: u64 = 64;
/// Live allocations a TLB covers comfortably; above this, every event pays
/// extra for TLB misses.
const TLB_REACH_OBJECTS: u64 = 1536;

impl OscarHeap {
    /// An Oscar model over the trace's heap with default costs.
    pub fn new(trace: &Trace) -> OscarHeap {
        OscarHeap::with_costs(trace, BaselineCosts::default())
    }

    /// An Oscar model with explicit costs.
    pub fn with_costs(trace: &Trace, costs: BaselineCosts) -> OscarHeap {
        OscarHeap {
            base: BaseAlloc::new(trace.heap_bytes),
            costs,
            mech_seconds: 0.0,
            live_objects: 0,
            peak_pte_bytes: 0,
        }
    }

    fn tlb_surcharge(&self) -> f64 {
        if self.live_objects > TLB_REACH_OBJECTS {
            // Each allocator event walks freshly-mapped pages.
            200e-9
        } else {
            0.0
        }
    }
}

impl WorkloadHeap for OscarHeap {
    fn malloc(&mut self, id: u64, size: u64) -> Result<(), String> {
        self.base.malloc(id, size)?;
        self.live_objects += 1;
        self.mech_seconds += self.costs.t_page_alias_s + self.tlb_surcharge();
        self.peak_pte_bytes = self.peak_pte_bytes.max(self.live_objects * PTE_BYTES);
        Ok(())
    }

    fn free(&mut self, id: u64) -> Result<(), String> {
        self.base.free(id)?;
        self.live_objects -= 1;
        self.mech_seconds += self.costs.t_page_unmap_s + self.tlb_surcharge();
        Ok(())
    }

    fn write_ptr(&mut self, _from: u64, _slot: u64, _to: u64) -> Result<(), String> {
        // Oscar instruments nothing per store — its costs are allocator-side.
        Ok(())
    }

    fn mechanism(&self) -> MechanismBreakdown {
        MechanismBreakdown {
            other: self.mech_seconds,
            ..Default::default()
        }
    }

    fn peak_footprint(&self) -> u64 {
        self.base.peak_live() + self.peak_pte_bytes
    }

    fn peak_live(&self) -> u64 {
        self.base.peak_live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{profiles, run_trace, TraceGenerator};

    fn trace(name: &str) -> Trace {
        TraceGenerator::new(profiles::by_name(name).unwrap(), 1.0 / 2048.0, 17).generate()
    }

    #[test]
    fn small_object_churn_is_the_pathology() {
        let churny = trace("omnetpp"); // ~1M small frees/s
        let mut o = OscarHeap::new(&churny);
        let churny_report = run_trace(&mut o, &churny).unwrap();

        let chunky = trace("milc"); // few, huge frees
        let mut o2 = OscarHeap::new(&chunky);
        let chunky_report = run_trace(&mut o2, &chunky).unwrap();

        assert!(
            churny_report.normalized_time > 3.0,
            "omnetpp at ~1M allocs/s × µs-scale syscalls: {churny_report:?}"
        );
        assert!(chunky_report.normalized_time < 1.3, "{chunky_report:?}");
    }

    #[test]
    fn pointer_writes_are_free_for_oscar() {
        let t = trace("bzip2");
        let mut o = OscarHeap::new(&t);
        o.malloc(1, 64).unwrap();
        o.malloc(2, 64).unwrap();
        let before = o.mechanism().other;
        o.write_ptr(1, 0, 2).unwrap();
        assert_eq!(o.mechanism().other, before);
    }

    #[test]
    fn pte_memory_grows_with_live_objects() {
        let t = trace("bzip2");
        let mut o = OscarHeap::new(&t);
        for i in 0..100 {
            o.malloc(i, 64).unwrap();
        }
        assert_eq!(o.peak_footprint() - o.peak_live(), 100 * PTE_BYTES);
    }
}
