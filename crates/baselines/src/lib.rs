//! Comparator temporal-safety systems (paper Figure 5).
//!
//! The paper compares CHERIvoke against four software systems from the
//! literature, using their published SPEC CPU2006 results. Those binaries
//! are not reproducible here, so this crate implements each system's
//! *algorithm* over the same simulated heap and drives it with the same
//! traces, charging calibrated unit costs for the operations each design
//! performs. The goal is the figure's **shape** — who wins, whose
//! pathologies fire on which workloads — not the absolute decimals:
//!
//! * [`BoehmGcHeap`] — Boehm–Demers–Weiser-style conservative mark-sweep
//!   garbage collection: manual frees only drop roots; collection pays a
//!   pointer-chasing mark over the live graph plus a conservative root
//!   scan, and garbage accumulates between collections (§7.3).
//! * [`DangSanHeap`] — DangSan-style per-allocation pointer registries:
//!   every pointer store appends to the target's list; `free` walks the
//!   list nullifying entries. Pointer-dense, allocation-heavy programs pay
//!   enormously in both time and registry memory (§7.1).
//! * [`OscarHeap`] — Oscar-style page-permission shadows: every allocation
//!   gets its own virtual page alias, unmapped on free. Costs scale with
//!   allocation *count*, which is fatal for small-object churn (§7.2).
//! * [`PSweeperHeap`] — pSweeper-style concurrent pointer sweeping:
//!   per-store instrumentation plus an asynchronous sweeper that contends
//!   for memory bandwidth (§7.1).
//!
//! All four implement [`workloads::WorkloadHeap`], so they run under the
//! same driver as [`workloads::CherivokeUnderTest`].
//!
//! Two further *partial*-safety schemes from the paper's related work are
//! modelled for the security comparison (they are not fig. 5 systems):
//!
//! * [`MteHeap`] — Arm MTE / SPARC ADI-style 4-bit memory colouring
//!   (§7.5): probabilistic detection an attacker can exhaust.
//! * [`ClingHeap`] — Cling-style type-safe reuse (§7.4): dangling
//!   pointers can only alias same-site objects.
//!
//! # Example
//!
//! ```
//! use baselines::OscarHeap;
//! use workloads::{profiles, run_trace, TraceGenerator};
//!
//! let p = profiles::by_name("xalancbmk").unwrap();
//! let trace = TraceGenerator::new(p, 1.0 / 2048.0, 1).generate();
//! let mut oscar = OscarHeap::new(&trace);
//! let report = run_trace(&mut oscar, &trace).unwrap();
//! // Oscar pays per allocation: small-object churn is its worst case.
//! assert!(report.normalized_time > 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boehm;
mod cling;
mod common;
mod dangsan;
mod mte;
mod oscar;
mod psweeper;

pub use boehm::BoehmGcHeap;
pub use cling::{ClingHeap, SiteId};
pub use common::{measured_sweep_rate, BaselineCosts};
pub use dangsan::DangSanHeap;
pub use mte::{MteFault, MteHeap, MtePtr, MTE_COLOURS};
pub use oscar::OscarHeap;
pub use psweeper::PSweeperHeap;
