//! Shared infrastructure for the comparator heaps.

use std::collections::HashMap;

use cvkalloc::{AllocError, Block, DlAllocator};

/// Calibrated unit costs shared by the comparator models. Each constant is
/// documented with the operation it prices; values are order-of-magnitude
/// calibrations against the systems' published overheads, not measurements
/// of the original artifacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineCosts {
    /// Boehm GC: marking one reachable object (pointer-chasing, cache-hostile).
    pub t_gc_mark_obj_s: f64,
    /// Boehm GC: conservative scan rate over heap bytes during collection
    /// ("complex and memory-irregular", far below CHERIvoke's streaming
    /// sweep — §7.3).
    pub gc_scan_rate_bytes_s: f64,
    /// DangSan: recording one pointer store into the target's registry.
    pub t_track_ptr_s: f64,
    /// DangSan: nullifying one registry entry at free time.
    pub t_nullify_s: f64,
    /// DangSan: registry bytes per recorded pointer store.
    pub registry_bytes_per_entry: u64,
    /// Oscar: creating an allocation's private page alias (mmap path).
    pub t_page_alias_s: f64,
    /// Oscar: revoking the alias on free (mprotect/munmap path).
    pub t_page_unmap_s: f64,
    /// pSweeper: per-pointer-store instrumentation barrier.
    pub t_ptr_barrier_s: f64,
    /// pSweeper: main-thread slowdown fraction while the concurrent sweeper
    /// saturates shared memory bandwidth.
    pub sweeper_contention: f64,
    /// pSweeper: concurrent sweep scan rate (on the second core).
    pub psweep_scan_rate_bytes_s: f64,
    /// Implied pointer stores per second in a fully pointer-dense program
    /// (scaled by each profile's density): models the pointer writes real
    /// programs perform between allocator events, which instrumentation
    /// systems pay for but CHERIvoke does not.
    pub implied_ptr_stores_per_s: f64,
}

impl Default for BaselineCosts {
    fn default() -> Self {
        BaselineCosts {
            t_gc_mark_obj_s: 70e-9,
            gc_scan_rate_bytes_s: 1.0 * 1024.0 * 1024.0 * 1024.0,
            t_track_ptr_s: 45e-9,
            t_nullify_s: 40e-9,
            registry_bytes_per_entry: 24,
            t_page_alias_s: 1.8e-6,
            t_page_unmap_s: 1.6e-6,
            t_ptr_barrier_s: 6e-9,
            sweeper_contention: 0.25,
            psweep_scan_rate_bytes_s: 4.0 * 1024.0 * 1024.0 * 1024.0,
            implied_ptr_stores_per_s: 4.0e7,
        }
    }
}

/// Measures this machine's actual sweep throughput (bytes/second) by
/// running a real [`revoker::SweepEngine`] sweep over a synthetic tagged
/// heap image, instead of assuming the default 4 GiB/s constant. The image
/// holds one capability per page — sparse enough that the sweep streams,
/// dense enough that shadow lookups are exercised — and the sweep repeats
/// until enough wall time accumulates for a stable rate.
///
/// Used by [`crate::PSweeperHeap::with_measured_rate`] so the analytic
/// contention model is grounded in the same kernel CHERIvoke's own numbers
/// come from.
pub fn measured_sweep_rate() -> f64 {
    use revoker::{Kernel, NoFilter, SegmentSource, ShadowMap, SweepEngine, SweepScratch};

    const BASE: u64 = 0x1000_0000;
    const LEN: u64 = 4 << 20;
    let mut mem = tagmem::TaggedMemory::new(BASE, LEN);
    let cap = cheri::Capability::root_rw(BASE, 64);
    let mut addr = BASE;
    while addr < BASE + LEN {
        mem.write_cap(addr, &cap).expect("address inside image");
        addr += tagmem::PAGE_SIZE;
    }
    let shadow = ShadowMap::new(BASE, LEN);
    let engine = SweepEngine::new(Kernel::Wide);
    let mut scratch = SweepScratch::new();
    let t0 = std::time::Instant::now();
    let mut bytes = 0u64;
    // At least one sweep; then repeat until ~2 ms of signal (sweeping tags
    // clears nothing here — the shadow is clean — so repeats are identical).
    // One scratch is reused across the repeats so the measured rate is the
    // steady-state, allocation-free sweep throughput.
    while bytes == 0 || t0.elapsed().as_secs_f64() < 2e-3 {
        let stats = engine.sweep_scratched(
            SegmentSource::new(&mut mem),
            NoFilter,
            &shadow,
            &mut scratch,
        );
        bytes += stats.bytes_swept;
    }
    (bytes as f64 / t0.elapsed().as_secs_f64().max(1e-9)).max(1.0)
}

/// A real allocator plus id→block bookkeeping, shared by all baselines so
/// their memory accounting is as honest as CHERIvoke's.
#[derive(Debug)]
pub(crate) struct BaseAlloc {
    pub alloc: DlAllocator,
    pub blocks: HashMap<u64, Block>,
}

impl BaseAlloc {
    pub fn new(heap_bytes: u64) -> BaseAlloc {
        let size = cheri::CompressedBounds::representable_length(cheri::granule_round_up(
            (heap_bytes as f64 * 2.5) as u64,
        ));
        BaseAlloc {
            alloc: DlAllocator::new(0x1000_0000, size),
            blocks: HashMap::new(),
        }
    }

    pub fn malloc(&mut self, id: u64, size: u64) -> Result<Block, String> {
        let block = self
            .alloc
            .malloc(size)
            .map_err(|e| format!("malloc {id}: {e}"))?;
        self.blocks.insert(id, block);
        Ok(block)
    }

    pub fn free(&mut self, id: u64) -> Result<u64, String> {
        let block = self
            .blocks
            .remove(&id)
            .ok_or_else(|| format!("free of unknown id {id}"))?;
        match self.alloc.free(block.addr) {
            Ok(size) => Ok(size),
            Err(AllocError::InvalidFree { .. }) => Err(format!("double free of id {id}")),
            Err(e) => Err(e.to_string()),
        }
    }

    pub fn peak_live(&self) -> u64 {
        self.alloc.stats().peak_live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_alloc_tracks_blocks() {
        let mut b = BaseAlloc::new(1 << 20);
        b.malloc(1, 100).unwrap();
        b.malloc(2, 200).unwrap();
        assert_eq!(b.free(1).unwrap(), 112);
        assert!(b.free(1).is_err());
        assert!(b.peak_live() >= 300);
    }

    #[test]
    fn default_costs_are_positive() {
        let c = BaselineCosts::default();
        assert!(c.t_gc_mark_obj_s > 0.0);
        assert!(c.gc_scan_rate_bytes_s > 0.0);
        assert!(
            c.t_page_alias_s > c.t_track_ptr_s,
            "Oscar ops are syscall-scale"
        );
    }
}
